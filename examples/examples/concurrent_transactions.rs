//! Optimistic concurrency control (§3.1) and crash-safe persistence: two
//! connections with snapshot isolation, a write-write conflict, and a
//! WAL-recovered restart.
//!
//! ```sh
//! cargo run --release -p monetlite-examples --example concurrent_transactions
//! ```

use monetlite::Database;
use monetlite_types::MlError;

fn main() -> monetlite::types::Result<()> {
    let dir = tempfile::tempdir().map_err(|e| MlError::Io(e.to_string()))?;
    {
        let db = Database::open(dir.path())?;
        let mut writer = db.connect();
        writer.run_script(
            "CREATE TABLE accounts (id INT NOT NULL, balance DECIMAL(10,2));
             INSERT INTO accounts VALUES (1, 100.00), (2, 250.00);",
        )?;

        // Snapshot isolation between connections.
        let mut reader = db.connect();
        reader.execute("BEGIN")?;
        let before = reader.query("SELECT sum(balance) FROM accounts")?;
        writer.execute("UPDATE accounts SET balance = balance + 50.00 WHERE id = 1")?;
        let during = reader.query("SELECT sum(balance) FROM accounts")?;
        println!("reader snapshot stable: {} == {}", before.value(0, 0), during.value(0, 0));
        reader.execute("COMMIT")?;

        // Write-write conflict: both transactions touch `accounts`.
        let mut a = db.connect();
        let mut b = db.connect();
        a.execute("BEGIN")?;
        b.execute("BEGIN")?;
        a.execute("UPDATE accounts SET balance = 0.00 WHERE id = 2")?;
        b.execute("DELETE FROM accounts WHERE id = 2")?;
        a.commit()?;
        match b.commit() {
            Err(MlError::TransactionConflict(msg)) => {
                println!("second committer aborted, as §3.1 requires: {msg}")
            }
            other => println!("unexpected: {other:?}"),
        }
        // No checkpoint: recovery must replay the WAL on reopen.
    }
    let db = Database::open(dir.path())?;
    let mut conn = db.connect();
    let r = conn.query("SELECT id, balance FROM accounts ORDER BY id")?;
    println!("after restart (WAL recovery):");
    for i in 0..r.nrows() {
        println!("  {:?}", r.row(i));
    }
    Ok(())
}
