//! Criterion bench for Figure 5 (data ingestion): embedded bulk append vs
//! row-at-a-time insert vs per-INSERT over the socket.

use criterion::{criterion_group, criterion_main, Criterion};
use monetlite_bench::lineitem_buffers;
use monetlite_netsim::{RemoteClient, Server, ServerEngine};
use monetlite_rowstore::RowDb;
use monetlite_types::Value;

fn bench_ingestion(c: &mut Criterion) {
    let data = monetlite_tpch::generate(0.002, 1);
    let (schema, cols) = lineitem_buffers(&data);
    let ddl = {
        let coldefs: Vec<String> =
            schema.fields().iter().map(|f| format!("{} {}", f.name, f.ty)).collect();
        format!("CREATE TABLE lineitem ({})", coldefs.join(", "))
    };
    let mut g = c.benchmark_group("fig5_ingestion");
    g.sample_size(10);
    g.bench_function("monetlite_append", |b| {
        b.iter(|| {
            let db = monetlite::Database::open_in_memory();
            let mut conn = db.connect();
            conn.execute(&ddl).unwrap();
            conn.append("lineitem", cols.clone()).unwrap();
        })
    });
    g.bench_function("rowstore_insert", |b| {
        let rows: Vec<Vec<Value>> =
            (0..cols[0].len()).map(|r| cols.iter().map(|c| c.get(r)).collect()).collect();
        b.iter(|| {
            let db = RowDb::in_memory();
            db.execute(&ddl).unwrap();
            db.insert_rows("lineitem", rows.clone()).unwrap();
        })
    });
    g.bench_function("socket_insert_statements", |b| {
        b.iter(|| {
            let server = Server::start(ServerEngine::Row(RowDb::in_memory())).unwrap();
            let mut client = RemoteClient::connect(server.port()).unwrap();
            client.write_table("lineitem", &schema, &cols).unwrap();
            client.close();
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ingestion);
criterion_main!(benches);
