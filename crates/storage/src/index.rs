//! Secondary index structures (paper §3.1 *Automatic Indexing* / *Order
//! Index*).
//!
//! * [`Imprints`] — the cache-line bitmap index of Sidirourgos & Kersten:
//!   per 64-value "cache line" a 64-bit mask of the value-range bins
//!   present in that line. Built automatically on the first range select
//!   over a persistent column; destroyed when the column is modified.
//! * [`HashIndex`] — value → row-ids hash table, built automatically when a
//!   persistent column is used as a grouping or equi-join key; *updated*
//!   on appends, destroyed on updates/deletes.
//! * [`OrderIndex`] — a row-number permutation in sort order, created only
//!   by `CREATE ORDER INDEX`; answers point/range queries by binary search
//!   and feeds merge joins.
//! * [`Zonemap`] — per-zone min/max summaries ([`ZONE_ROWS`] rows per
//!   zone) that let vectorized scans skip whole vectors for constant
//!   range predicates *before* any kernel runs. Coarser but far cheaper
//!   than imprints (16 bytes per zone), checked per morsel, and the only
//!   index that is persisted (as a `.zm` sidecar at checkpoint) so a
//!   restarted process can skip vectors without faulting the column in.
//!
//! All three work over a uniform order-preserving `i64` key domain
//! ([`bat_keys`]); strings participate in hashing via FNV with caller-side
//! verification (exactly the "candidates, then check" discipline MonetDB
//! uses).

use crate::bat::Bat;
use crate::heap::NULL_OFFSET;
use std::collections::HashMap;

/// Values per imprint "cache line". MonetDB uses the hardware line size /
/// value width; we fix 64 values per line, which keeps masks cheap and
/// pruning behaviour equivalent.
pub const IMPRINT_LINE: usize = 64;

/// Number of histogram bins (= bits in the mask).
pub const IMPRINT_BINS: usize = 64;

/// Order-preserving map from f64 to i64 (IEEE total-order trick): negative
/// floats flip all bits, positive floats set the sign bit, then the result
/// is shifted back into signed order. NaN is excluded by callers (it maps
/// to the NULL key `i64::MIN` in [`key_at`]).
#[inline]
pub fn f64_ordered(f: f64) -> i64 {
    let b = f.to_bits();
    let u = if b >> 63 == 1 { !b } else { b | (1 << 63) };
    (u ^ (1 << 63)) as i64
}

/// FNV-1a hash (shared with the string heap's dedup map).
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Extract the order-preserving i64 key for `row` of a column.
///
/// NULL maps to `i64::MIN`, which sorts first and never matches a bounded
/// range probe (callers exclude NULLs explicitly where SQL requires it).
/// Strings hash (order *not* preserved) — only [`HashIndex`] may be built
/// over them.
#[inline]
pub fn key_at(bat: &Bat, row: usize) -> i64 {
    match bat {
        Bat::Bool(v) => {
            if v[row] == i8::MIN {
                i64::MIN
            } else {
                v[row] as i64
            }
        }
        Bat::Int(v) | Bat::Date(v) => {
            if v[row] == i32::MIN {
                i64::MIN
            } else {
                v[row] as i64
            }
        }
        Bat::Bigint(v) => v[row],
        Bat::Decimal { data, .. } => data[row],
        Bat::Double(v) => {
            if v[row].is_nan() {
                i64::MIN
            } else {
                f64_ordered(v[row])
            }
        }
        Bat::Varchar { offsets, heap } => {
            if offsets[row] == NULL_OFFSET {
                i64::MIN
            } else {
                fnv1a(heap.get(offsets[row]).as_bytes()) as i64
            }
        }
    }
}

/// All keys of a column (see [`key_at`]).
pub fn bat_keys(bat: &Bat) -> Vec<i64> {
    (0..bat.len()).map(|i| key_at(bat, i)).collect()
}

/// True when the column type admits order-based indexes (imprints, order
/// index): every fixed-width type; strings only hash.
pub fn orderable(bat: &Bat) -> bool {
    !matches!(bat, Bat::Varchar { .. })
}

// ---------------------------------------------------------------------------
// Imprints
// ---------------------------------------------------------------------------

/// Column imprints: equi-depth bins from a sample, one bitmask per line.
#[derive(Debug, Clone)]
pub struct Imprints {
    /// 63 ascending bin bounds; bin(v) = # bounds ≤ v, in 0..64.
    bounds: Vec<i64>,
    /// One mask per line of [`IMPRINT_LINE`] values.
    masks: Vec<u64>,
    rows: usize,
}

impl Imprints {
    /// Build imprints over a key column.
    pub fn build(keys: &[i64]) -> Imprints {
        // Sample up to 4096 values for the histogram bounds.
        let step = (keys.len() / 4096).max(1);
        let mut sample: Vec<i64> = keys.iter().step_by(step).copied().collect();
        sample.sort_unstable();
        sample.dedup();
        let mut bounds = Vec::with_capacity(IMPRINT_BINS - 1);
        if !sample.is_empty() {
            for b in 1..IMPRINT_BINS {
                let idx = b * sample.len() / IMPRINT_BINS;
                let v = sample[idx.min(sample.len() - 1)];
                if bounds.last() != Some(&v) {
                    bounds.push(v);
                }
            }
        }
        let mut masks = Vec::with_capacity(keys.len().div_ceil(IMPRINT_LINE));
        for line in keys.chunks(IMPRINT_LINE) {
            let mut m = 0u64;
            for &k in line {
                m |= 1u64 << bin_of(&bounds, k);
            }
            masks.push(m);
        }
        Imprints { bounds, masks, rows: keys.len() }
    }

    /// Rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Approximate size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bounds.len() * 8 + self.masks.len() * 8
    }

    /// Indices of lines that *may* contain a value in `[lo, hi]`
    /// (inclusive; `None` = unbounded). Guaranteed superset of the truth.
    pub fn candidate_lines(&self, lo: Option<i64>, hi: Option<i64>) -> Vec<u32> {
        let lo_bin = lo.map_or(0, |v| bin_of(&self.bounds, v));
        let hi_bin = hi.map_or(IMPRINT_BINS - 1, |v| bin_of(&self.bounds, v));
        let mask = range_mask(lo_bin, hi_bin);
        self.masks
            .iter()
            .enumerate()
            .filter(|(_, &m)| m & mask != 0)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Fraction of lines pruned by a probe (for EXPLAIN / stats output).
    pub fn selectivity(&self, lo: Option<i64>, hi: Option<i64>) -> f64 {
        if self.masks.is_empty() {
            return 0.0;
        }
        self.candidate_lines(lo, hi).len() as f64 / self.masks.len() as f64
    }
}

#[inline]
fn bin_of(bounds: &[i64], v: i64) -> usize {
    bounds.partition_point(|&b| b <= v)
}

#[inline]
fn range_mask(lo_bin: usize, hi_bin: usize) -> u64 {
    debug_assert!(lo_bin <= hi_bin && hi_bin < 64);
    let hi = if hi_bin == 63 { u64::MAX } else { (1u64 << (hi_bin + 1)) - 1 };
    let lo = (1u64 << lo_bin) - 1;
    hi & !lo
}

// ---------------------------------------------------------------------------
// Zonemaps
// ---------------------------------------------------------------------------

/// Rows per zonemap zone. Fine enough that a date-clustered fact table
/// skips most zones on a range probe, coarse enough that the summary is
/// negligible (16 bytes per 8Ki rows ≈ 0.0002% of an i64 column).
pub const ZONE_ROWS: usize = 8 * 1024;

/// Per-zone min/max of the non-NULL keys of a column, in the
/// order-preserving `i64` key domain of [`key_at`].
///
/// A zone whose every row is NULL stores the empty range
/// `(i64::MAX, i64::MIN)`: NULL never satisfies a comparison, so such a
/// zone is always skippable. VARCHAR columns (no order-preserving key
/// domain) store the full range for every zone — never skipped, never
/// wrong.
#[derive(Debug, Clone)]
pub struct Zonemap {
    mins: Vec<i64>,
    maxs: Vec<i64>,
    rows: usize,
}

impl Zonemap {
    /// Build the zonemap of a column (one pass, NULLs excluded).
    pub fn build(bat: &Bat) -> Zonemap {
        let rows = bat.len();
        let nz = rows.div_ceil(ZONE_ROWS);
        let mut mins = Vec::with_capacity(nz);
        let mut maxs = Vec::with_capacity(nz);
        for z in 0..nz {
            let lo = z * ZONE_ROWS;
            let hi = ((z + 1) * ZONE_ROWS).min(rows);
            match bat.key_range(lo, hi) {
                Some((mn, mx)) => {
                    mins.push(mn);
                    maxs.push(mx);
                }
                None if orderable(bat) => {
                    // All-NULL zone: empty range, always skippable.
                    mins.push(i64::MAX);
                    maxs.push(i64::MIN);
                }
                None => {
                    // VARCHAR: no key domain — full range, never skipped.
                    mins.push(i64::MIN);
                    maxs.push(i64::MAX);
                }
            }
        }
        Zonemap { mins, maxs, rows }
    }

    /// Reassemble from persisted parts; `None` when the shapes disagree
    /// (e.g. a sidecar written under a different [`ZONE_ROWS`]).
    pub fn from_parts(rows: usize, mins: Vec<i64>, maxs: Vec<i64>) -> Option<Zonemap> {
        if mins.len() != maxs.len() || mins.len() != rows.div_ceil(ZONE_ROWS) {
            return None;
        }
        Some(Zonemap { mins, maxs, rows })
    }

    /// Rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of zones.
    pub fn n_zones(&self) -> usize {
        self.mins.len()
    }

    /// Per-zone minimum keys (persistence).
    pub fn mins(&self) -> &[i64] {
        &self.mins
    }

    /// Per-zone maximum keys (persistence).
    pub fn maxs(&self) -> &[i64] {
        &self.maxs
    }

    /// Approximate size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.mins.len() * 16
    }

    #[inline]
    fn zone_may_match(&self, z: usize, lo: Option<i64>, hi: Option<i64>) -> bool {
        let (zmin, zmax) = (self.mins[z], self.maxs[z]);
        if zmin > zmax {
            return false; // all-NULL zone
        }
        lo.is_none_or(|lo| zmax >= lo) && hi.is_none_or(|hi| zmin <= hi)
    }

    /// Whether any row in `[row_lo, row_hi)` *may* have a key in the
    /// inclusive range `[lo, hi]` (`None` = unbounded). `false` means the
    /// whole row range is provably free of matches and the caller can
    /// skip it; `true` is a guaranteed superset of the truth.
    pub fn range_may_match(
        &self,
        row_lo: usize,
        row_hi: usize,
        lo: Option<i64>,
        hi: Option<i64>,
    ) -> bool {
        if self.rows == 0 || row_lo >= row_hi || self.mins.is_empty() {
            return false;
        }
        let z0 = (row_lo / ZONE_ROWS).min(self.n_zones() - 1);
        let z1 = ((row_hi - 1) / ZONE_ROWS).min(self.n_zones() - 1);
        (z0..=z1).any(|z| self.zone_may_match(z, lo, hi))
    }
}

// ---------------------------------------------------------------------------
// Hash index
// ---------------------------------------------------------------------------

/// A value → row-ids hash table over the i64 key domain.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: HashMap<i64, Vec<u32>>,
    rows: usize,
}

impl HashIndex {
    /// Build over an entire key column.
    pub fn build(keys: &[i64]) -> HashIndex {
        let mut idx = HashIndex { map: HashMap::with_capacity(keys.len()), rows: 0 };
        idx.append(keys, 0);
        idx
    }

    /// Extend with appended rows starting at physical row `start` — the
    /// paper: hash tables "are updated on appends to the tables".
    pub fn append(&mut self, keys: &[i64], start: u32) {
        for (i, &k) in keys.iter().enumerate() {
            self.map.entry(k).or_default().push(start + i as u32);
        }
        self.rows += keys.len();
    }

    /// Candidate rows for a key (exact for fixed-width keys; for strings
    /// the caller re-verifies against the column).
    pub fn lookup(&self, key: i64) -> &[u32] {
        self.map.get(&key).map_or(&[], |v| v.as_slice())
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }

    /// Rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Approximate size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.map.len() * 24 + self.rows * 4
    }
}

// ---------------------------------------------------------------------------
// Order index
// ---------------------------------------------------------------------------

/// `CREATE ORDER INDEX`: "an array of row numbers in the sort order
/// specified by the user".
#[derive(Debug, Clone)]
pub struct OrderIndex {
    /// Row numbers, ordered so keys\[perm\[i\]\] is non-decreasing.
    perm: Vec<u32>,
    /// Keys in permutation order (kept for binary search without touching
    /// the column).
    sorted_keys: Vec<i64>,
}

impl OrderIndex {
    /// Build by sorting row numbers on the key column.
    pub fn build(keys: &[i64]) -> OrderIndex {
        let mut perm: Vec<u32> = (0..keys.len() as u32).collect();
        perm.sort_by_key(|&r| keys[r as usize]);
        let sorted_keys = perm.iter().map(|&r| keys[r as usize]).collect();
        OrderIndex { perm, sorted_keys }
    }

    /// The full permutation (used for merge joins and sorted scans).
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// Row ids whose key lies in `[lo, hi]` (inclusive bounds, `None` =
    /// unbounded), answered by binary search on the sorted key array.
    pub fn range(&self, lo: Option<i64>, hi: Option<i64>) -> &[u32] {
        let start = match lo {
            None => 0,
            Some(lo) => self.sorted_keys.partition_point(|&k| k < lo),
        };
        let end = match hi {
            None => self.sorted_keys.len(),
            Some(hi) => self.sorted_keys.partition_point(|&k| k <= hi),
        };
        &self.perm[start..end.max(start)]
    }

    /// Row ids with key exactly `k` (point query).
    pub fn point(&self, k: i64) -> &[u32] {
        self.range(Some(k), Some(k))
    }

    /// Approximate size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.perm.len() * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_range(keys: &[i64], lo: Option<i64>, hi: Option<i64>) -> Vec<u32> {
        let mut v: Vec<u32> = keys
            .iter()
            .enumerate()
            .filter(|(_, &k)| lo.is_none_or(|lo| k >= lo) && hi.is_none_or(|hi| k <= hi))
            .map(|(i, _)| i as u32)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn f64_ordering_preserved() {
        let vals = [-f64::INFINITY, -100.5, -0.0, 0.0, 1.0, 2.5, f64::INFINITY];
        for w in vals.windows(2) {
            assert!(f64_ordered(w[0]) <= f64_ordered(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert!(f64_ordered(-1.0) < f64_ordered(1.0));
    }

    #[test]
    fn range_mask_bits() {
        assert_eq!(range_mask(0, 63), u64::MAX);
        assert_eq!(range_mask(0, 0), 1);
        assert_eq!(range_mask(63, 63), 1u64 << 63);
        assert_eq!(range_mask(2, 3), 0b1100);
    }

    #[test]
    fn imprints_never_lose_rows() {
        let keys: Vec<i64> = (0..1000).map(|i| (i * 37) % 500).collect();
        let imp = Imprints::build(&keys);
        let lines = imp.candidate_lines(Some(100), Some(120));
        // Every truly matching row must live in a candidate line.
        for (row, &k) in keys.iter().enumerate() {
            if (100..=120).contains(&k) {
                let line = (row / IMPRINT_LINE) as u32;
                assert!(lines.contains(&line), "row {row} lost");
            }
        }
        // No pruning assertion here: values are scattered across every
        // line, so all lines are genuine candidates (imprints only help
        // when value ranges cluster per line — see the next test).
    }

    #[test]
    fn imprints_prune_sorted_data_hard() {
        let keys: Vec<i64> = (0..10_000).collect();
        let imp = Imprints::build(&keys);
        let sel = imp.selectivity(Some(0), Some(100));
        assert!(sel < 0.1, "sorted data should prune >90%, got {sel}");
    }

    #[test]
    fn imprints_unbounded_probe() {
        let keys: Vec<i64> = (0..256).collect();
        let imp = Imprints::build(&keys);
        assert_eq!(imp.candidate_lines(None, None).len(), 4);
        let below = imp.candidate_lines(None, Some(63));
        assert!(below.contains(&0));
        assert!(!below.contains(&3));
    }

    #[test]
    fn zonemap_skips_clustered_ranges() {
        // Clustered (sorted) data: each zone covers a narrow value band.
        let n = ZONE_ROWS * 4;
        let bat = Bat::Int((0..n as i32).collect());
        let zm = Zonemap::build(&bat);
        assert_eq!(zm.n_zones(), 4);
        assert_eq!(zm.rows(), n);
        // Probe entirely inside zone 0: zones 1..4 must not match.
        assert!(zm.range_may_match(0, ZONE_ROWS, Some(0), Some(10)));
        assert!(!zm.range_may_match(ZONE_ROWS, n, Some(0), Some(10)));
        // Unbounded side.
        assert!(!zm.range_may_match(0, ZONE_ROWS, Some(ZONE_ROWS as i64), None));
        assert!(zm.range_may_match(0, ZONE_ROWS, None, Some(0)));
    }

    #[test]
    fn zonemap_null_zones_always_skip_and_varchar_never_skips() {
        use monetlite_types::ColumnBuffer;
        let bat = Bat::Int(vec![i32::MIN; 100]); // all NULL
        let zm = Zonemap::build(&bat);
        assert!(!zm.range_may_match(0, 100, Some(i64::MIN), None));
        assert!(!zm.range_may_match(0, 100, None, None));
        let s = Bat::from_buffer(&ColumnBuffer::Varchar(vec![Some("a".into()); 10]));
        let zs = Zonemap::build(&s);
        assert!(zs.range_may_match(0, 10, Some(0), Some(0)), "varchar zones never skip");
    }

    #[test]
    fn zonemap_parts_roundtrip_and_shape_check() {
        let bat = Bat::Int((0..100).collect());
        let zm = Zonemap::build(&bat);
        let rt = Zonemap::from_parts(zm.rows(), zm.mins().to_vec(), zm.maxs().to_vec()).unwrap();
        assert_eq!(rt.n_zones(), zm.n_zones());
        assert!(Zonemap::from_parts(100, vec![0; 3], vec![0; 3]).is_none(), "bad zone count");
        assert!(Zonemap::from_parts(100, vec![0], vec![0, 1]).is_none(), "mismatched lens");
    }

    #[test]
    fn hash_index_build_and_probe() {
        let keys = vec![5, 7, 5, 9, 5];
        let idx = HashIndex::build(&keys);
        assert_eq!(idx.lookup(5), &[0, 2, 4]);
        assert_eq!(idx.lookup(9), &[3]);
        assert_eq!(idx.lookup(42), &[] as &[u32]);
        assert_eq!(idx.distinct(), 3);
    }

    #[test]
    fn hash_index_append_maintains() {
        let mut idx = HashIndex::build(&[1, 2]);
        idx.append(&[2, 3], 2);
        assert_eq!(idx.lookup(2), &[1, 2]);
        assert_eq!(idx.lookup(3), &[3]);
        assert_eq!(idx.rows(), 4);
    }

    #[test]
    fn order_index_range_and_point() {
        let keys = vec![30, 10, 20, 10, 40];
        let idx = OrderIndex::build(&keys);
        assert_eq!(idx.point(10), &[1, 3]);
        let mut r = idx.range(Some(10), Some(30)).to_vec();
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2, 3]);
        assert_eq!(idx.range(Some(100), None), &[] as &[u32]);
        assert_eq!(idx.range(None, None).len(), 5);
    }

    #[test]
    fn order_index_perm_is_sorted() {
        let keys = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let idx = OrderIndex::build(&keys);
        let sorted: Vec<i64> = idx.perm().iter().map(|&r| keys[r as usize]).collect();
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn string_keys_hash_consistently() {
        use monetlite_types::ColumnBuffer;
        let bat = Bat::from_buffer(&ColumnBuffer::Varchar(vec![
            Some("apple".into()),
            Some("pear".into()),
            Some("apple".into()),
            None,
        ]));
        let keys = bat_keys(&bat);
        assert_eq!(keys[0], keys[2]);
        assert_ne!(keys[0], keys[1]);
        assert_eq!(keys[3], i64::MIN);
        assert!(!orderable(&bat));
    }

    proptest! {
        #[test]
        fn prop_imprints_superset(keys in proptest::collection::vec(-500i64..500, 1..400),
                                  lo in -500i64..500, width in 0i64..200) {
            let hi = lo + width;
            let imp = Imprints::build(&keys);
            let lines = imp.candidate_lines(Some(lo), Some(hi));
            for &row in &naive_range(&keys, Some(lo), Some(hi)) {
                let line = (row as usize / IMPRINT_LINE) as u32;
                prop_assert!(lines.contains(&line));
            }
        }

        #[test]
        fn prop_order_index_matches_naive(keys in proptest::collection::vec(-100i64..100, 0..200),
                                          lo in -100i64..100, width in 0i64..100) {
            let hi = lo + width;
            let idx = OrderIndex::build(&keys);
            let mut got = idx.range(Some(lo), Some(hi)).to_vec();
            got.sort_unstable();
            prop_assert_eq!(got, naive_range(&keys, Some(lo), Some(hi)));
        }

        #[test]
        fn prop_zonemap_never_loses_rows(vals in proptest::collection::vec(-500i32..500, 0..300),
                                         lo in -500i64..500, width in 0i64..200,
                                         row_lo in 0usize..300, span in 1usize..300) {
            let hi = lo + width;
            let bat = Bat::Int(vals.clone());
            let zm = Zonemap::build(&bat);
            let row_lo = row_lo.min(vals.len());
            let row_hi = (row_lo + span).min(vals.len());
            let truly_matches = (row_lo..row_hi).any(|r| {
                vals[r] != i32::MIN && (lo..=hi).contains(&(vals[r] as i64))
            });
            if truly_matches {
                prop_assert!(zm.range_may_match(row_lo, row_hi, Some(lo), Some(hi)),
                    "zonemap lost a matching row");
            }
        }

        #[test]
        fn prop_hash_index_complete(keys in proptest::collection::vec(-20i64..20, 0..200)) {
            let idx = HashIndex::build(&keys);
            for (row, &k) in keys.iter().enumerate() {
                prop_assert!(idx.lookup(k).contains(&(row as u32)));
            }
        }
    }
}
