//! Deterministic I/O fault-injection sweeps — the robustness tentpole,
//! in the style of SQLite's I/O-error tests: run a workload under the
//! process-global injector in [`monetlite_storage::fault`], fail the
//! k-th wrapped I/O for *every* k until a run completes fault-free, and
//! after each faulted run assert the trifecta:
//!
//! 1. the failure surfaced as a clean, contextual [`MlError`] — never a
//!    panic — naming the operation, file and injection site;
//! 2. reopening the database with the injector disarmed recovers a
//!    consistent committed prefix: every acknowledged commit present,
//!    nothing partial, nothing beyond the attempted set;
//! 3. no temp or orphan file survives recovery plus one checkpoint.
//!
//! The file also pins the two real bugs the sweep found while it was
//! being built (a leaked `catalog.tmp` and a WAL writer that corrupted
//! commits *after* a failed append), and exhaustively truncates a WAL at
//! every byte offset to prove recovery always yields an acked prefix.

use monetlite::exec::{ExecMode, ExecOptions};
use monetlite::{Connection, Database};
use monetlite_storage::fault::{self, FaultMode, FaultPolicy};
use monetlite_types::{ColumnBuffer, MlError, Result, Value};
use std::path::Path;

fn int_of(v: Value) -> i64 {
    match v {
        Value::Int(i) => i as i64,
        Value::Bigint(i) => i,
        other => panic!("expected an integer value, got {other:?}"),
    }
}

/// Every fault must surface with enough context to act on: the wrapped
/// sites embed `(site=...)` alongside the operation and path; the only
/// other acceptable shapes are the lock-collision and poisoned-writer
/// errors (which name their condition) and `Corrupt` (which names the
/// offending file).
fn assert_clean_error(e: &MlError) {
    let s = e.to_string();
    let contextual = s.contains("(site=")
        || s.contains("database locked")
        || s.contains("wal writer poisoned")
        || matches!(e, MlError::Corrupt(_));
    assert!(contextual, "fault surfaced without operation/file/site context: {e:?} ({s})");
}

// ---------------------------------------------------------------------------
// Workload A: full persistent lifecycle (append + checkpoint + restart,
// so WAL append/flush, catalog + column-file checkpointing, lock
// handling, replay and GC are all inside the swept window).
// ---------------------------------------------------------------------------

/// Runs the lifecycle workload, recording which commits were
/// acknowledged (`-1` = CREATE TABLE, `0..4` = insert batches). Stops at
/// the first error — each sweep ordinal fails a different operation, so
/// the union of runs still covers every path.
fn lifecycle_workload(dir: &Path) -> (Vec<i64>, Result<()>) {
    let mut acked: Vec<i64> = Vec::new();
    let res = (|| {
        let db = Database::open(dir)?;
        let mut conn = db.connect();
        conn.execute("CREATE TABLE t (batch INT NOT NULL, v INT NOT NULL)")?;
        acked.push(-1);
        for b in 0..4i64 {
            conn.execute(&format!("INSERT INTO t VALUES ({b}, 1), ({b}, 2)"))?;
            acked.push(b);
            if b == 1 {
                // Mid-workload checkpoint: later batches live only in
                // the WAL, so the restart below exercises replay.
                db.checkpoint()?;
            }
        }
        drop(conn);
        drop(db);
        let db = Database::open(dir)?;
        let mut conn = db.connect();
        conn.query("SELECT COUNT(*) FROM t")?;
        db.checkpoint()?;
        Ok(())
    })();
    (acked, res)
}

/// After any faulted run: the db root and `cols/` hold only the files a
/// healthy database owns — no `*.tmp`/`*.zmtmp`/`*.sttmp` survivors, no
/// orphans outside the known layout.
fn assert_no_leaks(dir: &Path) {
    for e in std::fs::read_dir(dir).unwrap() {
        let name = e.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            matches!(name.as_str(), "catalog.bin" | "wal.log" | "cols" | "db.lock"),
            "orphan file leaked into the db root: {name}"
        );
    }
    let cols = dir.join("cols");
    if cols.is_dir() {
        for e in std::fs::read_dir(&cols).unwrap() {
            let p = e.unwrap().path();
            let ext = p.extension().unwrap_or_default().to_string_lossy().into_owned();
            assert!(
                matches!(ext.as_str(), "bat" | "zm" | "st"),
                "temp/orphan file leaked into cols/: {}",
                p.display()
            );
        }
    }
}

/// Disarmed recovery oracle: reopen, and check the surviving state is a
/// contiguous, fully-committed prefix containing every acked batch.
fn verify_recovery(dir: &Path, acked: &[i64]) {
    // A fault during the workload's own `Drop` can leave the pid lock
    // behind — recovery after a "crash" starts by clearing it, exactly
    // as an embedding host restarting after a power loss would.
    let _ = std::fs::remove_file(dir.join("db.lock"));
    let db = Database::open(dir).expect("recovery open must succeed once faults stop");
    let mut conn = db.connect();
    let present: Vec<(i64, i64)> = match conn
        .query("SELECT batch, COUNT(*) FROM t GROUP BY batch ORDER BY batch")
    {
        Ok(r) => (0..r.nrows()).map(|i| (int_of(r.value(i, 0)), int_of(r.value(i, 1)))).collect(),
        Err(MlError::Catalog(m)) if m.contains("unknown table") => {
            assert!(acked.is_empty(), "CREATE TABLE was acknowledged but lost: {m}");
            Vec::new()
        }
        Err(e) => panic!("recovered database failed the oracle query: {e:?}"),
    };
    // Contiguous prefix, each batch fully present (2 rows): no torn or
    // reordered transactions survive.
    for (i, (batch, n)) in present.iter().enumerate() {
        assert_eq!(*batch, i as i64, "non-contiguous batches survived: {present:?}");
        assert_eq!(*n, 2, "partial transaction visible for batch {batch}");
    }
    // Durability: every acknowledged commit is in the recovered state.
    for b in acked.iter().filter(|&&b| b >= 0) {
        assert!(
            present.iter().any(|(p, _)| p == b),
            "acked batch {b} lost after recovery; present: {present:?}, acked: {acked:?}"
        );
    }
    // One clean checkpoint must succeed and sweep all debris.
    db.checkpoint().expect("disarmed checkpoint after recovery");
    drop(conn);
    drop(db);
    assert_no_leaks(dir);
}

fn sweep_lifecycle(mode: FaultMode) {
    let _g = fault::test_lock();
    for k in 0u64.. {
        let dir = tempfile::tempdir().unwrap();
        fault::arm(FaultPolicy::Nth(k), mode);
        let (acked, res) = lifecycle_workload(dir.path());
        let rep = fault::disarm();
        if let Err(e) = &res {
            assert_clean_error(e);
        }
        verify_recovery(dir.path(), &acked);
        if !rep.fired {
            assert!(res.is_ok(), "fault-free run must succeed: {:?}", res.err());
            assert!(rep.ios > 20, "suspiciously few injection points swept: {}", rep.ios);
            break;
        }
    }
}

#[test]
fn lifecycle_sweep_error_mode() {
    sweep_lifecycle(FaultMode::Error);
}

#[test]
fn lifecycle_sweep_short_write_mode() {
    sweep_lifecycle(FaultMode::ShortWrite);
}

#[test]
fn lifecycle_sweep_torn_write_mode() {
    sweep_lifecycle(FaultMode::TornWrite);
}

// ---------------------------------------------------------------------------
// Workload B: spilled aggregation / join / sort. The engine's temp
// directories are pointed at a private observation root so every leaked
// spill file is visible; the connection must survive each abort.
// ---------------------------------------------------------------------------

const SPILL_ROWS: usize = 6_000;

fn spill_exec_opts() -> ExecOptions {
    ExecOptions {
        mode: ExecMode::Streaming,
        threads: 1,
        vector_size: 1024,
        memory_budget: 16 * 1024,
        // Index joins bypass the grace-hash spill path; the sweep wants
        // the out-of-core operators on the floor.
        use_hash_index: false,
        use_order_index: false,
        ..Default::default()
    }
}

fn build_spill_table(conn: &mut Connection) {
    conn.execute("CREATE TABLE big (k INT NOT NULL, v INT NOT NULL)").unwrap();
    let k: Vec<i32> = (0..SPILL_ROWS).map(|i| (i % 2000) as i32).collect();
    let v: Vec<i32> = (0..SPILL_ROWS).map(|i| ((i * 7919) % 100_000) as i32).collect();
    conn.append("big", vec![ColumnBuffer::Int(k), ColumnBuffer::Int(v)]).unwrap();
}

fn spilled_queries(conn: &mut Connection) -> Result<()> {
    conn.query("SELECT k, SUM(v) FROM big GROUP BY k")?;
    conn.query("SELECT COUNT(*) FROM big a, big b WHERE a.k = b.k")?;
    conn.query("SELECT v FROM big ORDER BY v")?;
    Ok(())
}

fn sweep_spilled(mode: FaultMode) {
    let _g = fault::test_lock();
    // Redirect the engine's lazily created spill directories into a
    // private root so leaks are observable. `TMPDIR` is read at tempdir
    // creation time; every test in this binary holds the fault lock, so
    // nothing else allocates temp dirs while it is overridden.
    let obs = tempfile::tempdir().unwrap();
    let prev = std::env::var_os("TMPDIR");
    std::env::set_var("TMPDIR", obs.path());
    let outcome = std::panic::catch_unwind(|| {
        for k in 0u64.. {
            let db = Database::open_in_memory();
            let mut conn = db.connect();
            conn.set_exec_options(spill_exec_opts());
            build_spill_table(&mut conn); // in-memory: outside the swept window
            fault::arm(FaultPolicy::Nth(k), mode);
            let res = spilled_queries(&mut conn);
            let rep = fault::disarm();
            if let Err(e) = &res {
                assert_clean_error(e);
            }
            // The aborted query must not take the session down with it.
            let r = conn.query("SELECT 41 + 1").unwrap();
            assert_eq!(int_of(r.value(0, 0)), 42, "connection unusable after spill fault");
            drop(conn);
            drop(db);
            let leftovers: Vec<_> =
                std::fs::read_dir(obs.path()).unwrap().map(|e| e.unwrap().path()).collect();
            assert!(leftovers.is_empty(), "spill files leaked past the query: {leftovers:?}");
            if !rep.fired {
                assert!(res.is_ok(), "fault-free spilled run must succeed: {:?}", res.err());
                assert!(rep.ios > 10, "suspiciously few spill I/Os swept: {}", rep.ios);
                break;
            }
        }
    });
    match prev {
        Some(p) => std::env::set_var("TMPDIR", p),
        None => std::env::remove_var("TMPDIR"),
    }
    if let Err(p) = outcome {
        std::panic::resume_unwind(p);
    }
}

#[test]
fn spilled_query_sweep_error_mode() {
    sweep_spilled(FaultMode::Error);
}

#[test]
fn spilled_query_sweep_torn_write_mode() {
    sweep_spilled(FaultMode::TornWrite);
}

/// The sweep above is only meaningful if the workload actually spills:
/// pin that each of the three breaker shapes goes out of core under the
/// sweep's budget.
#[test]
fn spilled_workload_actually_spills() {
    let _g = fault::test_lock();
    let db = Database::open_in_memory();
    let mut conn = db.connect();
    conn.set_exec_options(spill_exec_opts());
    build_spill_table(&mut conn);
    for q in [
        "SELECT k, SUM(v) FROM big GROUP BY k",
        "SELECT COUNT(*) FROM big a, big b WHERE a.k = b.k",
        "SELECT v FROM big ORDER BY v",
    ] {
        conn.query(q).unwrap();
        let c = conn.last_exec_counters().unwrap();
        assert!(c.spilled_partitions > 0, "workload query did not spill: {q}");
        assert!(c.spill_bytes > 0, "workload query wrote no spill bytes: {q}");
    }
}

// ---------------------------------------------------------------------------
// Pinned regressions: two real bugs found by the sweep while it was
// being built.
// ---------------------------------------------------------------------------

/// `catalog.tmp` lives in the db root, which the cols/ GC never sweeps:
/// before the fix, every failed checkpoint leaked one temp file forever.
#[test]
fn failed_catalog_write_leaves_no_temp_file() {
    let _g = fault::test_lock();
    let dir = tempfile::tempdir().unwrap();
    let db = Database::open(dir.path()).unwrap();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE t (k INT)").unwrap();
    conn.execute("INSERT INTO t VALUES (1)").unwrap();
    fault::arm(FaultPolicy::SiteMatching("catalog.sync".into()), FaultMode::Error);
    let err = db.checkpoint().unwrap_err();
    let rep = fault::disarm();
    assert!(rep.fired, "catalog.sync site was never reached");
    assert_clean_error(&err);
    assert!(!dir.path().join("catalog.tmp").exists(), "failed checkpoint leaked catalog.tmp");
    // The store stays fully usable: the next checkpoint succeeds.
    db.checkpoint().unwrap();
    let r = conn.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(int_of(r.value(0, 0)), 1);
}

/// Before the fix a failed append left its half-written frame in the
/// writer's buffer; the next commit appended *after* it, replay stopped
/// at the torn frame, and the later — acknowledged — commit silently
/// vanished on restart.
#[test]
fn failed_wal_append_does_not_corrupt_later_commits() {
    let _g = fault::test_lock();
    let dir = tempfile::tempdir().unwrap();
    {
        let db = Database::open(dir.path()).unwrap();
        let mut conn = db.connect();
        conn.execute("CREATE TABLE t (k INT)").unwrap();
        conn.execute("INSERT INTO t VALUES (1)").unwrap();
        fault::arm(FaultPolicy::SiteMatching("wal.append".into()), FaultMode::ShortWrite);
        let err = conn.execute("INSERT INTO t VALUES (2)").unwrap_err();
        let rep = fault::disarm();
        assert!(rep.fired, "wal.append site was never reached");
        assert_clean_error(&err);
        // Acknowledged *after* the fault: this is the commit the old
        // writer corrupted.
        conn.execute("INSERT INTO t VALUES (3)").unwrap();
    }
    let db = Database::open(dir.path()).unwrap();
    let mut conn = db.connect();
    let r = conn.query("SELECT k FROM t ORDER BY k").unwrap();
    let ks: Vec<i64> = (0..r.nrows()).map(|i| int_of(r.value(i, 0))).collect();
    assert_eq!(ks, vec![1, 3], "the commit acked after the failed append must survive restart");
}

// ---------------------------------------------------------------------------
// WAL torn-tail property: truncating the log at *every* byte offset
// recovers exactly a prefix of the acknowledged transactions.
// ---------------------------------------------------------------------------

#[test]
fn wal_torn_tail_recovers_exactly_an_acked_prefix() {
    let _g = fault::test_lock();
    const NTX: usize = 8;
    let src = tempfile::tempdir().unwrap();
    {
        let db = Database::open(src.path()).unwrap();
        let mut conn = db.connect();
        conn.execute("CREATE TABLE w (i INT NOT NULL)").unwrap();
        for i in 0..NTX {
            conn.execute(&format!("INSERT INTO w VALUES ({i})")).unwrap();
        }
        // No checkpoint: every transaction lives only in the WAL.
        assert!(!src.path().join("catalog.bin").exists(), "workload must not checkpoint");
    }
    let wal = std::fs::read(src.path().join("wal.log")).unwrap();
    assert!(wal.len() > 100, "WAL unexpectedly small: {} bytes", wal.len());
    for cut in 0..=wal.len() {
        let dir = tempfile::tempdir().unwrap();
        std::fs::write(dir.path().join("wal.log"), &wal[..cut]).unwrap();
        let db = Database::open(dir.path())
            .unwrap_or_else(|e| panic!("torn tail at byte {cut} must not fail recovery: {e:?}"));
        let mut conn = db.connect();
        let rows: Vec<i64> = match conn.query("SELECT i FROM w ORDER BY i") {
            Ok(r) => (0..r.nrows()).map(|i| int_of(r.value(i, 0))).collect(),
            // The CREATE TABLE transaction itself was torn off: a
            // zero-transaction prefix.
            Err(MlError::Catalog(m)) if m.contains("unknown table") => {
                assert!(cut < wal.len(), "full WAL lost the schema");
                continue;
            }
            Err(e) => panic!("recovery of the tail cut at byte {cut} surfaced {e:?}"),
        };
        for (i, v) in rows.iter().enumerate() {
            assert_eq!(
                *v, i as i64,
                "cut at byte {cut}: recovered rows are not a prefix: {rows:?}"
            );
        }
        if cut == wal.len() {
            assert_eq!(rows.len(), NTX, "untruncated WAL must recover every transaction");
        }
    }
}
