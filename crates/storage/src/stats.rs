//! Per-column statistics: row count, null count, an NDV (number of
//! distinct values) sketch, and min/max in the order-preserving `i64` key
//! domain of [`crate::index::key_at`].
//!
//! The summaries feed the cost-based optimizer: equality selectivity is
//! `1/ndv`, range selectivity is the probed fraction of the `[min, max]`
//! span, and join output cardinality uses the distinct-value estimate
//! `|L|·|R| / max(ndv_L, ndv_R)`.
//!
//! Maintenance discipline mirrors the other column caches:
//! * built in one pass over a column ([`ColumnStats::build`]);
//! * **mergeable** ([`ColumnStats::merge`]) so consolidation after an
//!   append combines the base segment's cached stats with freshly built
//!   stats of the (small) appended segments instead of rescanning;
//! * deletes leave them untouched — like zonemaps they are conservative
//!   physical-row summaries, and the visible row count is tracked by the
//!   table metadata;
//! * persisted as checksummed `.st` sidecars at checkpoint
//!   ([`crate::persist::write_stats_file`]); a corrupt or stale sidecar
//!   is a cache miss, never an error.
//!
//! The NDV sketch is a HyperLogLog with [`HLL_REGS`] registers
//! (standard-error ≈ `1.04/sqrt(m)` ≈ 3.3%), with the usual
//! linear-counting correction for small cardinalities so tiny dimension
//! tables estimate near-exactly. Keys are mixed through a splitmix64
//! finalizer: the raw key domain (sequential integers, FNV string
//! hashes) has nowhere near enough avalanche for register selection.

use crate::bat::Bat;
use crate::index::key_at;

/// log2 of the register count.
pub const HLL_BITS: u32 = 10;

/// HyperLogLog register count (1024 ⇒ ~3.3% standard error, 1 KiB per
/// column — negligible against the column data).
pub const HLL_REGS: usize = 1 << HLL_BITS;

/// splitmix64 finalizer: cheap, full-avalanche 64-bit mixing (also used
/// by the optimizer's adversarial-stats shim).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A HyperLogLog distinct-count sketch over the i64 key domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NdvSketch {
    regs: Vec<u8>,
}

impl Default for NdvSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl NdvSketch {
    /// Empty sketch (estimate 0).
    pub fn new() -> NdvSketch {
        NdvSketch { regs: vec![0u8; HLL_REGS] }
    }

    /// Reassemble from persisted registers; `None` on a shape mismatch
    /// (e.g. a sidecar written under a different [`HLL_REGS`]).
    pub fn from_registers(regs: Vec<u8>) -> Option<NdvSketch> {
        (regs.len() == HLL_REGS).then_some(NdvSketch { regs })
    }

    /// The raw registers (persistence).
    pub fn registers(&self) -> &[u8] {
        &self.regs
    }

    /// Observe one key.
    #[inline]
    pub fn insert_key(&mut self, key: i64) {
        let h = mix64(key as u64);
        let idx = (h >> (64 - HLL_BITS)) as usize;
        // Rank of the first set bit in the remaining 54 bits, 1-based.
        let rest = h << HLL_BITS;
        let rank = (rest.leading_zeros() + 1).min(64 - HLL_BITS + 1) as u8;
        if rank > self.regs[idx] {
            self.regs[idx] = rank;
        }
    }

    /// Union with another sketch (register-wise max) — the append /
    /// consolidation merge.
    pub fn merge(&mut self, other: &NdvSketch) {
        for (a, b) in self.regs.iter_mut().zip(&other.regs) {
            *a = (*a).max(*b);
        }
    }

    /// Estimated number of distinct keys observed.
    pub fn estimate(&self) -> f64 {
        let m = HLL_REGS as f64;
        let mut sum = 0.0f64;
        let mut zeros = 0usize;
        for &r in &self.regs {
            sum += 1.0 / f64::from(1u32 << r.min(31));
            if r == 0 {
                zeros += 1;
            }
        }
        // alpha_m for m >= 128.
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            // Small-range (linear counting) correction.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }
}

/// One column's statistics summary.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Physical rows summarised (including rows later masked deleted).
    pub rows: usize,
    /// NULL rows among them.
    pub nulls: usize,
    /// Min key over non-NULL rows, in the [`key_at`] domain. Only
    /// meaningful when [`ColumnStats::has_range`] — VARCHAR keys are
    /// hashes (no order), and all-NULL columns have no range.
    pub min_key: i64,
    /// Max key over non-NULL rows (see [`ColumnStats::min_key`]).
    pub max_key: i64,
    /// Whether `min_key`/`max_key` describe a real value range.
    pub has_range: bool,
    /// Distinct-count sketch over non-NULL keys (strings participate via
    /// their FNV hash — collisions only ever *under*-count, and NDV is an
    /// estimate anyway).
    pub sketch: NdvSketch,
}

impl ColumnStats {
    /// Empty-column stats.
    pub fn empty() -> ColumnStats {
        ColumnStats {
            rows: 0,
            nulls: 0,
            min_key: i64::MAX,
            max_key: i64::MIN,
            has_range: false,
            sketch: NdvSketch::new(),
        }
    }

    /// One-pass build over a column.
    pub fn build(bat: &Bat) -> ColumnStats {
        let mut s = ColumnStats::empty();
        s.rows = bat.len();
        let orderable = crate::index::orderable(bat);
        for i in 0..bat.len() {
            if bat.is_null_at(i) {
                s.nulls += 1;
                continue;
            }
            let k = key_at(bat, i);
            s.sketch.insert_key(k);
            if orderable {
                s.min_key = s.min_key.min(k);
                s.max_key = s.max_key.max(k);
            }
        }
        s.has_range = orderable && s.nulls < s.rows;
        s
    }

    /// Combine the stats of two concatenated segments (append
    /// maintenance). Row/null counts and min/max are exact; NDV is the
    /// sketch union.
    pub fn merge(&self, other: &ColumnStats) -> ColumnStats {
        let mut sketch = self.sketch.clone();
        sketch.merge(&other.sketch);
        let has_range = self.has_range || other.has_range;
        ColumnStats {
            rows: self.rows + other.rows,
            nulls: self.nulls + other.nulls,
            min_key: match (self.has_range, other.has_range) {
                (true, true) => self.min_key.min(other.min_key),
                (true, false) => self.min_key,
                (false, true) => other.min_key,
                (false, false) => i64::MAX,
            },
            max_key: match (self.has_range, other.has_range) {
                (true, true) => self.max_key.max(other.max_key),
                (true, false) => self.max_key,
                (false, true) => other.max_key,
                (false, false) => i64::MIN,
            },
            has_range,
            sketch,
        }
    }

    /// Estimated number of distinct non-NULL values, clamped to the
    /// non-NULL row count (a sketch cannot be allowed to report more
    /// distinct values than there are rows).
    pub fn ndv(&self) -> f64 {
        self.sketch.estimate().min((self.rows - self.nulls) as f64).max(if self.rows > self.nulls {
            1.0
        } else {
            0.0
        })
    }

    /// Fraction of NULL rows.
    pub fn null_frac(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nulls as f64 / self.rows as f64
        }
    }

    /// Approximate size in bytes (cache accounting).
    pub fn size_bytes(&self) -> usize {
        HLL_REGS + 5 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_types::ColumnBuffer;
    use proptest::prelude::*;

    #[test]
    fn ndv_small_cardinalities_near_exact() {
        // Linear counting regime: tiny dimension tables must estimate
        // essentially exactly (they drive 1/ndv equality selectivities).
        for n in [1usize, 5, 25, 100, 1000] {
            let bat = Bat::Int((0..n as i32).collect());
            let s = ColumnStats::build(&bat);
            let est = s.ndv();
            let err = (est - n as f64).abs() / n as f64;
            assert!(err < 0.10, "n={n}: est {est} err {err}");
        }
    }

    #[test]
    fn ndv_error_bound_at_1m_distinct() {
        // Acceptance bound from the issue: relative error < 15% at 1M
        // distinct values (HLL with 1024 registers sits near 3%).
        let mut sk = NdvSketch::new();
        for k in 0..1_000_000i64 {
            sk.insert_key(k);
        }
        let est = sk.estimate();
        let err = (est - 1_000_000.0).abs() / 1_000_000.0;
        assert!(err < 0.15, "est {est}, rel err {err}");
    }

    #[test]
    fn ndv_repeated_values_counted_once() {
        let bat = Bat::Int((0..100_000).map(|i| i % 50).collect());
        let s = ColumnStats::build(&bat);
        let est = s.ndv();
        assert!((45.0..=55.0).contains(&est), "50 distinct, est {est}");
    }

    #[test]
    fn nulls_and_range_tracked() {
        let bat = Bat::Int(vec![5, i32::MIN, 2, 9, i32::MIN]);
        let s = ColumnStats::build(&bat);
        assert_eq!(s.rows, 5);
        assert_eq!(s.nulls, 2);
        assert!(s.has_range);
        assert_eq!((s.min_key, s.max_key), (2, 9));
        assert!((s.ndv() - 3.0).abs() < 0.5, "3 distinct, est {}", s.ndv());
        assert!((s.null_frac() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn all_null_and_empty_columns() {
        let s = ColumnStats::build(&Bat::Int(vec![i32::MIN; 10]));
        assert_eq!((s.rows, s.nulls), (10, 10));
        assert!(!s.has_range);
        assert_eq!(s.ndv(), 0.0);
        let e = ColumnStats::build(&Bat::Int(vec![]));
        assert_eq!(e.rows, 0);
        assert!(!e.has_range);
        assert_eq!(e.null_frac(), 0.0);
    }

    #[test]
    fn varchar_gets_ndv_but_no_range() {
        let bat = Bat::from_buffer(&ColumnBuffer::Varchar(vec![
            Some("a".into()),
            Some("b".into()),
            Some("a".into()),
            None,
        ]));
        let s = ColumnStats::build(&bat);
        assert!(!s.has_range, "strings hash; no order-preserving range");
        assert_eq!(s.nulls, 1);
        assert!((s.ndv() - 2.0).abs() < 0.5, "est {}", s.ndv());
    }

    #[test]
    fn merge_is_exact_for_counts_and_range() {
        let a = ColumnStats::build(&Bat::Int(vec![1, 2, i32::MIN]));
        let b = ColumnStats::build(&Bat::Int(vec![7, i32::MIN, -4]));
        let m = a.merge(&b);
        assert_eq!(m.rows, 6);
        assert_eq!(m.nulls, 2);
        assert_eq!((m.min_key, m.max_key), (-4, 7));
        // Merge with an all-NULL side keeps the other side's range.
        let n = ColumnStats::build(&Bat::Int(vec![i32::MIN]));
        let m2 = a.merge(&n);
        assert_eq!((m2.min_key, m2.max_key), (1, 2));
        assert!(m2.has_range);
    }

    #[test]
    fn sketch_roundtrips_through_registers() {
        let mut sk = NdvSketch::new();
        for k in 0..10_000 {
            sk.insert_key(k);
        }
        let rt = NdvSketch::from_registers(sk.registers().to_vec()).unwrap();
        assert_eq!(rt, sk);
        assert!(NdvSketch::from_registers(vec![0; 3]).is_none(), "wrong register count");
    }

    proptest! {
        #[test]
        fn prop_merge_equals_build_over_concat(
            a in proptest::collection::vec(-500i32..500, 0..300),
            b in proptest::collection::vec(-500i32..500, 0..300),
        ) {
            let sa = ColumnStats::build(&Bat::Int(a.clone()));
            let sb = ColumnStats::build(&Bat::Int(b.clone()));
            let merged = sa.merge(&sb);
            let mut cat = a;
            cat.extend(b);
            let whole = ColumnStats::build(&Bat::Int(cat));
            // Counts and range are exact under merge.
            prop_assert_eq!(merged.rows, whole.rows);
            prop_assert_eq!(merged.nulls, whole.nulls);
            prop_assert_eq!(merged.has_range, whole.has_range);
            if whole.has_range {
                prop_assert_eq!(merged.min_key, whole.min_key);
                prop_assert_eq!(merged.max_key, whole.max_key);
            }
            // The sketch union is *identical* to the sketch of the
            // concatenation (HLL merge is lossless w.r.t. build order).
            prop_assert_eq!(merged.sketch, whole.sketch);
        }

        #[test]
        fn prop_ndv_within_bounds(vals in proptest::collection::vec(-200i32..200, 1..500)) {
            let s = ColumnStats::build(&Bat::Int(vals.clone()));
            let mut distinct: Vec<i32> =
                vals.iter().copied().filter(|&v| v != i32::MIN).collect();
            distinct.sort_unstable();
            distinct.dedup();
            let truth = distinct.len() as f64;
            let est = s.ndv();
            // Small-cardinality regime: linear counting keeps this tight.
            prop_assert!((est - truth).abs() <= (truth * 0.1).max(2.0),
                "truth {truth}, est {est}");
        }
    }
}
