//! The native-language interface (paper §3.3): moving result sets into the
//! host "analytical environment" with zero-copy, eager, or lazy
//! conversion.
//!
//! The paper's three mechanisms map to safe Rust as follows (see
//! DESIGN.md §7 for the full argument):
//!
//! | paper                                   | here                        |
//! |-----------------------------------------|-----------------------------|
//! | share pointer + `mprotect` copy-on-write| [`SharedArray`] (`Arc` + clone-on-first-write) |
//! | header forgery (`mmap MAP_FIXED`)       | host metadata out-of-line — cost is O(1) either way |
//! | `PROT_NONE` + SIGSEGV-driven conversion | [`LazyColumn`] materialising on first access |
//!
//! Zero copy applies only when the host representation is bit-compatible
//! ("contiguous C-style arrays containing four-byte signed integers"):
//! every fixed-width type qualifies; VARCHAR always converts.

use monetlite_storage::Bat;
use monetlite_types::{ColumnBuffer, LogicalType, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::QueryResult;

/// How a result set crosses the embedding boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferMode {
    /// Share fixed-width columns, convert only strings (the MonetDBLite
    /// default).
    ZeroCopy,
    /// Convert every column up front (what a conventional driver does).
    Eager,
    /// Build empty facades; convert a column the first time it is read.
    Lazy,
}

/// Transfer statistics, the quantities Figures 5/6 measure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Columns shared without copying.
    pub zero_copied: usize,
    /// Columns converted (copied) during import.
    pub converted: usize,
    /// Columns deferred for lazy conversion.
    pub deferred: usize,
    /// Bytes actually copied.
    pub bytes_copied: usize,
}

/// One column as seen by the host environment.
pub enum HostColumn {
    /// Shared with the engine: reads are free, the first write clones
    /// (copy-on-write — the `mprotect` discipline of §3.3 enforced by the
    /// type system instead of the MMU).
    Shared(SharedArray),
    /// Fully materialised native array.
    Native(ColumnBuffer),
    /// Facade that converts on first access (§3.3 *Lazy Conversion*).
    Lazy(LazyColumn),
}

impl HostColumn {
    /// Row count.
    pub fn len(&self) -> usize {
        match self {
            HostColumn::Shared(s) => s.bat.len(),
            HostColumn::Native(b) => b.len(),
            HostColumn::Lazy(l) => l.bat.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read one value (triggers lazy conversion).
    pub fn get(&self, row: usize) -> Value {
        match self {
            HostColumn::Shared(s) => s.view().get(row),
            HostColumn::Native(b) => b.get(row),
            HostColumn::Lazy(l) => l.materialized().get(row),
        }
    }

    /// View as a fully native buffer (triggers conversion where needed).
    pub fn native(&self) -> ColumnBuffer {
        match self {
            HostColumn::Shared(s) => s.view().to_buffer(None),
            HostColumn::Native(b) => b.clone(),
            HostColumn::Lazy(l) => l.materialized().clone(),
        }
    }
}

/// A column shared between database and host with copy-on-write.
pub struct SharedArray {
    bat: Arc<Bat>,
    /// Local copy created on first write (copy-on-write).
    local: Option<Box<Bat>>,
    cow_events: Arc<AtomicU64>,
}

impl SharedArray {
    fn new(bat: Arc<Bat>, cow_events: Arc<AtomicU64>) -> SharedArray {
        SharedArray { bat, local: None, cow_events }
    }

    /// Read-only view (no copy ever).
    pub fn view(&self) -> &Bat {
        match &self.local {
            Some(l) => l,
            None => &self.bat,
        }
    }

    /// True while still physically sharing the database's array.
    pub fn is_shared(&self) -> bool {
        self.local.is_none()
    }

    /// Mutable access: the first call copies the data into host-owned
    /// memory ("If code from the target environment attempts to write into
    /// the shared data area, the data should be copied within the target
    /// environment and only the copy modified", §3.3). The database's copy
    /// is never touched.
    pub fn make_mut(&mut self) -> &mut Bat {
        if self.local.is_none() {
            self.cow_events.fetch_add(1, Ordering::Relaxed);
            self.local = Some(Box::new((*self.bat).clone()));
        }
        self.local.as_mut().unwrap()
    }
}

/// A lazily converted column: conversion cost is paid only if the host
/// actually touches the data.
pub struct LazyColumn {
    bat: Arc<Bat>,
    cache: OnceLock<ColumnBuffer>,
    conversions: Arc<AtomicU64>,
}

impl LazyColumn {
    /// Whether conversion has happened yet.
    pub fn is_materialized(&self) -> bool {
        self.cache.get().is_some()
    }

    fn materialized(&self) -> &ColumnBuffer {
        self.cache.get_or_init(|| {
            self.conversions.fetch_add(1, Ordering::Relaxed);
            self.bat.to_buffer(None)
        })
    }
}

/// A host-side data frame: what `dbReadTable`/`dbGetQuery` hand to R.
pub struct HostFrame {
    /// Column names.
    pub names: Vec<String>,
    /// Column data.
    pub cols: Vec<HostColumn>,
    /// Rows.
    pub rows: usize,
    /// What the import did.
    pub stats: TransferStats,
    /// Copy-on-write events observed on shared columns.
    pub cow_events: Arc<AtomicU64>,
    /// Lazy conversions performed so far.
    pub lazy_conversions: Arc<AtomicU64>,
}

impl HostFrame {
    /// Import a query result into the host environment.
    pub fn import(result: &QueryResult, mode: TransferMode) -> HostFrame {
        let cow_events = Arc::new(AtomicU64::new(0));
        let lazy_conversions = Arc::new(AtomicU64::new(0));
        let mut stats = TransferStats::default();
        let mut cols = Vec::with_capacity(result.ncols());
        for i in 0..result.ncols() {
            let bat = result.col_shared(i);
            let fixed = result.types()[i] != LogicalType::Varchar;
            let col = match (mode, fixed) {
                (TransferMode::ZeroCopy, true) => {
                    stats.zero_copied += 1;
                    HostColumn::Shared(SharedArray::new(bat, cow_events.clone()))
                }
                (TransferMode::ZeroCopy, false) | (TransferMode::Eager, _) => {
                    stats.converted += 1;
                    let buf = bat.to_buffer(None);
                    stats.bytes_copied += buf.size_bytes();
                    HostColumn::Native(buf)
                }
                (TransferMode::Lazy, _) => {
                    stats.deferred += 1;
                    HostColumn::Lazy(LazyColumn {
                        bat,
                        cache: OnceLock::new(),
                        conversions: lazy_conversions.clone(),
                    })
                }
            };
            cols.push(col);
        }
        HostFrame {
            names: result.names().to_vec(),
            cols,
            rows: result.nrows(),
            stats,
            cow_events,
            lazy_conversions,
        }
    }

    /// Column by name.
    pub fn col(&self, name: &str) -> Option<&HostColumn> {
        self.names.iter().position(|n| n == name).map(|i| &self.cols[i])
    }

    /// Mutable column by index.
    pub fn col_mut(&mut self, i: usize) -> &mut HostColumn {
        &mut self.cols[i]
    }

    /// Number of lazy conversions that have fired.
    pub fn lazy_conversions(&self) -> u64 {
        self.lazy_conversions.load(Ordering::Relaxed)
    }

    /// Number of copy-on-write events.
    pub fn cow_count(&self) -> u64 {
        self.cow_events.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Database;

    fn result() -> (Database, QueryResult) {
        let db = Database::open_in_memory();
        let mut conn = db.connect();
        conn.run_script(
            "CREATE TABLE t (a INT, b VARCHAR(10), c DOUBLE);
             INSERT INTO t VALUES (1, 'x', 1.5), (2, 'y', 2.5), (3, NULL, 3.5);",
        )
        .unwrap();
        let r = conn.query("SELECT a, b, c FROM t").unwrap();
        (db, r)
    }

    #[test]
    fn zero_copy_shares_fixed_width_only() {
        let (_db, r) = result();
        let f = HostFrame::import(&r, TransferMode::ZeroCopy);
        assert_eq!(f.stats.zero_copied, 2, "int and double share");
        assert_eq!(f.stats.converted, 1, "varchar converts");
        match &f.cols[0] {
            HostColumn::Shared(s) => assert!(s.is_shared()),
            other => panic!("expected shared, got {:?}", other.len()),
        }
        assert_eq!(f.cols[1].get(0), Value::Str("x".into()));
    }

    #[test]
    fn zero_copy_is_o1_in_data_size() {
        // Transfer stats must show zero bytes copied for fixed columns.
        let (_db, r) = result();
        let f = HostFrame::import(&r, TransferMode::ZeroCopy);
        // Only the varchar column contributes copied bytes.
        let varchar_bytes = r.col_shared(1).to_buffer(None).size_bytes();
        assert_eq!(f.stats.bytes_copied, varchar_bytes);
    }

    #[test]
    fn copy_on_write_isolates_the_database() {
        let (_db, r) = result();
        let mut f = HostFrame::import(&r, TransferMode::ZeroCopy);
        assert_eq!(f.cow_count(), 0);
        // Host mutates column 0.
        if let HostColumn::Shared(s) = f.col_mut(0) {
            let local = s.make_mut();
            if let Bat::Int(v) = local {
                v[0] = 999;
            }
            assert!(!s.is_shared());
        } else {
            panic!("expected shared column");
        }
        assert_eq!(f.cow_count(), 1);
        // The host sees the change; the database copy is untouched.
        assert_eq!(f.cols[0].get(0), Value::Int(999));
        assert_eq!(r.value(0, 0), Value::Int(1), "database data must be unmodified");
        // A second write does not copy again.
        if let HostColumn::Shared(s) = f.col_mut(0) {
            s.make_mut();
        }
        assert_eq!(f.cow_count(), 1);
    }

    #[test]
    fn eager_converts_everything() {
        let (_db, r) = result();
        let f = HostFrame::import(&r, TransferMode::Eager);
        assert_eq!(f.stats.converted, 3);
        assert_eq!(f.stats.zero_copied, 0);
        assert!(f.stats.bytes_copied > 0);
        assert_eq!(f.cols[2].get(2), Value::Double(3.5));
    }

    #[test]
    fn lazy_pays_only_for_touched_columns() {
        let (_db, r) = result();
        let f = HostFrame::import(&r, TransferMode::Lazy);
        assert_eq!(f.stats.deferred, 3);
        assert_eq!(f.lazy_conversions(), 0, "nothing converted yet");
        // Touch only column 0 (the SELECT * / use-one-column pattern).
        assert_eq!(f.cols[0].get(1), Value::Int(2));
        assert_eq!(f.lazy_conversions(), 1);
        match &f.cols[1] {
            HostColumn::Lazy(l) => assert!(!l.is_materialized()),
            _ => panic!(),
        }
        // Repeated access converts nothing further.
        assert_eq!(f.cols[0].get(2), Value::Int(3));
        assert_eq!(f.lazy_conversions(), 1);
    }

    #[test]
    fn frame_lookup_by_name() {
        let (_db, r) = result();
        let f = HostFrame::import(&r, TransferMode::ZeroCopy);
        assert!(f.col("b").is_some());
        assert!(f.col("zzz").is_none());
        assert_eq!(f.rows, 3);
    }
}
