//! Sorted per-column string dictionaries: dense integer codes for VARCHAR.
//!
//! A [`StrDict`] maps every row of a VARCHAR column to a `u32` code into a
//! *sorted* table of the column's distinct values. Sorting makes the code
//! domain order-preserving under the same byte-wise `str` ordering the
//! comparison kernels use, so:
//!
//! * equality and range predicates against a string literal become integer
//!   range checks over codes (`kernels::cmp_const` agrees row-for-row);
//! * LIKE evaluates once per *distinct value* instead of once per row —
//!   prefix patterns reduce to a contiguous code range, everything else to
//!   a bitmask over the (small) dictionary domain;
//! * per-zone min/max code summaries give VARCHAR the same morsel-skipping
//!   the integer zonemaps provide, which plain zonemaps cannot (strings
//!   have no order-preserving `i64` key).
//!
//! Like the other column caches the dictionary is disposable: it is built
//! lazily (or loaded from the checkpoint's `.dict` sidecar), carried
//! forward across consolidation by a sorted merge + code remap, and a
//! corrupt or stale sidecar is a cache miss, never an error.

use crate::bat::Bat;
use crate::heap::NULL_OFFSET;
use crate::index::ZONE_ROWS;
use std::collections::HashMap;

/// Code denoting a NULL row (never a valid dictionary index).
pub const NULL_CODE: u32 = u32::MAX;

/// A sorted dictionary over one VARCHAR column plus the per-row encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrDict {
    /// Concatenated distinct values, byte-sorted ascending.
    val_buf: Vec<u8>,
    /// `len()+1` byte offsets into `val_buf` delimiting each value.
    val_offs: Vec<u32>,
    /// One code per physical row ([`NULL_CODE`] for NULL rows).
    codes: Vec<u32>,
    /// Per-[`ZONE_ROWS`] min code over non-NULL rows ([`NULL_CODE`] for
    /// an all-NULL zone, paired with `zone_max = 0`: an empty range).
    zone_min: Vec<u32>,
    /// Per-zone max code over non-NULL rows.
    zone_max: Vec<u32>,
}

impl StrDict {
    /// Build over a VARCHAR column; `None` for any other type.
    pub fn build(bat: &Bat) -> Option<StrDict> {
        let Bat::Varchar { offsets, heap } = bat else {
            return None;
        };
        // Distinct heap offsets first: with duplicate elimination active
        // the per-row loop mostly hits the small offset map, not strings.
        let mut by_off: HashMap<u32, u32> = HashMap::new();
        let mut distinct: Vec<&str> = Vec::new();
        for &o in offsets {
            if o == NULL_OFFSET {
                continue;
            }
            by_off.entry(o).or_insert_with(|| {
                distinct.push(heap.get(o));
                0
            });
        }
        distinct.sort_unstable();
        distinct.dedup();
        let code_of: HashMap<&str, u32> =
            distinct.iter().enumerate().map(|(c, &s)| (s, c as u32)).collect();
        for (&o, code) in by_off.iter_mut() {
            *code = code_of[heap.get(o)];
        }
        let codes: Vec<u32> = offsets
            .iter()
            .map(|&o| if o == NULL_OFFSET { NULL_CODE } else { by_off[&o] })
            .collect();
        let (val_buf, val_offs) = pack_values(&distinct);
        let (zone_min, zone_max) = build_zones(&codes);
        Some(StrDict { val_buf, val_offs, codes, zone_min, zone_max })
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.val_offs.len() - 1
    }

    /// True when the dictionary has no values (all-NULL or empty column).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of encoded rows.
    pub fn rows(&self) -> usize {
        self.codes.len()
    }

    /// The per-row codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The value of a code.
    pub fn value(&self, code: u32) -> &str {
        let (lo, hi) = (self.val_offs[code as usize], self.val_offs[code as usize + 1]);
        // Values are only ever packed from &str.
        std::str::from_utf8(&self.val_buf[lo as usize..hi as usize]).expect("dict utf-8")
    }

    /// Number of values strictly below `s` — the half-open lower bound of
    /// the code range matching `>= s`, and the insertion point of `s`.
    pub fn lower_bound(&self, s: &str) -> u32 {
        self.partition(|v| v < s)
    }

    /// Number of values at or below `s` (upper bound of `<= s`).
    pub fn upper_bound(&self, s: &str) -> u32 {
        self.partition(|v| v <= s)
    }

    /// The exact code of `s`, if present.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        let c = self.lower_bound(s);
        ((c as usize) < self.len() && self.value(c) == s).then_some(c)
    }

    /// Half-open code range of values starting with `prefix` (sorted
    /// byte-wise, such values form one contiguous run).
    pub fn prefix_range(&self, prefix: &str) -> (u32, u32) {
        let lo = self.lower_bound(prefix);
        let hi = self.partition(|v| v < prefix || v.as_bytes().starts_with(prefix.as_bytes()));
        (lo, hi)
    }

    fn partition(&self, pred: impl Fn(&str) -> bool) -> u32 {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if pred(self.value(mid as u32)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo as u32
    }

    /// Min/max code over the non-NULL rows of `[row_lo, row_hi)`, from the
    /// zone summaries (conservative: zone-aligned). `None` when every
    /// covered zone is all-NULL — such a range cannot match any predicate.
    pub fn zone_bounds(&self, row_lo: usize, row_hi: usize) -> Option<(u32, u32)> {
        if self.zone_min.is_empty() || row_hi <= row_lo {
            return None;
        }
        let z0 = (row_lo / ZONE_ROWS).min(self.zone_min.len() - 1);
        let z1 = ((row_hi - 1) / ZONE_ROWS).min(self.zone_min.len() - 1);
        let mut mn = NULL_CODE;
        let mut mx = 0u32;
        let mut any = false;
        for z in z0..=z1 {
            if self.zone_min[z] == NULL_CODE {
                continue;
            }
            mn = mn.min(self.zone_min[z]);
            mx = mx.max(self.zone_max[z]);
            any = true;
        }
        any.then_some((mn, mx))
    }

    /// New dictionary covering this column plus appended VARCHAR segments
    /// (consolidation carry-forward): a sorted merge of the value tables
    /// and a code remap, never a rescan of the base rows' strings.
    pub fn extended(&self, tails: &[&Bat]) -> Option<StrDict> {
        // Distinct new values not already present.
        let mut fresh: Vec<&str> = Vec::new();
        let mut tail_offs: Vec<Vec<u32>> = Vec::with_capacity(tails.len());
        for t in tails {
            let Bat::Varchar { offsets, heap } = t else {
                return None;
            };
            for &o in offsets {
                if o != NULL_OFFSET {
                    fresh.push(heap.get(o));
                }
            }
            tail_offs.push(offsets.clone());
        }
        fresh.sort_unstable();
        fresh.dedup();
        fresh.retain(|s| self.code_of(s).is_none());
        // Merge the two sorted value lists; old code -> new code is a
        // shift by the number of fresh values inserted before it.
        let mut merged: Vec<&str> = Vec::with_capacity(self.len() + fresh.len());
        let mut shift: Vec<u32> = Vec::with_capacity(self.len());
        let mut fi = 0usize;
        for c in 0..self.len() {
            let v = self.value(c as u32);
            while fi < fresh.len() && fresh[fi] < v {
                merged.push(fresh[fi]);
                fi += 1;
            }
            shift.push(fi as u32);
            merged.push(v);
        }
        merged.extend_from_slice(&fresh[fi..]);
        let code_of: HashMap<&str, u32> =
            merged.iter().enumerate().map(|(c, &s)| (s, c as u32)).collect();
        let mut codes: Vec<u32> = self
            .codes
            .iter()
            .map(|&c| if c == NULL_CODE { NULL_CODE } else { c + shift[c as usize] })
            .collect();
        for (t, offs) in tails.iter().zip(&tail_offs) {
            let Bat::Varchar { heap, .. } = t else { unreachable!() };
            for &o in offs {
                codes.push(if o == NULL_OFFSET { NULL_CODE } else { code_of[heap.get(o)] });
            }
        }
        let (val_buf, val_offs) = pack_values(&merged);
        let (zone_min, zone_max) = build_zones(&codes);
        Some(StrDict { val_buf, val_offs, codes, zone_min, zone_max })
    }

    /// Approximate size in bytes (cache accounting).
    pub fn size_bytes(&self) -> usize {
        self.val_buf.len()
            + self.val_offs.len() * 4
            + self.codes.len() * 4
            + self.zone_min.len() * 8
    }

    /// The raw parts for persistence: (value offsets, value bytes, codes).
    pub fn raw_parts(&self) -> (&[u32], &[u8], &[u32]) {
        (&self.val_offs, &self.val_buf, &self.codes)
    }

    /// Reassemble from persisted parts, revalidating every invariant a
    /// sidecar could violate (shape, UTF-8, sortedness, code bounds);
    /// `None` on any mismatch — callers treat it as a cache miss. Zone
    /// summaries are rebuilt rather than trusted.
    pub fn from_parts(val_offs: Vec<u32>, val_buf: Vec<u8>, codes: Vec<u32>) -> Option<StrDict> {
        if val_offs.first() != Some(&0) || *val_offs.last()? as usize != val_buf.len() {
            return None;
        }
        let n = val_offs.len() - 1;
        for w in val_offs.windows(2) {
            if w[0] > w[1] {
                return None;
            }
        }
        let d = StrDict { val_buf, val_offs, codes, zone_min: Vec::new(), zone_max: Vec::new() };
        for c in 0..n {
            let (lo, hi) = (d.val_offs[c] as usize, d.val_offs[c + 1] as usize);
            std::str::from_utf8(&d.val_buf[lo..hi]).ok()?;
            if c > 0 && d.value(c as u32 - 1) >= d.value(c as u32) {
                return None;
            }
        }
        if d.codes.iter().any(|&c| c != NULL_CODE && c as usize >= n) {
            return None;
        }
        let (zone_min, zone_max) = build_zones(&d.codes);
        Some(StrDict { zone_min, zone_max, ..d })
    }
}

fn pack_values(sorted: &[&str]) -> (Vec<u8>, Vec<u32>) {
    let mut buf = Vec::with_capacity(sorted.iter().map(|s| s.len()).sum());
    let mut offs = Vec::with_capacity(sorted.len() + 1);
    offs.push(0u32);
    for s in sorted {
        buf.extend_from_slice(s.as_bytes());
        offs.push(buf.len() as u32);
    }
    (buf, offs)
}

fn build_zones(codes: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let nz = codes.len().div_ceil(ZONE_ROWS);
    let mut mins = Vec::with_capacity(nz);
    let mut maxs = Vec::with_capacity(nz);
    for z in 0..nz {
        let lo = z * ZONE_ROWS;
        let hi = ((z + 1) * ZONE_ROWS).min(codes.len());
        let mut mn = NULL_CODE;
        let mut mx = 0u32;
        let mut any = false;
        for &c in &codes[lo..hi] {
            if c == NULL_CODE {
                continue;
            }
            mn = mn.min(c);
            mx = mx.max(c);
            any = true;
        }
        if any {
            mins.push(mn);
            maxs.push(mx);
        } else {
            mins.push(NULL_CODE);
            maxs.push(0);
        }
    }
    (mins, maxs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_types::ColumnBuffer;
    use proptest::prelude::*;

    fn vc(vals: Vec<Option<&str>>) -> Bat {
        Bat::from_buffer(&ColumnBuffer::Varchar(
            vals.into_iter().map(|s| s.map(String::from)).collect(),
        ))
    }

    #[test]
    fn build_sorts_and_encodes() {
        let bat = vc(vec![Some("pear"), Some("apple"), None, Some("pear"), Some("fig")]);
        let d = StrDict::build(&bat).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!((d.value(0), d.value(1), d.value(2)), ("apple", "fig", "pear"));
        assert_eq!(d.codes(), &[2, 0, NULL_CODE, 2, 1]);
        assert_eq!(d.rows(), 5);
        assert!(StrDict::build(&Bat::Int(vec![1])).is_none());
    }

    #[test]
    fn code_order_matches_str_order() {
        let bat = vc(vec![Some("b"), Some("a"), Some("ab"), Some(""), Some("ba")]);
        let d = StrDict::build(&bat).unwrap();
        for a in 0..d.len() as u32 {
            for b in 0..d.len() as u32 {
                assert_eq!(a.cmp(&b), d.value(a).cmp(d.value(b)), "codes must mirror str order");
            }
        }
    }

    #[test]
    fn bounds_and_prefix_ranges() {
        let bat = vc(vec![Some("ant"), Some("antler"), Some("bee"), Some("cat"), None]);
        let d = StrDict::build(&bat).unwrap();
        assert_eq!(d.code_of("bee"), Some(2));
        assert_eq!(d.code_of("bat"), None);
        assert_eq!(d.lower_bound("b"), 2);
        assert_eq!(d.upper_bound("bee"), 3);
        assert_eq!(d.prefix_range("ant"), (0, 2));
        assert_eq!(d.prefix_range("bee"), (2, 3));
        assert_eq!(d.prefix_range("z"), (4, 4), "empty range past the end");
        assert_eq!(d.prefix_range(""), (0, 4), "empty prefix covers everything");
    }

    #[test]
    fn zone_bounds_skip_all_null_zones() {
        // Two zones: first all-NULL, second holds values.
        let mut vals: Vec<Option<String>> = vec![None; ZONE_ROWS];
        vals.extend((0..10).map(|i| Some(format!("v{i}"))));
        let bat = Bat::from_buffer(&ColumnBuffer::Varchar(vals));
        let d = StrDict::build(&bat).unwrap();
        assert_eq!(d.zone_bounds(0, ZONE_ROWS), None, "all-NULL zone matches nothing");
        let (mn, mx) = d.zone_bounds(ZONE_ROWS, ZONE_ROWS + 10).unwrap();
        assert_eq!((mn, mx), (0, 9));
        let (mn, mx) = d.zone_bounds(0, ZONE_ROWS + 10).unwrap();
        assert_eq!((mn, mx), (0, 9), "union over zones ignores the NULL zone");
    }

    #[test]
    fn extended_remaps_and_inserts() {
        let base = vc(vec![Some("b"), Some("d"), None]);
        let d = StrDict::build(&base).unwrap();
        let tail = vc(vec![Some("c"), Some("a"), Some("d")]);
        let e = d.extended(&[&tail]).unwrap();
        assert_eq!(e.len(), 4);
        assert_eq!((e.value(0), e.value(1), e.value(2), e.value(3)), ("a", "b", "c", "d"));
        // Base rows remapped, tail rows encoded.
        assert_eq!(e.codes(), &[1, 3, NULL_CODE, 2, 0, 3]);
        assert_eq!(e.rows(), 6);
    }

    #[test]
    fn parts_roundtrip_and_validation() {
        let bat = vc(vec![Some("x"), None, Some("héllo"), Some("x"), Some("")]);
        let d = StrDict::build(&bat).unwrap();
        let (offs, buf, codes) = d.raw_parts();
        let rt = StrDict::from_parts(offs.to_vec(), buf.to_vec(), codes.to_vec()).unwrap();
        assert_eq!(rt, d);
        // Unsorted values rejected.
        assert!(StrDict::from_parts(vec![0, 1, 2], b"ba".to_vec(), vec![0]).is_none());
        // Duplicate values rejected.
        assert!(StrDict::from_parts(vec![0, 1, 2], b"aa".to_vec(), vec![0]).is_none());
        // Out-of-range code rejected.
        assert!(StrDict::from_parts(vec![0, 1], b"a".to_vec(), vec![5]).is_none());
        // Offsets not covering the buffer rejected.
        assert!(StrDict::from_parts(vec![0, 1], b"ab".to_vec(), vec![0]).is_none());
        // Invalid UTF-8 rejected.
        assert!(StrDict::from_parts(vec![0, 1], vec![0xFF], vec![0]).is_none());
    }

    #[test]
    fn empty_and_all_null_columns() {
        let d = StrDict::build(&vc(vec![])).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.rows(), 0);
        assert_eq!(d.zone_bounds(0, 0), None);
        let d = StrDict::build(&vc(vec![None, None])).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.codes(), &[NULL_CODE, NULL_CODE]);
        assert_eq!(d.zone_bounds(0, 2), None);
    }

    proptest! {
        #[test]
        fn prop_codes_roundtrip_values(vals in proptest::collection::vec(
            proptest::option::of("[a-e]{0,4}"), 0..120))
        {
            let bat = Bat::from_buffer(&ColumnBuffer::Varchar(vals.clone()));
            let d = StrDict::build(&bat).unwrap();
            for (i, v) in vals.iter().enumerate() {
                match v {
                    None => prop_assert_eq!(d.codes()[i], NULL_CODE),
                    Some(s) => prop_assert_eq!(d.value(d.codes()[i]), s.as_str()),
                }
            }
            // Sorted and duplicate-free.
            for c in 1..d.len() as u32 {
                prop_assert!(d.value(c - 1) < d.value(c));
            }
        }

        #[test]
        fn prop_extended_equals_rebuild(
            base in proptest::collection::vec(proptest::option::of("[a-d]{0,3}"), 0..60),
            tail in proptest::collection::vec(proptest::option::of("[a-f]{0,3}"), 0..60))
        {
            let b = Bat::from_buffer(&ColumnBuffer::Varchar(base.clone()));
            let t = Bat::from_buffer(&ColumnBuffer::Varchar(tail.clone()));
            let ext = StrDict::build(&b).unwrap().extended(&[&t]).unwrap();
            let mut cat = base;
            cat.extend(tail);
            let whole = StrDict::build(&Bat::from_buffer(&ColumnBuffer::Varchar(cat))).unwrap();
            prop_assert_eq!(ext, whole, "carry-forward must equal a fresh build");
        }

        #[test]
        fn prop_prefix_range_matches_scan(
            vals in proptest::collection::vec("[ab]{0,4}", 1..60),
            prefix in "[ab]{0,3}")
        {
            let bat = Bat::from_buffer(&ColumnBuffer::Varchar(
                vals.iter().cloned().map(Some).collect()));
            let d = StrDict::build(&bat).unwrap();
            let (lo, hi) = d.prefix_range(&prefix);
            for c in 0..d.len() as u32 {
                let expect = d.value(c).starts_with(&prefix);
                prop_assert_eq!((lo..hi).contains(&c), expect,
                    "code {} value {:?} prefix {:?}", c, d.value(c), &prefix);
            }
        }
    }
}
