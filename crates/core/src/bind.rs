//! The binder: name resolution, type checking/coercion, aggregate
//! extraction and subquery decorrelation (AST → [`Plan`]).
//!
//! Correlated subqueries are flattened at bind time, the classic
//! MonetDB/relational approach (see ARCHITECTURE.md "Subquery flattening
//! and TPC-H coverage" for worked examples):
//! * `EXISTS (SELECT ... WHERE inner = outer AND p)` → left **semi** join
//!   on the correlated equality keys (NOT EXISTS → **anti** join);
//!   non-equality correlated predicates (Q21's `l2.l_suppkey <>
//!   l1.l_suppkey`) become the join's **residual**, applied per candidate
//!   match;
//! * `x IN (SELECT c ...)` → semi join on `x = c`; an uncorrelated
//!   subquery (including grouped ones, Q18) binds standalone first;
//! * `x NOT IN (SELECT c ...)` → anti join **plus** a count-based guard
//!   that restores SQL's three-valued NULL semantics (Q16): the row
//!   survives only when the subquery is empty, or `x` is not NULL and the
//!   subquery produced no NULL — implemented with existing operators
//!   (aggregate + cross/left join + filter), so every engine inherits it;
//! * `x = (SELECT MIN(c) ... WHERE inner = outer)` (Q2/Q17/Q20) → group
//!   the subquery by its correlated keys, **left join** the outer plan
//!   against the per-group aggregate, and rewrite the comparison to an
//!   expression over the joined aggregate columns (COUNT results are
//!   NULL-coalesced to 0, the empty-group answer);
//! * an **uncorrelated scalar subquery** (Q11's HAVING, Q15, Q22) →
//!   key-less LEFT join against the single-row subquery plan: zero rows
//!   pad NULL (the SQL answer), more than one row is a runtime error.
//!
//! `WITH` common table expressions and `CREATE VIEW` definitions expand
//! at bind time as named derived tables.

use crate::expr::{agg_output_type, AggSpec, ArithOp, BExpr, CmpOp, PAggFunc, ScalarFunc};
use crate::plan::{OutCol, PJoinKind, Plan};
use monetlite_sql::ast;
use monetlite_types::{Date, LogicalType, MlError, Result, Schema, Value};
use std::cell::{Cell, RefCell};

/// A stored view definition: the parsed query plus the optional output
/// column rename list. Expanded by the binder like a derived table.
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// Optional output column renames.
    pub columns: Option<Vec<String>>,
    /// The defining query.
    pub query: ast::SelectStmt,
}

/// Catalog lookup used by the binder; implemented by the core engine's
/// transaction view and by the rowstore baseline's catalog.
pub trait CatalogAccess {
    /// Schema of a base table.
    fn table_schema(&self, name: &str) -> Result<Schema>;

    /// Definition of a view (lower-case name), if one exists. Consulted
    /// when `table_schema` fails; the default implementation knows no
    /// views.
    fn view_def(&self, _name: &str) -> Option<ViewDef> {
        None
    }
}

/// One visible column while binding.
#[derive(Debug, Clone)]
pub struct ScopeCol {
    /// Table alias / name qualifier.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Type.
    pub ty: LogicalType,
}

/// The columns visible to expression binding, aligned with the plan's
/// output positions.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    /// Visible columns.
    pub cols: Vec<ScopeCol>,
}

impl Scope {
    fn resolve(&self, table: Option<&str>, name: &str) -> Result<(usize, LogicalType)> {
        let name = name.to_ascii_lowercase();
        let mut found = None;
        for (i, c) in self.cols.iter().enumerate() {
            let qual_ok = match table {
                None => true,
                Some(t) => c.qualifier.as_deref() == Some(&t.to_ascii_lowercase()),
            };
            if qual_ok && c.name == name {
                if found.is_some() {
                    return Err(MlError::Bind(format!("ambiguous column '{name}'")));
                }
                found = Some((i, c.ty));
            }
        }
        found.ok_or_else(|| match table {
            Some(t) => MlError::Bind(format!("unknown column '{t}.{name}'")),
            None => MlError::Bind(format!("unknown column '{name}'")),
        })
    }
}

/// Binds statements against a catalog.
pub struct Binder<'a> {
    catalog: &'a dyn CatalogAccess,
    /// CTEs currently in scope (statement `WITH` lists, innermost last).
    ctes: RefCell<Vec<ast::Cte>>,
    /// View-expansion depth guard (recursive views are rejected).
    view_depth: Cell<usize>,
    /// Representative values for `ast::Expr::Param` slots when binding a
    /// plan-cache template (empty otherwise — a bare Param is an error).
    params: Vec<Value>,
}

/// Maximum view-in-view expansion depth before the binder assumes a
/// recursive definition.
const MAX_VIEW_DEPTH: usize = 16;

impl<'a> Binder<'a> {
    /// New binder over a catalog view.
    pub fn new(catalog: &'a dyn CatalogAccess) -> Binder<'a> {
        Binder {
            catalog,
            ctes: RefCell::new(Vec::new()),
            view_depth: Cell::new(0),
            params: Vec::new(),
        }
    }

    /// New binder for a plan-cache template: `ast::Expr::Param { index }`
    /// binds to `BExpr::Param` carrying `params[index]` as its
    /// representative value.
    pub fn with_params(catalog: &'a dyn CatalogAccess, params: Vec<Value>) -> Binder<'a> {
        Binder { catalog, ctes: RefCell::new(Vec::new()), view_depth: Cell::new(0), params }
    }

    /// Run `f` with `ctes` pushed onto the in-scope stack.
    fn with_ctes<T>(&self, ctes: &[ast::Cte], f: impl FnOnce(&Self) -> Result<T>) -> Result<T> {
        self.ctes.borrow_mut().extend(ctes.iter().cloned());
        let r = f(self);
        let mut v = self.ctes.borrow_mut();
        let keep = v.len() - ctes.len();
        v.truncate(keep);
        r
    }

    /// Bind a SELECT statement to a plan.
    pub fn bind_select(&self, stmt: &ast::SelectStmt) -> Result<Plan> {
        self.bind_select_scoped(stmt, None).map(|(p, _)| p)
    }

    /// Bind a bare expression over a single table's columns (used by the
    /// engines for UPDATE/DELETE predicates).
    pub fn bind_table_expr(&self, table: &str, e: &ast::Expr) -> Result<(BExpr, Scope)> {
        let schema = self.catalog.table_schema(table)?;
        let scope = Scope {
            cols: schema
                .fields()
                .iter()
                .map(|f| ScopeCol {
                    qualifier: Some(table.to_ascii_lowercase()),
                    name: f.name.clone(),
                    ty: f.ty,
                })
                .collect(),
        };
        let b = self.bind_expr(e, &scope)?;
        Ok((b, scope))
    }

    fn bind_select_scoped(
        &self,
        stmt: &ast::SelectStmt,
        outer: Option<&Scope>,
    ) -> Result<(Plan, Scope)> {
        self.with_ctes(&stmt.ctes, |b| b.bind_select_inner(stmt, outer))
    }

    fn bind_select_inner(
        &self,
        stmt: &ast::SelectStmt,
        outer: Option<&Scope>,
    ) -> Result<(Plan, Scope)> {
        // 1. FROM clause.
        let (mut plan, scope) = if stmt.from.is_empty() {
            (Plan::Values { rows: vec![vec![]], schema: vec![] }, Scope::default())
        } else {
            let mut iter = stmt.from.iter();
            let (mut p, mut s) = self.bind_table_ref(iter.next().unwrap())?;
            for tr in iter {
                let (rp, rs) = self.bind_table_ref(tr)?;
                let schema: Vec<OutCol> = p.schema().iter().chain(rp.schema()).cloned().collect();
                p = Plan::Join {
                    left: Box::new(p),
                    right: Box::new(rp),
                    kind: PJoinKind::Cross,
                    left_keys: vec![],
                    right_keys: vec![],
                    residual: None,
                    schema,
                };
                s.cols.extend(rs.cols);
            }
            (p, s)
        };

        // 2. WHERE: split into conjuncts (factoring conjuncts common to
        // every branch out of OR groups, Q19's shape — the optimizer can
        // then extract the hoisted equalities as join keys), flatten
        // subqueries, filter.
        if let Some(w) = &stmt.where_clause {
            let mut raw = Vec::new();
            split_conjuncts(w, &mut raw);
            let mut conjuncts: Vec<ast::Expr> = Vec::new();
            for c in raw {
                match factor_or_common(c) {
                    Some(parts) => conjuncts.extend(parts),
                    None => conjuncts.push(c.clone()),
                }
            }
            let mut plain = Vec::new();
            for c in &conjuncts {
                if let Some(p2) = self.try_bind_subquery_conjunct(c, plan.clone(), &scope)? {
                    plan = p2;
                } else {
                    plain.push(self.bind_expr_bool(c, &scope, outer)?);
                }
            }
            for pred in plain {
                plan = Plan::Filter { input: Box::new(plan), pred };
            }
        }

        // 3. Grouping & aggregates.
        let has_aggs =
            stmt.projections.iter().any(
                |p| matches!(p, ast::SelectItem::Expr { expr, .. } if expr.contains_aggregate()),
            ) || stmt.having.as_ref().is_some_and(|h| h.contains_aggregate());
        let grouped = !stmt.group_by.is_empty() || has_aggs;

        let (mut plan, out_names, out_exprs_schema) = if grouped {
            let group_bexprs: Vec<BExpr> =
                stmt.group_by.iter().map(|g| self.bind_expr(g, &scope)).collect::<Result<_>>()?;
            let mut aggs: Vec<AggSpec> = Vec::new();
            // Bind projections in aggregate context.
            let mut proj_exprs = Vec::new();
            let mut names = Vec::new();
            for (i, item) in stmt.projections.iter().enumerate() {
                match item {
                    ast::SelectItem::Wildcard | ast::SelectItem::QualifiedWildcard(_) => {
                        return Err(MlError::Bind(
                            "SELECT * is not allowed with GROUP BY/aggregates".into(),
                        ))
                    }
                    ast::SelectItem::Expr { expr, alias } => {
                        let b = self.bind_agg_expr(expr, &scope, &group_bexprs, &mut aggs)?;
                        names.push(output_name(alias.as_deref(), expr, i));
                        proj_exprs.push(b);
                    }
                }
            }
            // HAVING in aggregate context. Conjuncts comparing against an
            // uncorrelated scalar subquery (Q11's shape) are pre-bound
            // here — before the Aggregate node exists — so any aggregates
            // they mention register in `aggs`; the subquery itself joins
            // in after aggregation (phase B below).
            enum HavingPred {
                Plain(BExpr),
                Subquery { other: BExpr, op: ast::BinOp, flipped: bool, subplan: Plan },
            }
            let mut having_preds: Vec<HavingPred> = Vec::new();
            if let Some(h) = &stmt.having {
                let mut hconj = Vec::new();
                split_conjuncts(h, &mut hconj);
                for c in hconj {
                    if let Some((q, other, op, flipped)) = as_scalar_cmp(c) {
                        let (subplan, subscope) =
                            self.bind_select_scoped(q, None).map_err(|e| {
                                MlError::Unsupported(format!(
                                    "HAVING subquery `{c}` must be uncorrelated: {e}"
                                ))
                            })?;
                        if subscope.cols.len() != 1 {
                            return Err(MlError::Bind(format!(
                                "scalar subquery `{c}` must produce exactly one column"
                            )));
                        }
                        let other_b =
                            self.bind_agg_expr(other, &scope, &group_bexprs, &mut aggs)?;
                        having_preds.push(HavingPred::Subquery {
                            other: other_b,
                            op,
                            flipped,
                            subplan,
                        });
                    } else {
                        having_preds.push(HavingPred::Plain(self.bind_agg_expr(
                            c,
                            &scope,
                            &group_bexprs,
                            &mut aggs,
                        )?));
                    }
                }
            }
            // Build Aggregate node schema: groups then aggs.
            let mut agg_schema = Vec::new();
            for (i, g) in group_bexprs.iter().enumerate() {
                agg_schema.push(OutCol { name: format!("g{i}"), ty: g.ty() });
            }
            for (i, a) in aggs.iter().enumerate() {
                agg_schema.push(OutCol { name: format!("a{i}"), ty: a.ty });
            }
            let agg_width = agg_schema.len();
            let mut plan = Plan::Aggregate {
                input: Box::new(plan),
                groups: group_bexprs,
                aggs,
                schema: agg_schema,
            };
            // Phase B: apply HAVING predicates over the aggregate output.
            // Each subquery comparison joins the single-row subquery in
            // (key-less LEFT = scalar join), filters, and projects back to
            // the aggregate width so later predicates see stable columns.
            for hp in having_preds {
                match hp {
                    HavingPred::Plain(pred) => {
                        plan = Plan::Filter { input: Box::new(plan), pred };
                    }
                    HavingPred::Subquery { other, op, flipped, subplan } => {
                        let sub_ty = subplan.schema()[0].ty;
                        let mut schema = plan.schema().to_vec();
                        schema.push(OutCol { name: "subq".into(), ty: sub_ty });
                        plan = Plan::Join {
                            left: Box::new(plan),
                            right: Box::new(subplan),
                            kind: PJoinKind::Left,
                            left_keys: vec![],
                            right_keys: vec![],
                            residual: None,
                            schema,
                        };
                        let subref = BExpr::ColRef { idx: agg_width, ty: sub_ty };
                        let (l, r) = if flipped {
                            coerce_pair(subref, other)?
                        } else {
                            coerce_pair(other, subref)?
                        };
                        let pred = BExpr::Cmp {
                            op: bin_to_cmp(op)?,
                            left: Box::new(l),
                            right: Box::new(r),
                        };
                        plan = Plan::Filter { input: Box::new(plan), pred };
                        let exprs: Vec<BExpr> = (0..agg_width)
                            .map(|i| BExpr::ColRef { idx: i, ty: plan.schema()[i].ty })
                            .collect();
                        let schema = plan.schema()[..agg_width].to_vec();
                        plan = Plan::Project { input: Box::new(plan), exprs, schema };
                    }
                }
            }
            let schema: Vec<OutCol> = proj_exprs
                .iter()
                .zip(&names)
                .map(|(e, n)| OutCol { name: n.clone(), ty: e.ty() })
                .collect();
            plan =
                Plan::Project { input: Box::new(plan), exprs: proj_exprs, schema: schema.clone() };
            (plan, names, schema)
        } else {
            // Plain projection.
            let mut exprs = Vec::new();
            let mut names = Vec::new();
            for (i, item) in stmt.projections.iter().enumerate() {
                match item {
                    ast::SelectItem::Wildcard => {
                        for (j, c) in scope.cols.iter().enumerate() {
                            exprs.push(BExpr::ColRef { idx: j, ty: c.ty });
                            names.push(c.name.clone());
                        }
                    }
                    ast::SelectItem::QualifiedWildcard(q) => {
                        let q = q.to_ascii_lowercase();
                        let mut any = false;
                        for (j, c) in scope.cols.iter().enumerate() {
                            if c.qualifier.as_deref() == Some(&q) {
                                exprs.push(BExpr::ColRef { idx: j, ty: c.ty });
                                names.push(c.name.clone());
                                any = true;
                            }
                        }
                        if !any {
                            return Err(MlError::Bind(format!("unknown table alias '{q}'")));
                        }
                    }
                    ast::SelectItem::Expr { expr, alias } => {
                        let b = self.bind_expr_outer(expr, &scope, outer)?;
                        names.push(output_name(alias.as_deref(), expr, i));
                        exprs.push(b);
                    }
                }
            }
            let schema: Vec<OutCol> = exprs
                .iter()
                .zip(&names)
                .map(|(e, n)| OutCol { name: n.clone(), ty: e.ty() })
                .collect();
            let plan = Plan::Project { input: Box::new(plan), exprs, schema: schema.clone() };
            (plan, names, schema)
        };

        // 4. DISTINCT.
        if stmt.distinct {
            plan = Plan::Distinct { input: Box::new(plan) };
        }

        // 5. ORDER BY over the output columns (name, alias or ordinal).
        if !stmt.order_by.is_empty() {
            let mut keys = Vec::new();
            for item in &stmt.order_by {
                let idx = match &item.expr {
                    ast::Expr::Literal(Value::Int(n)) => {
                        let n = *n as usize;
                        if n == 0 || n > out_names.len() {
                            return Err(MlError::Bind(format!(
                                "ORDER BY ordinal {n} out of range"
                            )));
                        }
                        n - 1
                    }
                    ast::Expr::Column { table: None, name } => {
                        let lower = name.to_ascii_lowercase();
                        out_names.iter().position(|n| *n == lower).ok_or_else(|| {
                            MlError::Bind(format!("ORDER BY column '{name}' is not in the output"))
                        })?
                    }
                    other => {
                        return Err(MlError::Bind(format!(
                            "ORDER BY must reference an output column or ordinal, got {other:?}"
                        )))
                    }
                };
                keys.push((idx, item.desc));
            }
            plan = Plan::Sort { input: Box::new(plan), keys };
        }

        // 6. LIMIT.
        if let Some(n) = stmt.limit {
            plan = Plan::Limit { input: Box::new(plan), n };
        }

        let out_scope = Scope {
            cols: out_exprs_schema
                .iter()
                .map(|c| ScopeCol { qualifier: None, name: c.name.clone(), ty: c.ty })
                .collect(),
        };
        Ok((plan, out_scope))
    }

    fn bind_table_ref(&self, tr: &ast::TableRef) -> Result<(Plan, Scope)> {
        match tr {
            ast::TableRef::Table { name, alias } => {
                let lname = name.to_ascii_lowercase();
                // 1. CTEs shadow catalog objects. The definition sees only
                // CTEs declared before it (non-recursive WITH).
                let cte_pos =
                    self.ctes.borrow().iter().rposition(|c| c.name.to_ascii_lowercase() == lname);
                if let Some(i) = cte_pos {
                    let (cte, hidden_tail) = {
                        let mut v = self.ctes.borrow_mut();
                        let tail = v.split_off(i);
                        (tail[0].clone(), tail)
                    };
                    let result = self.bind_select_scoped(&cte.query, None);
                    self.ctes.borrow_mut().extend(hidden_tail);
                    let (plan, scope) = result?;
                    return rename_derived(
                        plan,
                        scope,
                        alias.as_deref().unwrap_or(name),
                        cte.columns.as_deref(),
                    );
                }
                // 2. Base table.
                let schema = match self.catalog.table_schema(name) {
                    Ok(s) => s,
                    Err(table_err) => {
                        // 3. View: expand like a derived table. A view's
                        // body must not see the statement's CTEs.
                        let Some(vd) = self.catalog.view_def(&lname) else {
                            return Err(table_err);
                        };
                        let depth = self.view_depth.get();
                        if depth >= MAX_VIEW_DEPTH {
                            return Err(MlError::Bind(format!(
                                "view '{name}' expands too deep (recursive view definition?)"
                            )));
                        }
                        self.view_depth.set(depth + 1);
                        let saved = std::mem::take(&mut *self.ctes.borrow_mut());
                        let result = self.bind_select_scoped(&vd.query, None);
                        *self.ctes.borrow_mut() = saved;
                        self.view_depth.set(depth);
                        let (plan, scope) = result?;
                        return rename_derived(
                            plan,
                            scope,
                            alias.as_deref().unwrap_or(name),
                            vd.columns.as_deref(),
                        );
                    }
                };
                let qualifier = alias.clone().unwrap_or_else(|| name.clone()).to_ascii_lowercase();
                let cols: Vec<ScopeCol> = schema
                    .fields()
                    .iter()
                    .map(|f| ScopeCol {
                        qualifier: Some(qualifier.clone()),
                        name: f.name.clone(),
                        ty: f.ty,
                    })
                    .collect();
                let plan = Plan::Scan {
                    table: name.to_ascii_lowercase(),
                    projected: (0..schema.len()).collect(),
                    filters: vec![],
                    schema: cols
                        .iter()
                        .map(|c| OutCol { name: c.name.clone(), ty: c.ty })
                        .collect(),
                };
                Ok((plan, Scope { cols }))
            }
            ast::TableRef::Subquery { query, alias, columns } => {
                let (plan, scope) = self.bind_select_scoped(query, None)?;
                rename_derived(plan, scope, alias, columns.as_deref())
            }
            ast::TableRef::Join { left, right, kind, on } => {
                let (lp, ls) = self.bind_table_ref(left)?;
                let (rp, rs) = self.bind_table_ref(right)?;
                let mut scope = ls;
                scope.cols.extend(rs.cols);
                let schema: Vec<OutCol> = lp.schema().iter().chain(rp.schema()).cloned().collect();
                let pkind = match kind {
                    ast::JoinKind::Inner => PJoinKind::Inner,
                    ast::JoinKind::Left => PJoinKind::Left,
                    ast::JoinKind::Cross => PJoinKind::Cross,
                };
                let residual =
                    on.as_ref().map(|e| self.bind_expr_bool(e, &scope, None)).transpose()?;
                // Keys are extracted from the residual by the optimizer.
                Ok((
                    Plan::Join {
                        left: Box::new(lp),
                        right: Box::new(rp),
                        kind: pkind,
                        left_keys: vec![],
                        right_keys: vec![],
                        residual,
                        schema,
                    },
                    scope,
                ))
            }
        }
    }

    /// If `conjunct` is a flattenable subquery predicate, rewrite `plan`
    /// (joining in the subquery) and return the new plan. The rewrites
    /// preserve `plan`'s schema, so the caller's scope stays valid.
    fn try_bind_subquery_conjunct(
        &self,
        conjunct: &ast::Expr,
        plan: Plan,
        scope: &Scope,
    ) -> Result<Option<Plan>> {
        match conjunct {
            ast::Expr::Exists { query, negated } => {
                Ok(Some(self.flatten_exists(query, *negated, plan, scope)?))
            }
            ast::Expr::Not(inner) => match inner.as_ref() {
                ast::Expr::Exists { query, negated } => {
                    Ok(Some(self.flatten_exists(query, !negated, plan, scope)?))
                }
                ast::Expr::InSubquery { expr, query, negated } => {
                    Ok(Some(self.flatten_in(expr, query, !negated, plan, scope)?))
                }
                _ => Ok(None),
            },
            ast::Expr::InSubquery { expr, query, negated } => {
                Ok(Some(self.flatten_in(expr, query, *negated, plan, scope)?))
            }
            _ => match as_scalar_cmp(conjunct) {
                Some((q, other, op, flip)) => {
                    Ok(Some(self.flatten_scalar_cmp(q, other, op, flip, plan, scope)?))
                }
                None => Ok(None),
            },
        }
    }

    /// EXISTS/NOT EXISTS → semi/anti join on the correlated equality keys,
    /// with any non-equality correlated predicates as the join residual
    /// (Q21). An uncorrelated EXISTS desugars to a single-row COUNT(*)
    /// cross join plus a filter.
    fn flatten_exists(
        &self,
        query: &ast::SelectStmt,
        negated: bool,
        plan: Plan,
        scope: &Scope,
    ) -> Result<Plan> {
        // Uncorrelated: EXISTS(S) ⇔ (SELECT count(*) FROM S) > 0.
        let standalone_err = match self.bind_select_scoped(query, None) {
            Ok((subplan, _)) => {
                let n = plan.schema().len();
                let counts = count_aggregate(subplan, vec![], None);
                let mut schema = plan.schema().to_vec();
                schema.extend(counts.schema().iter().cloned());
                let joined = Plan::Join {
                    left: Box::new(plan),
                    right: Box::new(counts),
                    kind: PJoinKind::Cross,
                    left_keys: vec![],
                    right_keys: vec![],
                    residual: None,
                    schema,
                };
                let cnt = BExpr::ColRef { idx: n, ty: LogicalType::Bigint };
                let zero = BExpr::Lit(Value::Bigint(0));
                let pred = BExpr::Cmp {
                    op: if negated { CmpOp::Eq } else { CmpOp::Gt },
                    left: Box::new(cnt),
                    right: Box::new(zero),
                };
                return Ok(project_prefix(Plan::Filter { input: Box::new(joined), pred }, n));
            }
            Err(e) => e,
        };
        let sub = self
            .bind_subquery_relational(query, scope)
            .map_err(|e| with_standalone_context(e, &standalone_err))?;
        if sub.lkeys.is_empty() {
            return Err(MlError::Unsupported(format!(
                "EXISTS subquery `{}` has no correlated equality to join on; at least one is \
                 required (binding it standalone failed too: {standalone_err})",
                ast::Expr::Exists { query: Box::new(query.clone()), negated }
            )));
        }
        let schema = plan.schema().to_vec();
        Ok(Plan::Join {
            left: Box::new(plan),
            right: Box::new(sub.plan),
            kind: if negated { PJoinKind::Anti } else { PJoinKind::Semi },
            left_keys: sub.lkeys,
            right_keys: sub.rkeys,
            residual: sub.residual,
            schema,
        })
    }

    /// `x IN (SELECT c ...)` → semi join on x = c (+ correlated keys and
    /// residual). `x NOT IN (...)` → anti join plus the three-valued NULL
    /// guard (see the module docs): the anti join keeps unmatched and
    /// NULL-probe rows, and a count aggregate over the same subquery
    /// decides which of those SQL actually keeps.
    fn flatten_in(
        &self,
        expr: &ast::Expr,
        query: &ast::SelectStmt,
        negated: bool,
        plan: Plan,
        scope: &Scope,
    ) -> Result<Plan> {
        // Uncorrelated subqueries (including grouped ones, Q18) bind
        // standalone.
        let standalone = self.bind_select_scoped(query, None);
        if let Ok((subplan, subscope)) = standalone {
            if subscope.cols.len() != 1 {
                return Err(MlError::Bind(format!(
                    "IN subquery of `{expr} in (select ...)` must produce exactly one column, \
                     got {}",
                    subscope.cols.len()
                )));
            }
            let left_key = self.bind_expr(expr, scope)?;
            let right_key = BExpr::ColRef { idx: 0, ty: subscope.cols[0].ty };
            let (lk, rk) = coerce_pair(left_key, right_key)?;
            if !negated {
                let schema = plan.schema().to_vec();
                return Ok(Plan::Join {
                    left: Box::new(plan),
                    right: Box::new(subplan),
                    kind: PJoinKind::Semi,
                    left_keys: vec![lk],
                    right_keys: vec![rk],
                    residual: None,
                    schema,
                });
            }
            let counts = count_aggregate(
                subplan.clone(),
                vec![],
                Some(BExpr::ColRef { idx: 0, ty: subplan.schema()[0].ty }),
            );
            let n = plan.schema().len();
            let anti_schema = plan.schema().to_vec();
            let anti = Plan::Join {
                left: Box::new(plan),
                right: Box::new(subplan),
                kind: PJoinKind::Anti,
                left_keys: vec![lk.clone()],
                right_keys: vec![rk],
                residual: None,
                schema: anti_schema,
            };
            let mut schema = anti.schema().to_vec();
            schema.extend(counts.schema().iter().cloned());
            let joined = Plan::Join {
                left: Box::new(anti),
                right: Box::new(counts),
                kind: PJoinKind::Cross,
                left_keys: vec![],
                right_keys: vec![],
                residual: None,
                schema,
            };
            let pred = not_in_guard(lk, n, false);
            return Ok(project_prefix(Plan::Filter { input: Box::new(joined), pred }, n));
        }
        // Correlated; a failure here is ambiguous with a plain broken
        // subquery, so carry the standalone attempt's error along.
        let standalone_err = standalone.expect_err("Ok returned above");
        let sub = self
            .bind_subquery_relational(query, scope)
            .map_err(|e| with_standalone_context(e, &standalone_err))?;
        let proj = single_projection(query, expr)?;
        let in_key = self
            .bind_expr(proj, &sub.scope)
            .map_err(|e| with_standalone_context(e, &standalone_err))?;
        let left_key = self.bind_expr(expr, scope)?;
        let (lk, rk) = coerce_pair(left_key, in_key)?;
        if !negated {
            let mut lkeys = sub.lkeys;
            let mut rkeys = sub.rkeys;
            lkeys.push(lk);
            rkeys.push(rk);
            let schema = plan.schema().to_vec();
            return Ok(Plan::Join {
                left: Box::new(plan),
                right: Box::new(sub.plan),
                kind: PJoinKind::Semi,
                left_keys: lkeys,
                right_keys: rkeys,
                residual: sub.residual,
                schema,
            });
        }
        if sub.residual.is_some() {
            return Err(MlError::Unsupported(format!(
                "NOT IN subquery of `{expr} not in (select ...)` combines non-equality \
                 correlated predicates with NOT IN's NULL semantics; rewrite with NOT EXISTS"
            )));
        }
        // Per-group NULL guard: counts grouped by the correlated keys,
        // LEFT-joined back (an absent group means an empty subquery for
        // that outer row — NOT IN is then TRUE).
        let nk = sub.lkeys.len();
        let n = plan.schema().len();
        let counts = count_aggregate(sub.plan.clone(), sub.rkeys.clone(), Some(rk.clone()));
        let anti_schema = plan.schema().to_vec();
        let mut lkeys = sub.lkeys.clone();
        let mut rkeys = sub.rkeys;
        lkeys.push(lk.clone());
        rkeys.push(rk);
        let anti = Plan::Join {
            left: Box::new(plan),
            right: Box::new(sub.plan),
            kind: PJoinKind::Anti,
            left_keys: lkeys,
            right_keys: rkeys,
            residual: None,
            schema: anti_schema,
        };
        let mut schema = anti.schema().to_vec();
        schema.extend(counts.schema().iter().cloned());
        let group_refs: Vec<BExpr> = counts.schema()[..nk]
            .iter()
            .enumerate()
            .map(|(i, c)| BExpr::ColRef { idx: i, ty: c.ty })
            .collect();
        let joined = Plan::Join {
            left: Box::new(anti),
            right: Box::new(counts),
            kind: PJoinKind::Left,
            left_keys: sub.lkeys,
            right_keys: group_refs,
            residual: None,
            schema,
        };
        let pred = not_in_guard(lk, n + nk, true);
        Ok(project_prefix(Plan::Filter { input: Box::new(joined), pred }, n))
    }

    /// `other <op> (SELECT expr-around-agg ... [WHERE correlated])`.
    /// Uncorrelated subqueries bind standalone and join in as a key-less
    /// LEFT (scalar) join; correlated ones group by the correlated keys
    /// and LEFT-join per group, recomputing the projected expression over
    /// the joined aggregate columns (COUNTs NULL-coalesce to 0 so an
    /// empty group gives the SQL answer).
    fn flatten_scalar_cmp(
        &self,
        query: &ast::SelectStmt,
        other: &ast::Expr,
        op: ast::BinOp,
        flipped: bool,
        plan: Plan,
        scope: &Scope,
    ) -> Result<Plan> {
        let n = plan.schema().len();
        // Uncorrelated: scalar join against the single-row plan.
        let standalone = self.bind_select_scoped(query, None);
        if let Ok((subplan, subscope)) = standalone {
            if subscope.cols.len() != 1 {
                return Err(MlError::Bind(format!(
                    "scalar subquery compared with `{other}` must produce exactly one column, \
                     got {}",
                    subscope.cols.len()
                )));
            }
            let sub_ty = subplan.schema()[0].ty;
            let mut schema = plan.schema().to_vec();
            schema.push(OutCol { name: "subq".into(), ty: sub_ty });
            let joined = Plan::Join {
                left: Box::new(plan),
                right: Box::new(subplan),
                kind: PJoinKind::Left,
                left_keys: vec![],
                right_keys: vec![],
                residual: None,
                schema,
            };
            let other_b = self.bind_expr(other, scope)?;
            let subref = BExpr::ColRef { idx: n, ty: sub_ty };
            let (l, r) =
                if flipped { coerce_pair(subref, other_b)? } else { coerce_pair(other_b, subref)? };
            let pred = BExpr::Cmp { op: bin_to_cmp(op)?, left: Box::new(l), right: Box::new(r) };
            return Ok(project_prefix(Plan::Filter { input: Box::new(joined), pred }, n));
        }
        // Correlated: group the subquery by its correlated keys (carrying
        // the standalone attempt's error for the ambiguous-failure case).
        let standalone_err = standalone.expect_err("Ok returned above");
        let (grouped, outer_keys, inner_key_refs, val) = self
            .bind_correlated_subquery_grouped(query, scope)
            .map_err(|e| with_standalone_context(e, &standalone_err))?;
        let mut schema = plan.schema().to_vec();
        schema.extend(grouped.schema().iter().cloned());
        let joined = Plan::Join {
            left: Box::new(plan),
            right: Box::new(grouped),
            kind: PJoinKind::Left,
            left_keys: outer_keys,
            right_keys: inner_key_refs,
            residual: None,
            schema,
        };
        // The projected value, recomputed over the joined aggregate
        // columns (shifted by the outer width).
        let val = val.remap_cols(&|c| n + c);
        let other_b = self.bind_expr(other, scope)?;
        let (l, r) = if flipped { coerce_pair(val, other_b)? } else { coerce_pair(other_b, val)? };
        let pred = BExpr::Cmp { op: bin_to_cmp(op)?, left: Box::new(l), right: Box::new(r) };
        Ok(project_prefix(Plan::Filter { input: Box::new(joined), pred }, n))
    }

    /// Bind a (correlated) subquery's relational part: FROM + WHERE, with
    /// the WHERE split into inner conjuncts (filtered inside, including
    /// nested subquery predicates, Q20), correlated equality key pairs,
    /// and other correlated predicates bound over (outer ++ inner) — the
    /// enclosing join's residual.
    fn bind_subquery_relational(
        &self,
        query: &ast::SelectStmt,
        outer: &Scope,
    ) -> Result<BoundSubquery> {
        if !query.group_by.is_empty() || query.limit.is_some() {
            return Err(MlError::Unsupported(
                "GROUP BY/LIMIT inside correlated EXISTS/IN subqueries".into(),
            ));
        }
        self.with_ctes(&query.ctes, |b| {
            let (mut inner_plan, inner_scope) = b.bind_from_only(query)?;
            let mut lkeys = Vec::new();
            let mut rkeys = Vec::new();
            let mut residuals: Vec<BExpr> = Vec::new();
            if let Some(w) = &query.where_clause {
                let mut conjuncts = Vec::new();
                split_conjuncts(w, &mut conjuncts);
                for c in conjuncts {
                    // Nested subquery predicates flatten against the inner
                    // plan (the nested level treats this level as its
                    // outer scope).
                    if is_subquery_conjunct(c) {
                        match b.try_bind_subquery_conjunct(c, inner_plan.clone(), &inner_scope)? {
                            Some(p2) => {
                                inner_plan = p2;
                                continue;
                            }
                            None => unreachable!("is_subquery_conjunct gates the shapes"),
                        }
                    }
                    match b.classify_conjunct(c, &inner_scope, outer)? {
                        Classified::Inner(pred) => {
                            inner_plan = Plan::Filter { input: Box::new(inner_plan), pred };
                        }
                        Classified::CorrelatedEq { outer_key, inner_key } => {
                            lkeys.push(outer_key);
                            rkeys.push(inner_key);
                        }
                        Classified::Residual(pred) => residuals.push(pred),
                    }
                }
            }
            let residual =
                residuals.into_iter().reduce(|a, b| BExpr::And(Box::new(a), Box::new(b)));
            Ok(BoundSubquery { plan: inner_plan, scope: inner_scope, lkeys, rkeys, residual })
        })
    }

    /// Correlated scalar aggregate subquery: returns the grouped plan
    /// (keys ++ raw aggregate columns), the outer-side keys, references to
    /// the key columns of the grouped output, and the projected value
    /// expression over the grouped output (with COUNT columns coalesced
    /// to 0 for absent groups).
    #[allow(clippy::type_complexity)]
    fn bind_correlated_subquery_grouped(
        &self,
        query: &ast::SelectStmt,
        outer: &Scope,
    ) -> Result<(Plan, Vec<BExpr>, Vec<BExpr>, BExpr)> {
        if query.projections.len() != 1 {
            return Err(MlError::Bind("scalar subquery must select exactly one expression".into()));
        }
        let agg_expr = match &query.projections[0] {
            ast::SelectItem::Expr { expr, .. } if expr.contains_aggregate() => expr,
            ast::SelectItem::Expr { expr, .. } => {
                return Err(MlError::Unsupported(format!(
                    "correlated scalar subquery `select {expr} ...` must be an aggregate \
                     expression"
                )))
            }
            _ => {
                return Err(MlError::Unsupported(
                    "correlated scalar subquery must select an aggregate expression, not `*`"
                        .into(),
                ))
            }
        };
        self.with_ctes(&query.ctes, |b| {
            let (mut inner_plan, inner_scope) = b.bind_from_only(query)?;
            let mut outer_keys = Vec::new();
            let mut inner_keys = Vec::new();
            if let Some(w) = &query.where_clause {
                let mut conjuncts = Vec::new();
                split_conjuncts(w, &mut conjuncts);
                for c in conjuncts {
                    if is_subquery_conjunct(c) {
                        if let Some(p2) =
                            b.try_bind_subquery_conjunct(c, inner_plan.clone(), &inner_scope)?
                        {
                            inner_plan = p2;
                            continue;
                        }
                    }
                    match b.classify_conjunct(c, &inner_scope, outer)? {
                        Classified::Inner(pred) => {
                            inner_plan = Plan::Filter { input: Box::new(inner_plan), pred };
                        }
                        Classified::CorrelatedEq { outer_key, inner_key } => {
                            outer_keys.push(outer_key);
                            inner_keys.push(inner_key);
                        }
                        Classified::Residual(_) => {
                            return Err(MlError::Unsupported(format!(
                                "correlated scalar subquery predicate `{c}` must be an equality \
                                 (non-equality correlation cannot be grouped away)"
                            )))
                        }
                    }
                }
            }
            // The projected expression, bound in aggregate context with
            // the correlated inner keys as the group keys.
            let mut aggs: Vec<AggSpec> = Vec::new();
            let bound_val = b.bind_agg_expr(agg_expr, &inner_scope, &inner_keys, &mut aggs)?;
            let nk = inner_keys.len();
            let mut schema = Vec::new();
            for (i, k) in inner_keys.iter().enumerate() {
                schema.push(OutCol { name: format!("k{i}"), ty: k.ty() });
            }
            for (i, a) in aggs.iter().enumerate() {
                schema.push(OutCol { name: format!("a{i}"), ty: a.ty });
            }
            let grouped = Plan::Aggregate {
                input: Box::new(inner_plan),
                groups: inner_keys.clone(),
                aggs: aggs.clone(),
                schema,
            };
            let key_refs: Vec<BExpr> = inner_keys
                .iter()
                .enumerate()
                .map(|(i, k)| BExpr::ColRef { idx: i, ty: k.ty() })
                .collect();
            // Substitution table over the grouped output: keys pass
            // through; COUNT aggregates coalesce NULL (absent group after
            // the LEFT join) to 0 — COUNT over an empty set is 0, not
            // NULL; every other aggregate is NULL over an empty set, which
            // the pad already provides.
            let mut table: Vec<BExpr> = key_refs.clone();
            for (j, a) in aggs.iter().enumerate() {
                let col = BExpr::ColRef { idx: nk + j, ty: a.ty };
                table.push(if a.func == PAggFunc::Count {
                    BExpr::Case {
                        branches: vec![(
                            BExpr::IsNull { input: Box::new(col.clone()), negated: false },
                            BExpr::Lit(Value::Bigint(0)),
                        )],
                        else_expr: Some(Box::new(col)),
                        ty: LogicalType::Bigint,
                    }
                } else {
                    col
                });
            }
            let val = crate::opt::substitute(&bound_val, &table);
            Ok((grouped, outer_keys, key_refs, val))
        })
    }

    fn bind_from_only(&self, stmt: &ast::SelectStmt) -> Result<(Plan, Scope)> {
        let mut iter = stmt.from.iter();
        let first =
            iter.next().ok_or_else(|| MlError::Bind("subquery requires a FROM clause".into()))?;
        let (mut p, mut s) = self.bind_table_ref(first)?;
        for tr in iter {
            let (rp, rs) = self.bind_table_ref(tr)?;
            let schema: Vec<OutCol> = p.schema().iter().chain(rp.schema()).cloned().collect();
            p = Plan::Join {
                left: Box::new(p),
                right: Box::new(rp),
                kind: PJoinKind::Cross,
                left_keys: vec![],
                right_keys: vec![],
                residual: None,
                schema,
            };
            s.cols.extend(rs.cols);
        }
        Ok((p, s))
    }

    fn classify_conjunct(&self, e: &ast::Expr, inner: &Scope, outer: &Scope) -> Result<Classified> {
        // Pure inner predicate? (Innermost scope wins, the SQL rule.)
        if let Ok(b) = self.bind_expr(e, inner) {
            return Ok(Classified::Inner(b));
        }
        // Correlated equality?
        if let ast::Expr::Binary { op: ast::BinOp::Eq, left, right } = e {
            let l_inner = self.bind_expr(left, inner);
            let r_inner = self.bind_expr(right, inner);
            let l_outer = self.bind_expr(left, outer);
            let r_outer = self.bind_expr(right, outer);
            if let (Ok(ik), Ok(ok)) = (&l_inner, &r_outer) {
                let (ok2, ik2) = coerce_pair(ok.clone(), ik.clone())?;
                return Ok(Classified::CorrelatedEq { outer_key: ok2, inner_key: ik2 });
            }
            if let (Ok(ik), Ok(ok)) = (&r_inner, &l_outer) {
                let (ok2, ik2) = coerce_pair(ok.clone(), ik.clone())?;
                return Ok(Classified::CorrelatedEq { outer_key: ok2, inner_key: ik2 });
            }
        }
        // Any other correlated predicate binds over (outer ++ inner) and
        // becomes the enclosing join's residual — Q21's
        // `l2.l_suppkey <> l1.l_suppkey`.
        let mut combined = outer.clone();
        combined.cols.extend(inner.cols.iter().cloned());
        match self.bind_expr_bool(e, &combined, None) {
            Ok(b) => Ok(Classified::Residual(b)),
            Err(err) => Err(MlError::Unsupported(format!(
                "unsupported predicate `{e}` in WHERE clause of subquery: {err}"
            ))),
        }
    }

    // -- expressions -------------------------------------------------------

    fn bind_expr_outer(
        &self,
        e: &ast::Expr,
        scope: &Scope,
        _outer: Option<&Scope>,
    ) -> Result<BExpr> {
        self.bind_expr(e, scope)
    }

    fn bind_expr_bool(&self, e: &ast::Expr, scope: &Scope, outer: Option<&Scope>) -> Result<BExpr> {
        let b = self.bind_expr_outer(e, scope, outer)?;
        if b.ty() != LogicalType::Bool {
            return Err(MlError::TypeMismatch(format!(
                "predicate must be BOOLEAN, got {}",
                b.ty()
            )));
        }
        Ok(b)
    }

    /// Bind an expression in a plain scope.
    pub fn bind_expr(&self, e: &ast::Expr, scope: &Scope) -> Result<BExpr> {
        match e {
            ast::Expr::Column { table, name } => {
                let (idx, ty) = scope.resolve(table.as_deref(), name)?;
                Ok(BExpr::ColRef { idx, ty })
            }
            ast::Expr::Literal(v) => Ok(BExpr::Lit(v.clone())),
            ast::Expr::Param { index } => match self.params.get(*index) {
                Some(v) => Ok(BExpr::Param { idx: *index, value: v.clone() }),
                None => Err(MlError::Bind(
                    "bind parameters are only valid through the plan cache".into(),
                )),
            },
            ast::Expr::Interval { .. } => {
                Err(MlError::Bind("INTERVAL is only valid in date arithmetic".into()))
            }
            ast::Expr::Binary { op, left, right } => self.bind_binary(*op, left, right, scope),
            ast::Expr::Not(inner) => {
                let b = self.bind_expr(inner, scope)?;
                if b.ty() != LogicalType::Bool {
                    return Err(MlError::TypeMismatch("NOT requires a BOOLEAN".into()));
                }
                Ok(BExpr::Not(Box::new(b)))
            }
            ast::Expr::Neg(inner) => {
                let b = self.bind_expr(inner, scope)?;
                let ty = b.ty();
                if !ty.is_numeric() {
                    return Err(MlError::TypeMismatch("unary '-' requires a numeric".into()));
                }
                Ok(BExpr::Neg { input: Box::new(b), ty })
            }
            ast::Expr::IsNull { expr, negated } => {
                let b = self.bind_expr(expr, scope)?;
                Ok(BExpr::IsNull { input: Box::new(b), negated: *negated })
            }
            ast::Expr::Like { expr, pattern, negated } => {
                let b = self.bind_expr(expr, scope)?;
                if b.ty() != LogicalType::Varchar {
                    return Err(MlError::TypeMismatch("LIKE requires a VARCHAR operand".into()));
                }
                Ok(BExpr::Like { input: Box::new(b), pattern: pattern.clone(), negated: *negated })
            }
            ast::Expr::Between { expr, low, high, negated } => {
                // Desugar: x BETWEEN a AND b == x >= a AND x <= b.
                let ge = ast::Expr::Binary {
                    op: ast::BinOp::GtEq,
                    left: expr.clone(),
                    right: low.clone(),
                };
                let le = ast::Expr::Binary {
                    op: ast::BinOp::LtEq,
                    left: expr.clone(),
                    right: high.clone(),
                };
                let both = ast::Expr::Binary {
                    op: ast::BinOp::And,
                    left: Box::new(ge),
                    right: Box::new(le),
                };
                let b = self.bind_expr(&both, scope)?;
                Ok(if *negated { BExpr::Not(Box::new(b)) } else { b })
            }
            ast::Expr::InList { expr, list, negated } => {
                // Desugar to an OR chain of equalities.
                let mut it = list.iter();
                let first =
                    it.next().ok_or_else(|| MlError::Bind("IN list must not be empty".into()))?;
                let mut acc = ast::Expr::Binary {
                    op: ast::BinOp::Eq,
                    left: expr.clone(),
                    right: Box::new(first.clone()),
                };
                for item in it {
                    let eq = ast::Expr::Binary {
                        op: ast::BinOp::Eq,
                        left: expr.clone(),
                        right: Box::new(item.clone()),
                    };
                    acc = ast::Expr::Binary {
                        op: ast::BinOp::Or,
                        left: Box::new(acc),
                        right: Box::new(eq),
                    };
                }
                let b = self.bind_expr(&acc, scope)?;
                Ok(if *negated { BExpr::Not(Box::new(b)) } else { b })
            }
            ast::Expr::InSubquery { .. } | ast::Expr::Exists { .. } => {
                Err(MlError::Unsupported(format!(
                    "subquery predicate `{e}` is only supported as a top-level AND-conjunct of \
                     WHERE (found in expression position, e.g. under OR or in a projection)"
                )))
            }
            ast::Expr::ScalarSubquery(_) => Err(MlError::Unsupported(format!(
                "scalar subquery `{e}` is only supported in top-level WHERE/HAVING comparisons \
                 (found in expression position)"
            ))),
            ast::Expr::Case { branches, else_expr } => {
                let mut bound: Vec<(BExpr, BExpr)> = Vec::new();
                for (c, v) in branches {
                    let bc = self.bind_expr(c, scope)?;
                    if bc.ty() != LogicalType::Bool {
                        return Err(MlError::TypeMismatch("WHEN condition must be BOOLEAN".into()));
                    }
                    bound.push((bc, self.bind_expr(v, scope)?));
                }
                let belse = else_expr.as_ref().map(|e| self.bind_expr(e, scope)).transpose()?;
                // Common result type across all branch values.
                let mut ty = bound[0].1.ty();
                for (_, v) in &bound[1..] {
                    ty = LogicalType::common_super_type(ty, v.ty())?;
                }
                if let Some(e) = &belse {
                    if !matches!(e, BExpr::Lit(Value::Null)) {
                        ty = LogicalType::common_super_type(ty, e.ty())?;
                    }
                }
                let branches = bound
                    .into_iter()
                    .map(|(c, v)| Ok((c, cast_to(v, ty)?)))
                    .collect::<Result<Vec<_>>>()?;
                let else_expr = belse.map(|e| cast_to(e, ty).map(Box::new)).transpose()?;
                Ok(BExpr::Case { branches, else_expr, ty })
            }
            ast::Expr::Agg { .. } => {
                Err(MlError::Bind("aggregate functions are not allowed here".into()))
            }
            ast::Expr::Extract { field, expr } => {
                let b = self.bind_expr(expr, scope)?;
                if b.ty() != LogicalType::Date {
                    return Err(MlError::TypeMismatch("EXTRACT requires a DATE".into()));
                }
                let func = match field {
                    ast::DateField::Year => ScalarFunc::Year,
                    ast::DateField::Month => ScalarFunc::Month,
                    ast::DateField::Day => ScalarFunc::Day,
                };
                Ok(BExpr::Func { func, args: vec![b], ty: LogicalType::Int })
            }
            ast::Expr::Cast { expr, ty } => {
                let b = self.bind_expr(expr, scope)?;
                cast_to(b, *ty)
            }
            ast::Expr::Function { name, args } => self.bind_function(name, args, scope),
        }
    }

    fn bind_binary(
        &self,
        op: ast::BinOp,
        left: &ast::Expr,
        right: &ast::Expr,
        scope: &Scope,
    ) -> Result<BExpr> {
        use ast::BinOp as B;
        match op {
            B::And | B::Or => {
                let l = self.bind_expr(left, scope)?;
                let r = self.bind_expr(right, scope)?;
                if l.ty() != LogicalType::Bool || r.ty() != LogicalType::Bool {
                    return Err(MlError::TypeMismatch("AND/OR require BOOLEAN operands".into()));
                }
                Ok(if op == B::And {
                    BExpr::And(Box::new(l), Box::new(r))
                } else {
                    BExpr::Or(Box::new(l), Box::new(r))
                })
            }
            B::Eq | B::NotEq | B::Lt | B::LtEq | B::Gt | B::GtEq => {
                let l = self.bind_expr(left, scope)?;
                let r = self.bind_expr(right, scope)?;
                let (l, r) = coerce_pair(l, r)?;
                Ok(BExpr::Cmp { op: bin_to_cmp(op)?, left: Box::new(l), right: Box::new(r) })
            }
            B::Add | B::Sub | B::Mul | B::Div | B::Mod => {
                // Date ± INTERVAL and DATE - DATE first.
                if let ast::Expr::Interval { value, unit } = right {
                    let l = self.bind_expr(left, scope)?;
                    if l.ty() != LogicalType::Date {
                        return Err(MlError::TypeMismatch(
                            "INTERVAL arithmetic requires a DATE".into(),
                        ));
                    }
                    let signed = if op == B::Sub { -*value } else { *value };
                    if op != B::Add && op != B::Sub {
                        return Err(MlError::TypeMismatch(
                            "only + and - are defined on dates".into(),
                        ));
                    }
                    // Fold literal date ± interval at bind time.
                    if let BExpr::Lit(Value::Date(d)) = &l {
                        let nd = match unit {
                            ast::IntervalUnit::Day => d.add_days(signed),
                            ast::IntervalUnit::Month => d.add_months(signed),
                            ast::IntervalUnit::Year => d.add_years(signed),
                        };
                        return Ok(BExpr::Lit(Value::Date(nd)));
                    }
                    // Column date ± interval: dedicated date-shift function.
                    let func = match unit {
                        ast::IntervalUnit::Day => ScalarFunc::AddDays,
                        ast::IntervalUnit::Month => ScalarFunc::AddMonths,
                        ast::IntervalUnit::Year => ScalarFunc::AddYears,
                    };
                    return Ok(BExpr::Func {
                        func,
                        args: vec![l, BExpr::Lit(Value::Int(signed))],
                        ty: LogicalType::Date,
                    });
                }
                let l = self.bind_expr(left, scope)?;
                let r = self.bind_expr(right, scope)?;
                // DATE - DATE → days (INTEGER).
                if l.ty() == LogicalType::Date && r.ty() == LogicalType::Date && op == B::Sub {
                    return Ok(BExpr::Arith {
                        op: ArithOp::Sub,
                        left: Box::new(l),
                        right: Box::new(r),
                        ty: LogicalType::Int,
                    });
                }
                bind_arith(bin_to_arith(op), l, r)
            }
        }
    }

    fn bind_function(&self, name: &str, args: &[ast::Expr], scope: &Scope) -> Result<BExpr> {
        let bound: Vec<BExpr> =
            args.iter().map(|a| self.bind_expr(a, scope)).collect::<Result<_>>()?;
        let argc = bound.len();
        let wrong =
            |want: usize| MlError::Bind(format!("{name} expects {want} argument(s), got {argc}"));
        match name {
            "sqrt" | "floor" | "ceil" | "ceiling" => {
                if argc != 1 {
                    return Err(wrong(1));
                }
                let a = cast_to(bound.into_iter().next().unwrap(), LogicalType::Double)?;
                let func = match name {
                    "sqrt" => ScalarFunc::Sqrt,
                    "floor" => ScalarFunc::Floor,
                    _ => ScalarFunc::Ceil,
                };
                Ok(BExpr::Func { func, args: vec![a], ty: LogicalType::Double })
            }
            "abs" => {
                if argc != 1 {
                    return Err(wrong(1));
                }
                let a = bound.into_iter().next().unwrap();
                let ty = a.ty();
                if !ty.is_numeric() {
                    return Err(MlError::TypeMismatch("abs requires a numeric".into()));
                }
                Ok(BExpr::Func { func: ScalarFunc::Abs, args: vec![a], ty })
            }
            "upper" | "lower" => {
                if argc != 1 {
                    return Err(wrong(1));
                }
                let a = bound.into_iter().next().unwrap();
                if a.ty() != LogicalType::Varchar {
                    return Err(MlError::TypeMismatch(format!("{name} requires a VARCHAR")));
                }
                let func = if name == "upper" { ScalarFunc::Upper } else { ScalarFunc::Lower };
                Ok(BExpr::Func { func, args: vec![a], ty: LogicalType::Varchar })
            }
            "length" => {
                if argc != 1 {
                    return Err(wrong(1));
                }
                let a = bound.into_iter().next().unwrap();
                if a.ty() != LogicalType::Varchar {
                    return Err(MlError::TypeMismatch("length requires a VARCHAR".into()));
                }
                Ok(BExpr::Func { func: ScalarFunc::Length, args: vec![a], ty: LogicalType::Int })
            }
            "substring" | "substr" => {
                if argc != 3 {
                    return Err(wrong(3));
                }
                let mut it = bound.into_iter();
                let s = it.next().unwrap();
                if s.ty() != LogicalType::Varchar {
                    return Err(MlError::TypeMismatch("substring requires a VARCHAR".into()));
                }
                let from = cast_to(it.next().unwrap(), LogicalType::Int)?;
                let len = cast_to(it.next().unwrap(), LogicalType::Int)?;
                Ok(BExpr::Func {
                    func: ScalarFunc::Substring,
                    args: vec![s, from, len],
                    ty: LogicalType::Varchar,
                })
            }
            "year" | "month" | "day" => {
                if argc != 1 {
                    return Err(wrong(1));
                }
                let a = bound.into_iter().next().unwrap();
                if a.ty() != LogicalType::Date {
                    return Err(MlError::TypeMismatch(format!("{name} requires a DATE")));
                }
                let func = match name {
                    "year" => ScalarFunc::Year,
                    "month" => ScalarFunc::Month,
                    _ => ScalarFunc::Day,
                };
                Ok(BExpr::Func { func, args: vec![a], ty: LogicalType::Int })
            }
            other => Err(MlError::Bind(format!("unknown function '{other}'"))),
        }
    }

    /// Bind an expression allowed to contain aggregates: aggregate calls
    /// become references into the Aggregate node's output; subexpressions
    /// equal to a GROUP BY key become group-column references.
    fn bind_agg_expr(
        &self,
        e: &ast::Expr,
        input: &Scope,
        groups: &[BExpr],
        aggs: &mut Vec<AggSpec>,
    ) -> Result<BExpr> {
        // A subexpression identical to a group key resolves to that key's
        // output column.
        if let Ok(b) = self.bind_expr(e, input) {
            if let Some(pos) = groups.iter().position(|g| *g == b) {
                return Ok(BExpr::ColRef { idx: pos, ty: b.ty() });
            }
            if b.is_const() {
                return Ok(b);
            }
        }
        match e {
            ast::Expr::Agg { func, arg, distinct } => {
                let arg_b = arg.as_ref().map(|a| self.bind_expr(a, input)).transpose()?;
                let pfunc = match func {
                    ast::AggFunc::Count => PAggFunc::Count,
                    ast::AggFunc::Sum => PAggFunc::Sum,
                    ast::AggFunc::Avg => PAggFunc::Avg,
                    ast::AggFunc::Min => PAggFunc::Min,
                    ast::AggFunc::Max => PAggFunc::Max,
                    ast::AggFunc::Median => PAggFunc::Median,
                };
                let ty = agg_output_type(pfunc, arg_b.as_ref().map(|a| a.ty()));
                let spec = AggSpec { func: pfunc, arg: arg_b, distinct: *distinct, ty };
                let pos = match aggs.iter().position(|a| *a == spec) {
                    Some(p) => p,
                    None => {
                        aggs.push(spec);
                        aggs.len() - 1
                    }
                };
                Ok(BExpr::ColRef { idx: groups.len() + pos, ty })
            }
            ast::Expr::Binary { op, left, right } => {
                // Rebind children in aggregate context, then re-run the
                // binary typing rules on the bound pieces.
                let l = self.bind_agg_expr(left, input, groups, aggs)?;
                let r = self.bind_agg_expr(right, input, groups, aggs)?;
                rebuild_binary(*op, l, r)
            }
            ast::Expr::Neg(inner) => {
                let b = self.bind_agg_expr(inner, input, groups, aggs)?;
                let ty = b.ty();
                Ok(BExpr::Neg { input: Box::new(b), ty })
            }
            ast::Expr::Case { branches, else_expr } => {
                let mut bound = Vec::new();
                for (c, v) in branches {
                    bound.push((
                        self.bind_agg_expr(c, input, groups, aggs)?,
                        self.bind_agg_expr(v, input, groups, aggs)?,
                    ));
                }
                let belse = else_expr
                    .as_ref()
                    .map(|e| self.bind_agg_expr(e, input, groups, aggs))
                    .transpose()?;
                let mut ty = bound[0].1.ty();
                for (_, v) in &bound[1..] {
                    ty = LogicalType::common_super_type(ty, v.ty())?;
                }
                if let Some(e) = &belse {
                    if !matches!(e, BExpr::Lit(Value::Null)) {
                        ty = LogicalType::common_super_type(ty, e.ty())?;
                    }
                }
                let branches = bound
                    .into_iter()
                    .map(|(c, v)| Ok((c, cast_to(v, ty)?)))
                    .collect::<Result<Vec<_>>>()?;
                let else_expr = belse.map(|e| cast_to(e, ty).map(Box::new)).transpose()?;
                Ok(BExpr::Case { branches, else_expr, ty })
            }
            ast::Expr::Cast { expr, ty } => {
                let b = self.bind_agg_expr(expr, input, groups, aggs)?;
                cast_to(b, *ty)
            }
            ast::Expr::Extract { .. } | ast::Expr::Function { .. } => {
                // Non-aggregate functions over group keys were handled by
                // the group-key match above; reaching here means the
                // argument is not a group key.
                Err(MlError::Bind(format!("expression {e:?} must appear in the GROUP BY clause")))
            }
            other => Err(MlError::Bind(format!(
                "expression {other:?} must appear in GROUP BY or be inside an aggregate"
            ))),
        }
    }
}

enum Classified {
    Inner(BExpr),
    CorrelatedEq {
        outer_key: BExpr,
        inner_key: BExpr,
    },
    /// A correlated non-equality predicate bound over (outer ++ inner):
    /// the enclosing semi/anti join's residual.
    Residual(BExpr),
}

/// Bound ingredients of a correlated subquery: the filtered inner plan
/// and scope, the correlated equality key pairs, and the join residual.
struct BoundSubquery {
    plan: Plan,
    scope: Scope,
    lkeys: Vec<BExpr>,
    rkeys: Vec<BExpr>,
    residual: Option<BExpr>,
}

/// Is this conjunct a subquery predicate shape that
/// [`Binder::try_bind_subquery_conjunct`] flattens?
fn is_subquery_conjunct(e: &ast::Expr) -> bool {
    match e {
        ast::Expr::Exists { .. } | ast::Expr::InSubquery { .. } => true,
        ast::Expr::Not(inner) => {
            matches!(inner.as_ref(), ast::Expr::Exists { .. } | ast::Expr::InSubquery { .. })
        }
        other => as_scalar_cmp(other).is_some(),
    }
}

/// Recognise `other <op> (SELECT ...)` / `(SELECT ...) <op> other`,
/// returning (query, other side, op, scalar-was-on-the-left).
fn as_scalar_cmp(e: &ast::Expr) -> Option<(&ast::SelectStmt, &ast::Expr, ast::BinOp, bool)> {
    let ast::Expr::Binary { op, left, right } = e else {
        return None;
    };
    if !matches!(
        op,
        ast::BinOp::Eq
            | ast::BinOp::NotEq
            | ast::BinOp::Lt
            | ast::BinOp::LtEq
            | ast::BinOp::Gt
            | ast::BinOp::GtEq
    ) {
        return None;
    }
    match (left.as_ref(), right.as_ref()) {
        (ast::Expr::ScalarSubquery(q), o) => Some((q, o, *op, true)),
        (o, ast::Expr::ScalarSubquery(q)) => Some((q, o, *op, false)),
        _ => None,
    }
}

/// The IN subquery's single projected expression (`x IN (SELECT c ...)`).
fn single_projection<'q>(query: &'q ast::SelectStmt, ctx: &ast::Expr) -> Result<&'q ast::Expr> {
    match query.projections.as_slice() {
        [ast::SelectItem::Expr { expr, .. }] => Ok(expr),
        _ => Err(MlError::Bind(format!(
            "IN subquery of `{ctx} in (select ...)` must select exactly one expression"
        ))),
    }
}

/// `COUNT(*)` (+ `COUNT(arg)` when `arg` is given) over `input`, grouped
/// by `groups`. Output schema: group columns, then the count(s). The
/// NOT-IN NULL guard and uncorrelated EXISTS build on this.
fn count_aggregate(input: Plan, groups: Vec<BExpr>, arg: Option<BExpr>) -> Plan {
    let mut schema: Vec<OutCol> = groups
        .iter()
        .enumerate()
        .map(|(i, g)| OutCol { name: format!("k{i}"), ty: g.ty() })
        .collect();
    let mut aggs = vec![AggSpec {
        func: PAggFunc::Count,
        arg: None,
        distinct: false,
        ty: agg_output_type(PAggFunc::Count, None),
    }];
    schema.push(OutCol { name: "cnt_all".into(), ty: LogicalType::Bigint });
    if let Some(a) = arg {
        let ty = agg_output_type(PAggFunc::Count, Some(a.ty()));
        aggs.push(AggSpec { func: PAggFunc::Count, arg: Some(a), distinct: false, ty });
        schema.push(OutCol { name: "cnt_nonnull".into(), ty: LogicalType::Bigint });
    }
    Plan::Aggregate { input: Box::new(input), groups, aggs, schema }
}

/// The NOT IN three-valued-logic guard over the (outer ++ counts) join
/// output: keep the anti-join survivor when the subquery group is absent
/// (`grouped` only) or empty, or when the probe value is not NULL and the
/// subquery produced no NULL values.
fn not_in_guard(probe: BExpr, counts_at: usize, grouped: bool) -> BExpr {
    let cnt_all = BExpr::ColRef { idx: counts_at, ty: LogicalType::Bigint };
    let cnt_nonnull = BExpr::ColRef { idx: counts_at + 1, ty: LogicalType::Bigint };
    let empty = BExpr::Cmp {
        op: CmpOp::Eq,
        left: Box::new(cnt_all.clone()),
        right: Box::new(BExpr::Lit(Value::Bigint(0))),
    };
    let probe_not_null = BExpr::IsNull { input: Box::new(probe), negated: true };
    let no_nulls =
        BExpr::Cmp { op: CmpOp::Eq, left: Box::new(cnt_nonnull), right: Box::new(cnt_all.clone()) };
    let ok = BExpr::Or(
        Box::new(empty),
        Box::new(BExpr::And(Box::new(probe_not_null), Box::new(no_nulls))),
    );
    if grouped {
        let absent = BExpr::IsNull { input: Box::new(cnt_all), negated: false };
        BExpr::Or(Box::new(absent), Box::new(ok))
    } else {
        ok
    }
}

/// Project a plan back to its first `n` columns (the flattening rewrites
/// preserve the outer schema this way).
fn project_prefix(plan: Plan, n: usize) -> Plan {
    let exprs: Vec<BExpr> =
        (0..n).map(|i| BExpr::ColRef { idx: i, ty: plan.schema()[i].ty }).collect();
    let schema = plan.schema()[..n].to_vec();
    Plan::Project { input: Box::new(plan), exprs, schema }
}

/// Apply a derived table's qualifier and optional column rename list to a
/// bound subquery/CTE/view.
fn rename_derived(
    plan: Plan,
    scope: Scope,
    qualifier: &str,
    columns: Option<&[String]>,
) -> Result<(Plan, Scope)> {
    if let Some(cols) = columns {
        if cols.len() != scope.cols.len() {
            return Err(MlError::Bind(format!(
                "'{qualifier}' has {} output column(s) but {} alias(es) were given",
                scope.cols.len(),
                cols.len()
            )));
        }
    }
    let q = qualifier.to_ascii_lowercase();
    let cols = scope
        .cols
        .into_iter()
        .enumerate()
        .map(|(i, c)| ScopeCol {
            qualifier: Some(q.clone()),
            name: columns.map_or(c.name.clone(), |cs| cs[i].to_ascii_lowercase()),
            ty: c.ty,
        })
        .collect();
    Ok((plan, Scope { cols }))
}

/// Factor conjuncts common to every branch out of an OR expression
/// (Q19's `(p AND a1) OR (p AND a2) OR (p AND a3)` → `p AND (a1 OR a2 OR
/// a3)`), so the optimizer can extract the hoisted equalities as join
/// keys. Returns `None` when there is nothing to factor.
fn factor_or_common(e: &ast::Expr) -> Option<Vec<ast::Expr>> {
    let mut branches = Vec::new();
    split_disjuncts(e, &mut branches);
    if branches.len() < 2 {
        return None;
    }
    let branch_conjs: Vec<Vec<&ast::Expr>> = branches
        .iter()
        .map(|b| {
            let mut v = Vec::new();
            split_conjuncts(b, &mut v);
            v
        })
        .collect();
    let common: Vec<&ast::Expr> = branch_conjs[0]
        .iter()
        .copied()
        .filter(|c| branch_conjs[1..].iter().all(|b| b.iter().any(|x| x == c)))
        .collect();
    if common.is_empty() {
        return None;
    }
    let mut out: Vec<ast::Expr> = common.iter().map(|c| (*c).clone()).collect();
    // Rebuild each branch without the common conjuncts; a branch left
    // empty makes the whole OR implied by the common part.
    let mut residual_branches: Vec<ast::Expr> = Vec::new();
    for conjs in &branch_conjs {
        let rest: Vec<&ast::Expr> =
            conjs.iter().copied().filter(|c| !common.iter().any(|x| x == c)).collect();
        if rest.is_empty() {
            return Some(out);
        }
        let rebuilt = rest
            .into_iter()
            .cloned()
            .reduce(|a, b| ast::Expr::Binary {
                op: ast::BinOp::And,
                left: Box::new(a),
                right: Box::new(b),
            })
            .expect("nonempty branch");
        residual_branches.push(rebuilt);
    }
    let or = residual_branches
        .into_iter()
        .reduce(|a, b| ast::Expr::Binary {
            op: ast::BinOp::Or,
            left: Box::new(a),
            right: Box::new(b),
        })
        .expect("at least two branches");
    out.push(or);
    Some(out)
}

/// A correlated-path bind failure is ambiguous: the subquery may be
/// genuinely correlated, or simply broken (typo'd column, unknown
/// table). Append the standalone attempt's error so the diagnostic names
/// the real problem instead of a correlation-shaped red herring.
fn with_standalone_context(e: MlError, standalone: &MlError) -> MlError {
    let text = |msg: &dyn std::fmt::Display| {
        format!("{msg} (binding the subquery standalone failed: {standalone})")
    };
    match e {
        MlError::Bind(m) => MlError::Bind(text(&m)),
        MlError::Unsupported(m) => MlError::Unsupported(text(&m)),
        MlError::Catalog(m) => MlError::Catalog(text(&m)),
        MlError::TypeMismatch(m) => MlError::TypeMismatch(text(&m)),
        other => other,
    }
}

fn split_disjuncts<'e>(e: &'e ast::Expr, out: &mut Vec<&'e ast::Expr>) {
    if let ast::Expr::Binary { op: ast::BinOp::Or, left, right } = e {
        split_disjuncts(left, out);
        split_disjuncts(right, out);
    } else {
        out.push(e);
    }
}

fn split_conjuncts<'e>(e: &'e ast::Expr, out: &mut Vec<&'e ast::Expr>) {
    if let ast::Expr::Binary { op: ast::BinOp::And, left, right } = e {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(e);
    }
}

fn bin_to_cmp(op: ast::BinOp) -> Result<CmpOp> {
    Ok(match op {
        ast::BinOp::Eq => CmpOp::Eq,
        ast::BinOp::NotEq => CmpOp::NotEq,
        ast::BinOp::Lt => CmpOp::Lt,
        ast::BinOp::LtEq => CmpOp::LtEq,
        ast::BinOp::Gt => CmpOp::Gt,
        ast::BinOp::GtEq => CmpOp::GtEq,
        other => return Err(MlError::Bind(format!("{other:?} is not a comparison"))),
    })
}

fn bin_to_arith(op: ast::BinOp) -> ArithOp {
    match op {
        ast::BinOp::Add => ArithOp::Add,
        ast::BinOp::Sub => ArithOp::Sub,
        ast::BinOp::Mul => ArithOp::Mul,
        ast::BinOp::Div => ArithOp::Div,
        _ => ArithOp::Mod,
    }
}

/// Re-apply binary typing rules to already-bound operands.
pub fn rebuild_binary(op: ast::BinOp, l: BExpr, r: BExpr) -> Result<BExpr> {
    use ast::BinOp as B;
    match op {
        B::And => Ok(BExpr::And(Box::new(l), Box::new(r))),
        B::Or => Ok(BExpr::Or(Box::new(l), Box::new(r))),
        B::Eq | B::NotEq | B::Lt | B::LtEq | B::Gt | B::GtEq => {
            let (l, r) = coerce_pair(l, r)?;
            Ok(BExpr::Cmp { op: bin_to_cmp(op)?, left: Box::new(l), right: Box::new(r) })
        }
        B::Add | B::Sub | B::Mul | B::Div | B::Mod => bind_arith(bin_to_arith(op), l, r),
    }
}

/// Numeric/typed arithmetic rules; inserts casts so kernels see one type.
pub fn bind_arith(op: ArithOp, l: BExpr, r: BExpr) -> Result<BExpr> {
    use LogicalType as T;
    let (lt, rt) = (l.ty(), r.ty());
    if !lt.is_numeric() || !rt.is_numeric() {
        return Err(MlError::TypeMismatch(format!(
            "arithmetic requires numeric operands, got {lt} and {rt}"
        )));
    }
    // Division always computes in double (MonetDB's decimal division
    // semantics differ; DOUBLE keeps every TPC-H aggregate exact enough
    // and avoids scale explosions).
    if op == ArithOp::Div {
        let l = cast_to(l, T::Double)?;
        let r = cast_to(r, T::Double)?;
        return Ok(BExpr::Arith { op, left: Box::new(l), right: Box::new(r), ty: T::Double });
    }
    let ty = LogicalType::common_super_type(lt, rt)?;
    match ty {
        T::Decimal { .. } => {
            let (ls, rs) = (scale_of(lt), scale_of(rt));
            match op {
                ArithOp::Mul => {
                    let s = ls + rs;
                    if s > 18 {
                        let l = cast_to(l, T::Double)?;
                        let r = cast_to(r, T::Double)?;
                        return Ok(BExpr::Arith {
                            op,
                            left: Box::new(l),
                            right: Box::new(r),
                            ty: T::Double,
                        });
                    }
                    // Operands keep their own scales; result scale = sum.
                    let l = to_decimal(l, ls)?;
                    let r = to_decimal(r, rs)?;
                    Ok(BExpr::Arith {
                        op,
                        left: Box::new(l),
                        right: Box::new(r),
                        ty: T::Decimal { width: 18, scale: s },
                    })
                }
                ArithOp::Add | ArithOp::Sub => {
                    let s = ls.max(rs);
                    let l = to_decimal(l, s)?;
                    let r = to_decimal(r, s)?;
                    Ok(BExpr::Arith {
                        op,
                        left: Box::new(l),
                        right: Box::new(r),
                        ty: T::Decimal { width: 18, scale: s },
                    })
                }
                ArithOp::Mod => Err(MlError::TypeMismatch("% is not defined on DECIMAL".into())),
                ArithOp::Div => unreachable!("handled above"),
            }
        }
        other => {
            let l = cast_to(l, other)?;
            let r = cast_to(r, other)?;
            Ok(BExpr::Arith { op, left: Box::new(l), right: Box::new(r), ty: other })
        }
    }
}

fn scale_of(ty: LogicalType) -> u8 {
    match ty {
        LogicalType::Decimal { scale, .. } => scale,
        _ => 0,
    }
}

fn to_decimal(e: BExpr, scale: u8) -> Result<BExpr> {
    cast_to(e, LogicalType::Decimal { width: 18, scale })
}

/// Insert a cast unless the expression already has the target type;
/// literal casts fold immediately.
pub fn cast_to(e: BExpr, ty: LogicalType) -> Result<BExpr> {
    if e.ty() == ty {
        return Ok(e);
    }
    if let BExpr::Lit(v) = &e {
        if let Some(folded) = fold_literal_cast(v, ty)? {
            return Ok(BExpr::Lit(folded));
        }
    }
    // A plan-cache parameter folds like a literal, but in place: the
    // representative value is cast and the slot kept, so substitution
    // later applies the same cast to each fresh value.
    if let BExpr::Param { idx, value } = &e {
        if let Some(folded) = fold_literal_cast(value, ty)? {
            return Ok(BExpr::Param { idx: *idx, value: folded });
        }
    }
    Ok(BExpr::Cast { input: Box::new(e), ty })
}

/// Re-apply the cast folding a template's representative went through to
/// a fresh parameter value: coerce `fresh` to `target`'s logical type.
/// Returns `None` when the fresh value cannot take the representative's
/// type (the caller falls back to a full replan).
pub fn coerce_param_value(fresh: &Value, target: &Value) -> Option<Value> {
    let Some(ty) = target.logical_type() else {
        return matches!(fresh, Value::Null).then_some(Value::Null);
    };
    if fresh.logical_type() == Some(ty) {
        return Some(fresh.clone());
    }
    fold_literal_cast(fresh, ty).ok().flatten()
}

fn fold_literal_cast(v: &Value, ty: LogicalType) -> Result<Option<Value>> {
    use LogicalType as T;
    Ok(match (v, ty) {
        (Value::Null, _) => Some(Value::Null),
        (Value::Int(x), T::Bigint) => Some(Value::Bigint(*x as i64)),
        (Value::Int(x), T::Double) => Some(Value::Double(*x as f64)),
        (Value::Int(x), T::Decimal { scale, .. }) => {
            Some(Value::Decimal(monetlite_types::Decimal::new(*x as i64, 0).rescale(scale)?))
        }
        (Value::Bigint(x), T::Double) => Some(Value::Double(*x as f64)),
        (Value::Decimal(d), T::Double) => Some(Value::Double(d.to_f64())),
        (Value::Decimal(d), T::Decimal { scale, .. }) => Some(Value::Decimal(d.rescale(scale)?)),
        (Value::Str(s), T::Date) => Some(Value::Date(Date::parse(s)?)),
        (Value::Str(s), T::Varchar) => Some(Value::Str(s.clone())),
        _ => None,
    })
}

/// Coerce a comparison pair to a common type.
pub fn coerce_pair(l: BExpr, r: BExpr) -> Result<(BExpr, BExpr)> {
    let (lt, rt) = (l.ty(), r.ty());
    if lt == rt {
        return Ok((l, r));
    }
    // Date vs string literal: parse the literal.
    if lt == LogicalType::Date && rt == LogicalType::Varchar {
        let r = cast_to(r, LogicalType::Date)?;
        return Ok((l, r));
    }
    if rt == LogicalType::Date && lt == LogicalType::Varchar {
        let l = cast_to(l, LogicalType::Date)?;
        return Ok((l, r));
    }
    let common = LogicalType::common_super_type(lt, rt)?;
    // Decimal comparisons align scales.
    let common = match common {
        LogicalType::Decimal { width, .. } => {
            LogicalType::Decimal { width, scale: scale_of(lt).max(scale_of(rt)) }
        }
        other => other,
    };
    Ok((cast_to(l, common)?, cast_to(r, common)?))
}

fn output_name(alias: Option<&str>, expr: &ast::Expr, pos: usize) -> String {
    if let Some(a) = alias {
        return a.to_ascii_lowercase();
    }
    match expr {
        ast::Expr::Column { name, .. } => name.to_ascii_lowercase(),
        ast::Expr::Agg { func, .. } => format!("{func:?}").to_ascii_lowercase(),
        _ => format!("col{pos}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_types::Field;
    use std::collections::HashMap;

    struct MockCatalog {
        tables: HashMap<String, Schema>,
    }

    impl CatalogAccess for MockCatalog {
        fn table_schema(&self, name: &str) -> Result<Schema> {
            self.tables
                .get(&name.to_ascii_lowercase())
                .cloned()
                .ok_or_else(|| MlError::Catalog(format!("unknown table '{name}'")))
        }
    }

    fn catalog() -> MockCatalog {
        let mut tables = HashMap::new();
        tables.insert(
            "t".to_string(),
            Schema::new(vec![
                Field::not_null("a", LogicalType::Int),
                Field::new("b", LogicalType::Varchar),
                Field::new("d", LogicalType::Date),
                Field::new("p", LogicalType::Decimal { width: 15, scale: 2 }),
            ])
            .unwrap(),
        );
        tables.insert(
            "u".to_string(),
            Schema::new(vec![
                Field::not_null("a", LogicalType::Int),
                Field::new("x", LogicalType::Double),
            ])
            .unwrap(),
        );
        MockCatalog { tables }
    }

    fn bind(sql: &str) -> Result<Plan> {
        let stmt = monetlite_sql::parse_statement(sql)?;
        let cat = catalog();
        match stmt {
            monetlite_sql::Statement::Select(s) => Binder::new(&cat).bind_select(&s),
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_projection_types() {
        let p = bind("SELECT a, b FROM t").unwrap();
        assert_eq!(p.schema()[0].ty, LogicalType::Int);
        assert_eq!(p.schema()[1].ty, LogicalType::Varchar);
    }

    #[test]
    fn wildcard_expansion() {
        let p = bind("SELECT * FROM t").unwrap();
        assert_eq!(p.schema().len(), 4);
        assert_eq!(p.schema()[3].name, "p");
    }

    #[test]
    fn unknown_column_is_bind_error() {
        assert!(matches!(bind("SELECT nope FROM t"), Err(MlError::Bind(_))));
        assert!(matches!(bind("SELECT z.a FROM t"), Err(MlError::Bind(_))));
    }

    #[test]
    fn ambiguity_detected() {
        assert!(matches!(bind("SELECT a FROM t, u"), Err(MlError::Bind(_))));
        assert!(bind("SELECT t.a FROM t, u").is_ok());
    }

    #[test]
    fn comparison_inserts_cast() {
        // int vs decimal literal → decimal comparison via cast.
        let p = bind("SELECT a FROM t WHERE a > 1.5").unwrap();
        let s = p.render();
        assert!(s.contains("cast"), "expected cast in {s}");
    }

    #[test]
    fn decimal_multiply_scales_add() {
        let p = bind("SELECT p * p AS sq FROM t").unwrap();
        assert_eq!(p.schema()[0].ty, LogicalType::Decimal { width: 18, scale: 4 });
    }

    #[test]
    fn division_is_double() {
        let p = bind("SELECT a / 2 AS h FROM t").unwrap();
        assert_eq!(p.schema()[0].ty, LogicalType::Double);
    }

    #[test]
    fn date_interval_folds_at_bind() {
        let p = bind("SELECT a FROM t WHERE d <= date '1998-12-01' - interval '90' day").unwrap();
        let s = p.render();
        assert!(s.contains("1998-09-02"), "interval should fold: {s}");
    }

    #[test]
    fn date_string_comparison_coerces() {
        let p = bind("SELECT a FROM t WHERE d = '1995-01-01'").unwrap();
        let s = p.render();
        assert!(s.contains("1995-01-01"));
    }

    #[test]
    fn group_by_and_aggregates() {
        let p = bind("SELECT b, sum(a) AS s, count(*) AS c FROM t GROUP BY b").unwrap();
        match &p {
            Plan::Project { input, .. } => match input.as_ref() {
                Plan::Aggregate { groups, aggs, .. } => {
                    assert_eq!(groups.len(), 1);
                    assert_eq!(aggs.len(), 2);
                    assert_eq!(aggs[0].ty, LogicalType::Bigint);
                }
                other => panic!("expected aggregate, got {other:?}"),
            },
            other => panic!("expected project, got {other:?}"),
        }
    }

    #[test]
    fn aggregate_dedup() {
        // sum(a) referenced twice becomes one AggSpec.
        let p = bind("SELECT sum(a), sum(a) + 1 FROM t").unwrap();
        match &p {
            Plan::Project { input, .. } => match input.as_ref() {
                Plan::Aggregate { aggs, .. } => assert_eq!(aggs.len(), 1),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_grouped_column_rejected() {
        assert!(matches!(bind("SELECT b, a, sum(a) FROM t GROUP BY b"), Err(MlError::Bind(_))));
    }

    #[test]
    fn having_binds_in_agg_context() {
        let p = bind("SELECT b FROM t GROUP BY b HAVING count(*) > 2").unwrap();
        // Filter sits between aggregate and project.
        match &p {
            Plan::Project { input, .. } => {
                assert!(matches!(input.as_ref(), Plan::Filter { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn order_by_alias_and_ordinal() {
        let p = bind("SELECT a AS x, b FROM t ORDER BY x DESC, 2").unwrap();
        match &p {
            Plan::Sort { keys, .. } => assert_eq!(keys, &vec![(0, true), (1, false)]),
            other => panic!("{other:?}"),
        }
        assert!(bind("SELECT a FROM t ORDER BY 5").is_err());
        assert!(bind("SELECT a FROM t ORDER BY nope").is_err());
    }

    #[test]
    fn exists_flattens_to_semi_join() {
        let p =
            bind("SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.a = t.a AND u.x > 0.5)")
                .unwrap();
        let s = p.render();
        assert!(s.contains("semi join"), "{s}");
        assert!(s.contains("filter") || s.contains("where"), "inner filter retained: {s}");
    }

    #[test]
    fn not_exists_flattens_to_anti_join() {
        let p = bind("SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.a = t.a)").unwrap();
        assert!(p.render().contains("anti join"));
    }

    #[test]
    fn in_subquery_flattens_to_semi_join() {
        let p = bind("SELECT a FROM t WHERE a IN (SELECT a FROM u)").unwrap();
        assert!(p.render().contains("semi join"));
    }

    #[test]
    fn correlated_scalar_agg_flattens() {
        // Q2's shape.
        let p = bind("SELECT a FROM t WHERE p = (SELECT min(x) FROM u WHERE u.a = t.a)").unwrap();
        let s = p.render();
        assert!(s.contains("left join"), "{s}");
        assert!(s.contains("min"), "{s}");
    }

    #[test]
    fn case_types_unify() {
        let p = bind("SELECT sum(CASE WHEN b = 'x' THEN p ELSE 0 END) FROM t").unwrap();
        match &p {
            Plan::Project { input, .. } => match input.as_ref() {
                Plan::Aggregate { aggs, .. } => {
                    assert_eq!(aggs[0].ty, LogicalType::Decimal { width: 18, scale: 2 });
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_without_from() {
        let p = bind("SELECT 1 + 2 AS x").unwrap();
        assert_eq!(p.schema()[0].name, "x");
    }

    #[test]
    fn like_requires_string() {
        assert!(bind("SELECT a FROM t WHERE b LIKE '%x%'").is_ok());
        assert!(matches!(
            bind("SELECT a FROM t WHERE a LIKE '%x%'"),
            Err(MlError::TypeMismatch(_))
        ));
    }

    #[test]
    fn between_desugars() {
        let p = bind("SELECT a FROM t WHERE a BETWEEN 1 AND 5").unwrap();
        let s = p.render();
        assert!(s.contains(">=") && s.contains("<="), "{s}");
    }

    #[test]
    fn in_list_desugars_to_ors() {
        let p = bind("SELECT a FROM t WHERE b IN ('x', 'y')").unwrap();
        let s = p.render();
        assert!(s.contains("or"), "{s}");
    }

    #[test]
    fn explicit_join_keys_left_in_residual() {
        let p = bind("SELECT t.a FROM t JOIN u ON t.a = u.a").unwrap();
        let s = p.render();
        assert!(s.contains("residual"), "keys extracted later by optimizer: {s}");
    }

    #[test]
    fn uncorrelated_scalar_binds_as_keyless_left_join() {
        let p = bind("SELECT a FROM t WHERE a > (SELECT min(a) FROM u)").unwrap();
        let s = p.render();
        assert!(s.contains("left join on \n"), "key-less scalar join: {s}");
        assert!(s.contains("min"), "{s}");
    }

    #[test]
    fn having_scalar_subquery_joins_after_aggregation() {
        let p = bind(
            "SELECT b, sum(a) AS s FROM t GROUP BY b \
             HAVING sum(a) > (SELECT sum(a) FROM u)",
        )
        .unwrap();
        let s = p.render();
        // Two aggregates: the outer grouped one and the subquery's global
        // one, joined key-less and filtered.
        assert_eq!(s.matches("aggregate").count(), 2, "{s}");
        assert!(s.contains("left join"), "{s}");
    }

    #[test]
    fn not_in_subquery_plans_null_guard() {
        let p = bind("SELECT a FROM t WHERE a NOT IN (SELECT a FROM u)").unwrap();
        let s = p.render();
        assert!(s.contains("anti join"), "{s}");
        // The three-valued guard: counts cross-joined and filtered.
        assert!(s.contains("count"), "{s}");
        assert!(s.contains("cross join"), "{s}");
    }

    #[test]
    fn exists_with_non_equality_correlation_becomes_residual() {
        // Q21's shape: one correlated equality (the key) plus a
        // correlated inequality (the residual).
        let p = bind(
            "SELECT a FROM t WHERE EXISTS \
             (SELECT * FROM u WHERE u.a = t.a AND u.x <> t.p)",
        )
        .unwrap();
        let s = p.render();
        assert!(s.contains("semi join"), "{s}");
        assert!(s.contains("residual"), "{s}");
    }

    #[test]
    fn uncorrelated_in_with_group_by_binds_standalone() {
        // Q18's shape: a grouped + HAVING subquery inside IN.
        let p = bind(
            "SELECT a FROM t WHERE a IN \
             (SELECT a FROM u GROUP BY a HAVING count(*) > 1)",
        )
        .unwrap();
        let s = p.render();
        assert!(s.contains("semi join"), "{s}");
        assert!(s.contains("aggregate"), "{s}");
    }

    #[test]
    fn correlated_scalar_with_expression_around_aggregate() {
        // Q17/Q20's shape: the subquery projects 0.5 * sum(...).
        let p = bind(
            "SELECT a FROM t WHERE p > \
             (SELECT 0.5 * min(x) FROM u WHERE u.a = t.a)",
        )
        .unwrap();
        let s = p.render();
        assert!(s.contains("left join"), "{s}");
        assert!(s.contains("0.5") || s.contains("0.50"), "value recomputed outside: {s}");
    }

    #[test]
    fn or_common_conjuncts_are_factored() {
        // Q19's shape: the shared equality hoists out of the OR.
        let p = bind(
            "SELECT t.a FROM t, u WHERE \
             (t.a = u.a AND t.b = 'x' AND u.x > 1.0) OR \
             (t.a = u.a AND t.b = 'y' AND u.x > 2.0)",
        )
        .unwrap();
        let s = p.render();
        let factored = factor_or_common(&match monetlite_sql::parse_statement(
            "SELECT 1 FROM t WHERE (a = 1 AND b = 'x') OR (a = 1 AND b = 'y')",
        )
        .unwrap()
        {
            monetlite_sql::Statement::Select(sel) => sel.where_clause.clone().unwrap(),
            _ => unreachable!(),
        });
        let factored = factored.expect("common conjunct found");
        assert_eq!(factored.len(), 2, "common + reduced OR: {factored:?}");
        // In the bound plan, the hoisted equality is a separate conjunct
        // the optimizer can later turn into a join key.
        assert!(s.contains("(#0 = #4)") || s.contains("filter"), "{s}");
    }

    #[test]
    fn cte_binds_like_a_derived_table() {
        let p = bind(
            "WITH big (k, total) AS (SELECT a, sum(p) FROM t GROUP BY a) \
             SELECT k FROM big WHERE total > 10",
        )
        .unwrap();
        assert_eq!(p.schema().len(), 1);
        assert_eq!(p.schema()[0].name, "k");
        // Later CTEs see earlier ones; a CTE shadows a base table.
        let p2 = bind(
            "WITH t (z) AS (SELECT a FROM u), second AS (SELECT z FROM t) \
             SELECT z FROM second",
        )
        .unwrap();
        assert_eq!(p2.schema()[0].name, "z");
    }

    #[test]
    fn derived_table_column_aliases_rename_scope() {
        // Q13's shape.
        let p = bind(
            "SELECT c, count(*) FROM \
             (SELECT a, b FROM t) AS d (k, c) GROUP BY c",
        )
        .unwrap();
        assert_eq!(p.schema()[0].name, "c");
        assert!(matches!(
            bind("SELECT 1 FROM (SELECT a, b FROM t) AS d (only_one)"),
            Err(MlError::Bind(_))
        ));
    }

    #[test]
    fn view_expands_at_bind_time() {
        struct ViewCat {
            inner: MockCatalog,
        }
        impl CatalogAccess for ViewCat {
            fn table_schema(&self, name: &str) -> Result<Schema> {
                self.inner.table_schema(name)
            }
            fn view_def(&self, name: &str) -> Option<ViewDef> {
                (name == "v").then(|| ViewDef {
                    columns: Some(vec!["k".into(), "total".into()]),
                    query: match monetlite_sql::parse_statement(
                        "SELECT a, sum(p) FROM t GROUP BY a",
                    )
                    .unwrap()
                    {
                        monetlite_sql::Statement::Select(s) => *s,
                        _ => unreachable!(),
                    },
                })
            }
        }
        let cat = ViewCat { inner: catalog() };
        let stmt =
            monetlite_sql::parse_statement("SELECT k, total FROM v WHERE total > 1").unwrap();
        let monetlite_sql::Statement::Select(s) = stmt else { unreachable!() };
        let p = Binder::new(&cat).bind_select(&s).unwrap();
        assert_eq!(p.schema().len(), 2);
        assert_eq!(p.schema()[1].name, "total");
    }

    #[test]
    fn unsupported_errors_name_the_sql_fragment() {
        // The diagnostic must quote SQL, not debug-print the AST.
        let e = bind("SELECT a FROM t WHERE b = 'x' OR a IN (SELECT a FROM u)").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("in (select ...)"), "fragment quoted as SQL: {msg}");
        assert!(!msg.contains("InSubquery"), "no AST debug dump: {msg}");
    }

    #[test]
    fn broken_subquery_reports_the_real_error_not_correlation() {
        // A typo'd column in an EXISTS subquery must not be misreported
        // as a correlation problem: the standalone bind failure is
        // carried into the diagnostic.
        let e = bind("SELECT a FROM t WHERE EXISTS (SELECT nosuch FROM u)").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("nosuch"), "names the unknown column: {msg}");
        let e2 = bind("SELECT a FROM t WHERE a IN (SELECT nosuch FROM u)").unwrap_err();
        assert!(e2.to_string().contains("nosuch"), "{e2}");
        let e3 = bind("SELECT a FROM t WHERE a > (SELECT min(nosuch) FROM u)").unwrap_err();
        assert!(e3.to_string().contains("nosuch"), "{e3}");
    }
}
