//! Test-support infrastructure compiled into the library so integration
//! tests, CI legs and future subsystems (MVCC serving, background
//! consolidation) can reuse it.
//!
//! The only resident today is [`interleave`], the loom-style
//! deterministic-interleaving model checker for the shared-state
//! protocols of [`crate::pipeline`].

pub mod interleave;
