//! End-to-end durability: checkpointing, WAL recovery, vmem paging and
//! corruption handling across full engine restarts.

use monetlite::{Database, DbOptions};
use monetlite_types::{MlError, Value};

#[test]
fn full_lifecycle_with_restart() {
    let dir = tempfile::tempdir().unwrap();
    {
        let db = Database::open(dir.path()).unwrap();
        let mut conn = db.connect();
        conn.run_script(
            "CREATE TABLE t (k INT NOT NULL, v VARCHAR(16), d DECIMAL(8,2));
             INSERT INTO t VALUES (1, 'one', 1.00), (2, 'two', 2.00), (3, 'three', 3.00);",
        )
        .unwrap();
        db.checkpoint().unwrap();
        // Post-checkpoint writes live only in the WAL.
        conn.execute("DELETE FROM t WHERE k = 2").unwrap();
        conn.execute("INSERT INTO t VALUES (4, 'four', 4.00)").unwrap();
        conn.execute("UPDATE t SET d = d * 2 WHERE k = 1").unwrap();
    }
    let db = Database::open(dir.path()).unwrap();
    let mut conn = db.connect();
    let r = conn.query("SELECT k, v, d FROM t ORDER BY k").unwrap();
    assert_eq!(r.nrows(), 3);
    assert_eq!(
        r.row(0),
        vec![
            Value::Int(1),
            Value::Str("one".into()),
            Value::Decimal(monetlite_types::Decimal::new(200, 2))
        ]
    );
    assert_eq!(r.value(1, 0), Value::Int(3));
    assert_eq!(r.value(2, 0), Value::Int(4));
}

#[test]
fn uncommitted_transaction_lost_on_restart() {
    let dir = tempfile::tempdir().unwrap();
    {
        let db = Database::open(dir.path()).unwrap();
        let mut conn = db.connect();
        conn.execute("CREATE TABLE t (k INT)").unwrap();
        conn.execute("INSERT INTO t VALUES (1)").unwrap();
        conn.execute("BEGIN").unwrap();
        conn.execute("INSERT INTO t VALUES (2)").unwrap();
        // Dropped without COMMIT: must not survive.
    }
    let db = Database::open(dir.path()).unwrap();
    let mut conn = db.connect();
    let r = conn.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(r.value(0, 0), Value::Bigint(1));
}

#[test]
fn corrupt_column_file_reports_error_not_crash() {
    let dir = tempfile::tempdir().unwrap();
    {
        let db = Database::open(dir.path()).unwrap();
        let mut conn = db.connect();
        conn.execute("CREATE TABLE t (k INT)").unwrap();
        conn.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        db.checkpoint().unwrap();
    }
    // Flip bytes in one *column* file (not a `.zm`/`.st` sidecar — those
    // are caches whose corruption is a silent rebuild, covered in the
    // storage crate's tests).
    let cols_dir = dir.path().join("cols");
    let victim = std::fs::read_dir(&cols_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "bat"))
        .expect("a column file exists");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&victim, &bytes).unwrap();
    // Open succeeds (lazy loading); the query reports corruption.
    let db = Database::open(dir.path()).unwrap();
    let mut conn = db.connect();
    match conn.query("SELECT * FROM t") {
        Err(MlError::Corrupt(_)) => {}
        other => panic!("expected Corrupt error, got {other:?}"),
    }
}

#[test]
fn column_stats_survive_restart_and_feed_the_optimizer() {
    let dir = tempfile::tempdir().unwrap();
    {
        let db = Database::open(dir.path()).unwrap();
        let mut conn = db.connect();
        conn.execute("CREATE TABLE t (k INT NOT NULL)").unwrap();
        conn.append(
            "t",
            vec![monetlite_types::ColumnBuffer::Int((0..20_000).map(|i| i % 100).collect())],
        )
        .unwrap();
        db.checkpoint().unwrap();
        // The checkpoint wrote a `.st` sidecar next to the column file.
        let has_st = std::fs::read_dir(dir.path().join("cols"))
            .unwrap()
            .any(|e| e.unwrap().path().to_string_lossy().ends_with(".st"));
        assert!(has_st, "checkpoint must write stats sidecars");
    }
    // After restart the optimizer costs plans from the persisted stats:
    // EXPLAIN renders real estimates and a query records its estimate in
    // the counters. `k = 5` over 100 distinct values ⇒ ~1% of 20k rows.
    let db = Database::open(dir.path()).unwrap();
    let mut conn = db.connect();
    let ex = conn.query("EXPLAIN SELECT k FROM t WHERE k = 5").unwrap();
    let text: Vec<String> = (0..ex.nrows()).map(|i| ex.value(i, 0).to_string()).collect();
    let joined = text.join("\n");
    assert!(joined.contains("-- stats"), "{joined}");
    let r = conn.query("SELECT k FROM t WHERE k = 5").unwrap();
    assert_eq!(r.nrows(), 200);
    let est = conn.last_exec_counters().unwrap().estimated_rows;
    assert!((100..=400).contains(&est), "estimate should be near 20000/ndv(100) = 200, got {est}");
}

#[test]
fn database_locked_second_open() {
    let dir = tempfile::tempdir().unwrap();
    let _db = Database::open(dir.path()).unwrap();
    match Database::open(dir.path()) {
        Err(MlError::Catalog(m)) => assert!(m.contains("database locked")),
        other => panic!("expected database locked, got {:?}", other.err()),
    }
}

#[test]
fn vmem_pressure_evicts_and_reloads_transparently() {
    let dir = tempfile::tempdir().unwrap();
    let opts = DbOptions {
        path: Some(dir.path().to_path_buf()),
        vmem_budget: 100 * 1024, // 100 kB "RAM"
        ..Default::default()
    };
    let db = Database::open_with(opts).unwrap();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE wide (a INT, b INT, c INT, d INT)").unwrap();
    let col: Vec<i32> = (0..50_000).collect();
    conn.append(
        "wide",
        vec![
            monetlite_types::ColumnBuffer::Int(col.clone()),
            monetlite_types::ColumnBuffer::Int(col.clone()),
            monetlite_types::ColumnBuffer::Int(col.clone()),
            monetlite_types::ColumnBuffer::Int(col),
        ],
    )
    .unwrap();
    db.checkpoint().unwrap();
    // Touch columns one after another: 200 kB each vs a 100 kB budget.
    for col in ["a", "b", "c", "d", "a", "b"] {
        let r = conn.query(&format!("SELECT sum({col}) FROM wide")).unwrap();
        assert_eq!(r.value(0, 0), Value::Bigint((0..50_000i64).sum()));
    }
    let stats = db.vmem_stats();
    assert!(stats.evictions > 0, "expected evictions under pressure: {stats:?}");
    assert!(stats.loads > 0, "expected reloads from column files: {stats:?}");
}
