//! Fixed-size row pages with an LRU cache and disk spill.
//!
//! Rows serialise row-major into 8 KiB pages. Pages past the configured
//! cache budget are written to the table's spill file and read back on
//! demand — real file I/O, reproducing the "swapped to disk" degradation
//! of Table 1 at SF10.

use monetlite_types::{MlError, Result};
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Page size in bytes (SQLite's default is 4 KiB; 8 KiB keeps wide ACS
/// rows on one page).
pub const PAGE_SIZE: usize = 8192;

enum Slot {
    /// In memory; `dirty` = not yet written to the spill file.
    Resident { data: Vec<u8>, dirty: bool },
    /// Only on disk at `page_index * PAGE_SIZE`.
    Spilled,
}

/// The page store of one table.
pub struct PageStore {
    slots: Vec<Slot>,
    /// LRU queue of resident page indexes.
    lru: VecDeque<u32>,
    resident: usize,
    budget: usize,
    path: PathBuf,
    file: Option<File>,
    io_reads: u64,
    io_writes: u64,
}

impl PageStore {
    /// New store backed by `path` with a resident budget in pages.
    pub fn new(path: PathBuf, budget_pages: usize) -> PageStore {
        PageStore {
            slots: Vec::new(),
            lru: VecDeque::new(),
            resident: 0,
            budget: budget_pages.max(1),
            path,
            file: None,
            io_reads: 0,
            io_writes: 0,
        }
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.slots.len()
    }

    /// Pages read back from the spill file so far.
    pub fn io_reads(&self) -> u64 {
        self.io_reads
    }

    /// Pages written to the spill file so far.
    pub fn io_writes(&self) -> u64 {
        self.io_writes
    }

    fn file(&mut self) -> Result<&mut File> {
        if self.file.is_none() {
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&self.path)?;
            self.file = Some(f);
        }
        Ok(self.file.as_mut().unwrap())
    }

    /// Append a new empty page, returning its index.
    pub fn new_page(&mut self) -> Result<u32> {
        let idx = self.slots.len() as u32;
        self.slots.push(Slot::Resident { data: Vec::with_capacity(PAGE_SIZE), dirty: true });
        self.resident += 1;
        self.lru.push_back(idx);
        self.enforce_budget(idx)?;
        Ok(idx)
    }

    /// Append bytes to a page (caller checked capacity); returns offset.
    pub fn append(&mut self, page: u32, bytes: &[u8]) -> Result<u32> {
        self.load(page)?;
        match &mut self.slots[page as usize] {
            Slot::Resident { data, dirty } => {
                let off = data.len() as u32;
                data.extend_from_slice(bytes);
                *dirty = true;
                Ok(off)
            }
            Slot::Spilled => unreachable!("just loaded"),
        }
    }

    /// Bytes remaining in a page (the on-disk image reserves 4 bytes for
    /// the used-length header).
    pub fn free_in(&mut self, page: u32) -> Result<usize> {
        self.load(page)?;
        match &self.slots[page as usize] {
            Slot::Resident { data, .. } => Ok((PAGE_SIZE - 4).saturating_sub(data.len())),
            Slot::Spilled => unreachable!(),
        }
    }

    /// Read `len` bytes at `(page, offset)` into a fresh buffer.
    pub fn read(&mut self, page: u32, offset: u32, len: u32) -> Result<Vec<u8>> {
        self.load(page)?;
        match &self.slots[page as usize] {
            Slot::Resident { data, .. } => {
                let (o, l) = (offset as usize, len as usize);
                if o + l > data.len() {
                    return Err(MlError::Corrupt("row pointer out of page".into()));
                }
                Ok(data[o..o + l].to_vec())
            }
            Slot::Spilled => unreachable!(),
        }
    }

    fn load(&mut self, page: u32) -> Result<()> {
        let i = page as usize;
        if i >= self.slots.len() {
            return Err(MlError::Corrupt(format!("page {page} out of range")));
        }
        if matches!(self.slots[i], Slot::Resident { .. }) {
            // Refresh LRU position lazily: cheap strategy, move to back.
            if let Some(pos) = self.lru.iter().position(|&p| p == page) {
                self.lru.remove(pos);
            }
            self.lru.push_back(page);
            return Ok(());
        }
        // Read the page back from disk.
        let mut buf = vec![0u8; PAGE_SIZE];
        {
            let f = self.file()?;
            f.seek(SeekFrom::Start(page as u64 * PAGE_SIZE as u64))?;
            f.read_exact(&mut buf)?;
        }
        self.io_reads += 1;
        // Stored pages are padded to PAGE_SIZE with a length prefix.
        let used = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        if used > PAGE_SIZE - 4 {
            return Err(MlError::Corrupt("bad page header".into()));
        }
        let data = buf[4..4 + used].to_vec();
        self.slots[i] = Slot::Resident { data, dirty: false };
        self.resident += 1;
        self.lru.push_back(page);
        self.enforce_budget(page)
    }

    fn enforce_budget(&mut self, keep: u32) -> Result<()> {
        while self.resident > self.budget {
            let Some(victim) = self.lru.iter().position(|&p| p != keep) else {
                break;
            };
            let v = self.lru.remove(victim).unwrap();
            self.spill(v)?;
        }
        Ok(())
    }

    fn spill(&mut self, page: u32) -> Result<()> {
        let i = page as usize;
        let Slot::Resident { data, dirty } = std::mem::replace(&mut self.slots[i], Slot::Spilled)
        else {
            return Ok(());
        };
        if dirty {
            self.write_page(page, &data)?;
        }
        self.resident -= 1;
        Ok(())
    }

    fn write_page(&mut self, page: u32, data: &[u8]) -> Result<()> {
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[..4].copy_from_slice(&(data.len() as u32).to_le_bytes());
        buf[4..4 + data.len()].copy_from_slice(data);
        let f = self.file()?;
        f.seek(SeekFrom::Start(page as u64 * PAGE_SIZE as u64))?;
        f.write_all(&buf)?;
        self.io_writes += 1;
        Ok(())
    }

    /// Write every dirty page to disk and flush (`dbWriteTable`'s sync).
    pub fn sync(&mut self) -> Result<()> {
        for i in 0..self.slots.len() {
            if let Slot::Resident { data, dirty } = &self.slots[i] {
                if *dirty {
                    let data = data.clone();
                    self.write_page(i as u32, &data)?;
                    if let Slot::Resident { dirty, .. } = &mut self.slots[i] {
                        *dirty = false;
                    }
                }
            }
        }
        if let Some(f) = &mut self.file {
            f.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(budget: usize) -> (tempfile::TempDir, PageStore) {
        let dir = tempfile::tempdir().unwrap();
        let ps = PageStore::new(dir.path().join("t.rsdb"), budget);
        (dir, ps)
    }

    #[test]
    fn append_read_roundtrip() {
        let (_d, mut ps) = store(usize::MAX);
        let p = ps.new_page().unwrap();
        let off = ps.append(p, b"hello").unwrap();
        let off2 = ps.append(p, b"world").unwrap();
        assert_eq!(ps.read(p, off, 5).unwrap(), b"hello");
        assert_eq!(ps.read(p, off2, 5).unwrap(), b"world");
    }

    #[test]
    fn spill_and_reload() {
        let (_d, mut ps) = store(1);
        let p0 = ps.new_page().unwrap();
        ps.append(p0, b"page-zero").unwrap();
        let p1 = ps.new_page().unwrap(); // evicts p0 to disk
        ps.append(p1, b"page-one").unwrap();
        assert_eq!(ps.read(p0, 0, 9).unwrap(), b"page-zero");
        assert!(ps.io_reads() >= 1);
        assert!(ps.io_writes() >= 1);
    }

    #[test]
    fn sync_writes_dirty_pages() {
        let (d, mut ps) = store(usize::MAX);
        let p = ps.new_page().unwrap();
        ps.append(p, b"durable").unwrap();
        ps.sync().unwrap();
        let meta = std::fs::metadata(d.path().join("t.rsdb")).unwrap();
        assert_eq!(meta.len(), PAGE_SIZE as u64);
    }

    #[test]
    fn many_pages_under_tiny_budget() {
        let (_d, mut ps) = store(2);
        let mut ptrs = Vec::new();
        for i in 0..50u32 {
            let p = ps.new_page().unwrap();
            let payload = format!("payload-{i}");
            let off = ps.append(p, payload.as_bytes()).unwrap();
            ptrs.push((p, off, payload));
        }
        for (p, off, payload) in ptrs {
            assert_eq!(ps.read(p, off, payload.len() as u32).unwrap(), payload.as_bytes());
        }
    }

    #[test]
    fn out_of_range_reads_rejected() {
        let (_d, mut ps) = store(usize::MAX);
        assert!(ps.read(7, 0, 1).is_err());
        let p = ps.new_page().unwrap();
        ps.append(p, b"x").unwrap();
        assert!(ps.read(p, 0, 100).is_err());
    }
}
