//! Error handling for the whole workspace.
//!
//! The paper (§3.4 *Error Handling*) describes rewriting MonetDB so that
//! errors are "reported as a return value from the SQL query function"
//! rather than written to an output stream or aborting the process via
//! `exit()`. In Rust that contract is the natural one: every fallible
//! operation returns [`Result`], no API ever panics on user input, and no
//! process-global state is mutated on failure.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, MlError>;

/// All error conditions surfaced by the monetlite engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// SQL lexer/parser failure: message and byte offset in the input.
    Parse { message: String, offset: usize },
    /// Name resolution / semantic analysis failure.
    Bind(String),
    /// Catalog problem: unknown/duplicate table, column, index.
    Catalog(String),
    /// Type-check / coercion failure.
    TypeMismatch(String),
    /// Runtime execution failure (overflow, division by zero, bad cast...).
    Execution(String),
    /// Optimistic concurrency control detected a write-write conflict at
    /// commit time; the transaction was aborted (paper §3.1 *Concurrency
    /// Control*).
    TransactionConflict(String),
    /// Operation attempted on a connection without the required transaction
    /// state (e.g. COMMIT without BEGIN).
    TransactionState(String),
    /// I/O failure against the persistent store (message carries context;
    /// `std::io::Error` is not `Clone`/`PartialEq` so we keep the string).
    Io(String),
    /// On-disk data failed validation during startup or recovery. The paper
    /// (§3.4) stresses that a corrupt database must produce "a simple error
    /// being thrown" instead of killing the host process.
    Corrupt(String),
    /// The configured memory budget was exceeded. Used by the dataframe
    /// library baseline to reproduce the SF10 "E" entries of Table 1.
    OutOfMemory { requested: usize, budget: usize },
    /// A query exceeded the harness-imposed timeout ("T" entries of Table 1).
    Timeout { elapsed_ms: u64, limit_ms: u64 },
    /// The query was cancelled from another thread via
    /// `Connection::interrupt_handle()`. Like a timeout this aborts only
    /// the running statement; the connection stays usable.
    Interrupted,
    /// The query's spill files exceeded the per-query temp-disk byte cap
    /// (`MONETLITE_SPILL_QUOTA` / `ExecOptions::spill_quota`). Aborts only
    /// the offending query; other sessions and the store are unaffected.
    SpillQuota { used: u64, quota: u64 },
    /// Wire-protocol violation in the client/server simulation.
    Protocol(String),
    /// Feature recognised but unsupported in this build.
    Unsupported(String),
}

impl MlError {
    /// Convenience constructor for parse errors.
    pub fn parse(message: impl Into<String>, offset: usize) -> Self {
        MlError::Parse { message: message.into(), offset }
    }

    /// True when the error is a recoverable user-level error (as opposed to
    /// corruption or I/O failure).
    pub fn is_user_error(&self) -> bool {
        matches!(
            self,
            MlError::Parse { .. }
                | MlError::Bind(_)
                | MlError::Catalog(_)
                | MlError::TypeMismatch(_)
                | MlError::TransactionState(_)
                | MlError::Unsupported(_)
        )
    }
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            MlError::Bind(m) => write!(f, "binder error: {m}"),
            MlError::Catalog(m) => write!(f, "catalog error: {m}"),
            MlError::TypeMismatch(m) => write!(f, "type error: {m}"),
            MlError::Execution(m) => write!(f, "execution error: {m}"),
            MlError::TransactionConflict(m) => write!(f, "transaction conflict: {m}"),
            MlError::TransactionState(m) => write!(f, "transaction state error: {m}"),
            MlError::Io(m) => write!(f, "io error: {m}"),
            MlError::Corrupt(m) => write!(f, "database corrupt: {m}"),
            MlError::OutOfMemory { requested, budget } => {
                write!(f, "out of memory: requested {requested} bytes, budget {budget}")
            }
            MlError::Timeout { elapsed_ms, limit_ms } => {
                write!(f, "query timeout: {elapsed_ms}ms elapsed, limit {limit_ms}ms")
            }
            MlError::Interrupted => write!(f, "query interrupted"),
            MlError::SpillQuota { used, quota } => {
                write!(f, "spill quota exceeded: query wrote {used} temp bytes, quota {quota}")
            }
            MlError::Protocol(m) => write!(f, "protocol error: {m}"),
            MlError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for MlError {}

impl From<std::io::Error> for MlError {
    fn from(e: std::io::Error) -> Self {
        MlError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = MlError::parse("unexpected token", 17);
        assert_eq!(e.to_string(), "parse error at byte 17: unexpected token");
        let e = MlError::OutOfMemory { requested: 100, budget: 50 };
        assert!(e.to_string().contains("requested 100"));
    }

    #[test]
    fn user_error_classification() {
        assert!(MlError::Bind("x".into()).is_user_error());
        assert!(MlError::parse("x", 0).is_user_error());
        assert!(!MlError::Io("disk".into()).is_user_error());
        assert!(!MlError::Corrupt("bad magic".into()).is_user_error());
        assert!(!MlError::TransactionConflict("w-w".into()).is_user_error());
    }

    #[test]
    fn interrupt_and_quota_are_not_user_errors() {
        // Both abort a statement for operational reasons, not because the
        // statement itself was invalid.
        assert!(!MlError::Interrupted.is_user_error());
        assert!(!MlError::SpillQuota { used: 10, quota: 5 }.is_user_error());
        assert!(MlError::Interrupted.to_string().contains("interrupted"));
        let q = MlError::SpillQuota { used: 10, quota: 5 };
        assert!(q.to_string().contains("quota 5"), "{q}");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: MlError = io.into();
        assert!(matches!(e, MlError::Io(_)));
    }
}
