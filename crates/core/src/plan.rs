//! Logical/physical relational plans.
//!
//! MonetDB parses SQL "into a relational algebra tree" (paper §3.1 *Query
//! Plan Execution*); high-level optimizations (filter push-down, join
//! ordering) run on this tree before it is lowered to the MAL-style
//! column-at-a-time program ([`crate::mal`]). We keep one plan type for
//! both phases — physical decisions (index use, parallelism) are taken by
//! the executor per the paper's "tactical decisions ... during execution".

use crate::expr::{AggSpec, BExpr};
use monetlite_types::LogicalType;
use std::fmt;

/// Join kinds at the plan level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PJoinKind {
    /// Inner equi/θ join.
    Inner,
    /// Left outer join.
    Left,
    /// Left semi join (EXISTS / IN).
    Semi,
    /// Left anti join (NOT EXISTS / NOT IN).
    Anti,
    /// Cross product.
    Cross,
}

impl fmt::Display for PJoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PJoinKind::Inner => "inner",
            PJoinKind::Left => "left",
            PJoinKind::Semi => "semi",
            PJoinKind::Anti => "anti",
            PJoinKind::Cross => "cross",
        };
        write!(f, "{s}")
    }
}

/// One output column description.
#[derive(Debug, Clone, PartialEq)]
pub struct OutCol {
    /// Output name (alias or source column name).
    pub name: String,
    /// Type.
    pub ty: LogicalType,
}

/// A relational plan node. Every node knows its output schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Base-table scan with optional projection (base column positions)
    /// and conjunctive filters over the *projected* outputs.
    Scan {
        /// Table name in the catalog.
        table: String,
        /// Base-table column positions produced, in output order.
        projected: Vec<usize>,
        /// Pushed-down conjuncts over the scan output.
        filters: Vec<BExpr>,
        /// Output schema.
        schema: Vec<OutCol>,
    },
    /// σ: keep rows satisfying the predicate.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate over the input schema.
        pred: BExpr,
    },
    /// π: compute expressions over the input.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output expressions.
        exprs: Vec<BExpr>,
        /// Output schema (same length as `exprs`).
        schema: Vec<OutCol>,
    },
    /// ⋈: equi-join with optional residual predicate over the concatenated
    /// (left ++ right) schema.
    Join {
        /// Left input (probe side).
        left: Box<Plan>,
        /// Right input (build side).
        right: Box<Plan>,
        /// Join kind.
        kind: PJoinKind,
        /// Equi-key expressions over the left schema.
        left_keys: Vec<BExpr>,
        /// Equi-key expressions over the right schema.
        right_keys: Vec<BExpr>,
        /// Residual predicate over left ++ right outputs.
        residual: Option<BExpr>,
        /// Output schema (left ++ right; for semi/anti: left only).
        schema: Vec<OutCol>,
    },
    /// γ: grouped aggregation.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Group-key expressions over the input (empty = one global
        /// group).
        groups: Vec<BExpr>,
        /// Aggregate computations.
        aggs: Vec<AggSpec>,
        /// Output schema: group columns then aggregate columns.
        schema: Vec<OutCol>,
    },
    /// Sort by output columns.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// (column index, descending) sort keys over the input schema.
        keys: Vec<(usize, bool)>,
    },
    /// First `n` rows (after any Sort below it).
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Row budget.
        n: u64,
    },
    /// Sort fused with Limit (top-n).
    TopN {
        /// Input plan.
        input: Box<Plan>,
        /// Sort keys.
        keys: Vec<(usize, bool)>,
        /// Row budget.
        n: u64,
    },
    /// Duplicate elimination over all output columns.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// Literal rows (e.g. `SELECT 1`).
    Values {
        /// Row-major literal expressions (must be constant).
        rows: Vec<Vec<BExpr>>,
        /// Output schema.
        schema: Vec<OutCol>,
    },
}

impl Plan {
    /// Is this node a **pipeline breaker** — an operator that must see
    /// its whole input before emitting output? The streaming engine
    /// ([`crate::pipeline`]) cuts plans at these nodes: breakers drain
    /// their input pipeline to completion, everything else streams
    /// vector-at-a-time. Joins are the half-breaking case — the build
    /// (right) side breaks, the probe (left) side streams — so `Join`
    /// reports `false` here; the break is on its right edge.
    pub fn is_pipeline_breaker(&self) -> bool {
        matches!(
            self,
            Plan::Aggregate { .. }
                | Plan::Sort { .. }
                | Plan::TopN { .. }
                | Plan::Limit { .. }
                | Plan::Distinct { .. }
        )
    }

    /// The node's output schema.
    pub fn schema(&self) -> &[OutCol] {
        match self {
            Plan::Scan { schema, .. } => schema,
            Plan::Filter { input, .. } => input.schema(),
            Plan::Project { schema, .. } => schema,
            Plan::Join { schema, .. } => schema,
            Plan::Aggregate { schema, .. } => schema,
            Plan::Sort { input, .. } => input.schema(),
            Plan::Limit { input, .. } => input.schema(),
            Plan::TopN { input, .. } => input.schema(),
            Plan::Distinct { input } => input.schema(),
            Plan::Values { schema, .. } => schema,
        }
    }

    /// Render an indented tree (EXPLAIN's first section).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            Plan::Scan { table, projected, filters, .. } => {
                let _ = write!(out, "{pad}scan {table} cols={projected:?}");
                if !filters.is_empty() {
                    let _ = write!(out, " where ");
                    for (i, f) in filters.iter().enumerate() {
                        if i > 0 {
                            let _ = write!(out, " and ");
                        }
                        let _ = write!(out, "{f}");
                    }
                }
                let _ = writeln!(out);
            }
            Plan::Filter { input, pred } => {
                let _ = writeln!(out, "{pad}filter {pred}");
                input.render_into(out, depth + 1);
            }
            Plan::Project { input, exprs, schema } => {
                let _ = write!(out, "{pad}project ");
                for (i, (e, c)) in exprs.iter().zip(schema).enumerate() {
                    if i > 0 {
                        let _ = write!(out, ", ");
                    }
                    let _ = write!(out, "{e} as {}", c.name);
                }
                let _ = writeln!(out);
                input.render_into(out, depth + 1);
            }
            Plan::Join { left, right, kind, left_keys, right_keys, residual, .. } => {
                let _ = write!(out, "{pad}{kind} join on ");
                for (i, (l, r)) in left_keys.iter().zip(right_keys).enumerate() {
                    if i > 0 {
                        let _ = write!(out, " and ");
                    }
                    let _ = write!(out, "{l} = {r}");
                }
                if let Some(res) = residual {
                    let _ = write!(out, " residual {res}");
                }
                let _ = writeln!(out);
                left.render_into(out, depth + 1);
                right.render_into(out, depth + 1);
            }
            Plan::Aggregate { input, groups, aggs, .. } => {
                let _ = write!(out, "{pad}aggregate by [");
                for (i, g) in groups.iter().enumerate() {
                    if i > 0 {
                        let _ = write!(out, ", ");
                    }
                    let _ = write!(out, "{g}");
                }
                let _ = write!(out, "] compute [");
                for (i, a) in aggs.iter().enumerate() {
                    if i > 0 {
                        let _ = write!(out, ", ");
                    }
                    let _ = write!(out, "{a}");
                }
                let _ = writeln!(out, "]");
                input.render_into(out, depth + 1);
            }
            Plan::Sort { input, keys } => {
                let _ = writeln!(out, "{pad}sort {keys:?}");
                input.render_into(out, depth + 1);
            }
            Plan::Limit { input, n } => {
                let _ = writeln!(out, "{pad}limit {n}");
                input.render_into(out, depth + 1);
            }
            Plan::TopN { input, keys, n } => {
                let _ = writeln!(out, "{pad}topn {n} by {keys:?}");
                input.render_into(out, depth + 1);
            }
            Plan::Distinct { input } => {
                let _ = writeln!(out, "{pad}distinct");
                input.render_into(out, depth + 1);
            }
            Plan::Values { rows, .. } => {
                let _ = writeln!(out, "{pad}values {} row(s)", rows.len());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_types::Value;

    fn scan() -> Plan {
        Plan::Scan {
            table: "t".into(),
            projected: vec![0, 1],
            filters: vec![],
            schema: vec![
                OutCol { name: "a".into(), ty: LogicalType::Int },
                OutCol { name: "b".into(), ty: LogicalType::Varchar },
            ],
        }
    }

    #[test]
    fn schema_passthrough() {
        let f = Plan::Filter { input: Box::new(scan()), pred: BExpr::Lit(Value::Bool(true)) };
        assert_eq!(f.schema().len(), 2);
        assert_eq!(f.schema()[1].name, "b");
    }

    #[test]
    fn breaker_classification() {
        let s = scan();
        assert!(!s.is_pipeline_breaker());
        assert!(!Plan::Filter { input: Box::new(scan()), pred: BExpr::Lit(Value::Bool(true)) }
            .is_pipeline_breaker());
        assert!(
            Plan::Sort { input: Box::new(scan()), keys: vec![(0, false)] }.is_pipeline_breaker()
        );
        assert!(Plan::Limit { input: Box::new(scan()), n: 1 }.is_pipeline_breaker());
        assert!(Plan::Distinct { input: Box::new(scan()) }.is_pipeline_breaker());
        // Joins break only on their build edge.
        assert!(!Plan::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            kind: PJoinKind::Cross,
            left_keys: vec![],
            right_keys: vec![],
            residual: None,
            schema: vec![],
        }
        .is_pipeline_breaker());
    }

    #[test]
    fn render_is_readable() {
        let p = Plan::Limit { input: Box::new(scan()), n: 5 };
        let s = p.render();
        assert!(s.contains("limit 5"));
        assert!(s.contains("scan t"));
    }
}
