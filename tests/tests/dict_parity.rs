//! Dictionary-execution parity: `MONETLITE_DICT` must be invisible in
//! results. Every TPC-H golden answer is byte-identical with dictionary
//! encoding on and off (including the string-heavy Q16), the differential
//! holds under spill budgets and with candidate lists disabled, and the
//! dict-only fast paths (zone skipping on codes, dictionary-domain LIKE,
//! bloom pushdown) actually fire where the plan says they do.

use monetlite::exec::{ExecMode, ExecOptions};
use monetlite_tests::fmt_golden_rows;
use monetlite_tpch::{generate, load_monet, queries};
use monetlite_types::{ColumnBuffer, Value};
use std::path::PathBuf;

/// Same corpus as the golden harness: answers must match the checked-in
/// files, not just each other.
const GOLDEN_SF: f64 = 0.02;
const GOLDEN_SEED: u64 = 20260727;

fn golden_path(n: usize) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden").join(format!("q{n:02}.tbl"))
}

fn streaming(threads: usize, vector_size: usize) -> ExecOptions {
    ExecOptions { mode: ExecMode::Streaming, threads, vector_size, ..Default::default() }
}

fn dict(mut o: ExecOptions, on: bool) -> ExecOptions {
    o.use_dict = on;
    o
}

fn run(db: &monetlite::Database, sql: &str, opts: ExecOptions) -> Vec<Vec<Value>> {
    let mut conn = db.connect();
    conn.set_exec_options(opts);
    let r = conn.query(sql).unwrap_or_else(|e| panic!("{e} for {sql}"));
    (0..r.nrows()).map(|i| r.row(i)).collect()
}

fn run_counting(
    db: &monetlite::Database,
    sql: &str,
    opts: ExecOptions,
) -> (Vec<Vec<Value>>, monetlite::exec::CountersSnapshot) {
    let mut conn = db.connect();
    conn.set_exec_options(opts);
    let r = conn.query(sql).unwrap_or_else(|e| panic!("{e} for {sql}"));
    let rows = (0..r.nrows()).map(|i| r.row(i)).collect();
    (rows, conn.last_exec_counters().expect("counters after query"))
}

fn with_query_setup(db: &monetlite::Database, n: usize, f: impl FnOnce()) {
    if let Some(ddl) = queries::setup_sql(n) {
        db.connect().execute(ddl).unwrap_or_else(|e| panic!("Q{n} setup: {e}"));
    }
    f();
    if let Some(ddl) = queries::teardown_sql(n) {
        db.connect().execute(ddl).unwrap_or_else(|e| panic!("Q{n} teardown: {e}"));
    }
}

fn assert_rows_eq(sql: &str, a: &[Vec<Value>], b: &[Vec<Value>], label: &str) {
    assert_eq!(a.len(), b.len(), "row count for {sql} ({label})");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        for (u, v) in x.iter().zip(y) {
            let ok = match (u, v) {
                (Value::Double(p), Value::Double(q)) => {
                    (p - q).abs() <= 1e-9 * p.abs().max(1.0) || (p.is_nan() && q.is_nan())
                }
                _ => u == v,
            };
            assert!(ok, "{sql} ({label}) row {i}: {u:?} vs {v:?}");
        }
    }
}

/// All 22 answer goldens byte-identical under both legs. This is the
/// strongest form of the differential: not only do the legs agree with
/// each other, both agree with the reviewed checked-in answers.
#[test]
fn tpch_goldens_byte_identical_with_dict_on_and_off() {
    if std::env::var("MONETLITE_BLESS").as_deref() == Ok("1") {
        return; // goldens are blessed by tpch_golden.rs
    }
    let data = generate(GOLDEN_SF, GOLDEN_SEED);
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    load_monet(&mut conn, &data).unwrap();
    drop(conn);
    for (n, sql) in queries::all() {
        let want = std::fs::read_to_string(golden_path(n)).expect("answer goldens checked in");
        with_query_setup(&db, n, || {
            for on in [true, false] {
                let mut c = db.connect();
                c.set_exec_options(dict(streaming(1, 2048), on));
                let r = c.query(sql).unwrap_or_else(|e| panic!("Q{n} dict={on}: {e}"));
                let got = fmt_golden_rows(&r);
                assert_eq!(got, want, "Q{n}: golden answer changed with dict={on}");
            }
        });
    }
}

/// The differential also holds out of core (coded group keys travel
/// through spill frames as plain integer columns) and with candidate
/// lists off (the dict row filter then produces the only selection).
#[test]
fn tpch_queries_agree_dict_off_under_spill_and_candidates_off() {
    let data = generate(0.005, 42);
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    load_monet(&mut conn, &data).unwrap();
    drop(conn);
    let total_spilled = std::cell::Cell::new(0u64);
    for (n, sql) in queries::all() {
        with_query_setup(&db, n, || {
            let base = run(&db, sql, dict(streaming(1, 1024), false));
            // Plain leg, both thread counts.
            for threads in [1, 4] {
                let got = run(&db, sql, dict(streaming(threads, 1024), true));
                assert_rows_eq(sql, &base, &got, &format!("Q{n} dict t={threads}"));
            }
            // Spilled leg: a 24kB budget forces grace partitioning while
            // dictionary codes flow through the pipeline.
            let mut tiny = dict(streaming(1, 1024), true);
            tiny.memory_budget = 24 * 1024;
            let (got, counters) = run_counting(&db, sql, tiny);
            assert_rows_eq(sql, &base, &got, &format!("Q{n} dict spilled"));
            total_spilled.set(total_spilled.get() + counters.spilled_partitions);
            // Candidates-off leg: dict predicates still apply, but output
            // gathers instead of carrying selection vectors.
            let mut gather = dict(streaming(1, 1024), true);
            gather.use_candidates = false;
            gather.use_zonemaps = false;
            let got = run(&db, sql, gather);
            assert_rows_eq(sql, &base, &got, &format!("Q{n} dict candidates-off"));
        });
    }
    assert!(total_spilled.get() > 0, "the 24kB leg must spill somewhere in Q1–Q22");
}

/// The dict scan path and bloom pushdown must actually fire on TPC-H:
/// Q17 builds on a brand+container-filtered part table (a tiny fraction
/// of partkeys), so the pushed bloom must prune most lineitem rows.
#[test]
fn dict_and_bloom_counters_fire_on_q17() {
    let data = generate(GOLDEN_SF, GOLDEN_SEED);
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    load_monet(&mut conn, &data).unwrap();
    drop(conn);
    let sql = queries::sql(17);
    // Index joins skip the bloom build (a pre-built index probe is
    // already O(1) per row); force the plain hash-join path so the
    // pushdown is the one being measured.
    let opts = |on| {
        let mut o = dict(streaming(1, 1024), on);
        o.use_hash_index = false;
        o
    };
    let base = run(&db, sql, opts(false));
    let (got, counters) = run_counting(&db, sql, opts(true));
    assert_rows_eq(sql, &base, &got, "Q17 dict leg");
    assert!(counters.dict_hits > 0, "Q17 string predicates must hit the dictionary: {counters:?}");
    assert!(
        counters.bloom_pruned > 0,
        "Q17 bloom from the filtered part build side must prune lineitem rows: {counters:?}"
    );
    // Dict off: neither counter moves.
    let (_, off) = run_counting(&db, sql, opts(false));
    assert_eq!(off.dict_hits, 0, "dict-off leg must not consult dictionaries");
    assert_eq!(off.bloom_pruned, 0, "dict-off leg must not build bloom filters");
}

/// Satellite: dictionary-domain LIKE. On a low-NDV clustered string
/// column, a LIKE prefix plan compiles to a code range (evaluated once
/// per distinct dictionary entry, not once per row), and zone bounds on
/// codes skip whole morsels — with answers identical to the row-at-a-time
/// string kernel.
#[test]
fn like_over_dictionary_domain_matches_string_kernel_and_skips_zones() {
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE ev (name VARCHAR(32), v INT)").unwrap();
    let n: i32 = 60_000;
    // Clustered: long runs of each category, so code zone bounds are
    // tight and the probe skips most morsels.
    let names: Vec<Option<String>> = (0..n)
        .map(|i| if i % 157 == 0 { None } else { Some(format!("cat{:02}-item", (i * 24) / n)) })
        .collect();
    conn.append(
        "ev",
        vec![ColumnBuffer::Varchar(names), ColumnBuffer::Int((0..n).map(|x| x % 101).collect())],
    )
    .unwrap();
    // Deletes interact with the dict row filter.
    conn.execute("DELETE FROM ev WHERE v = 7").unwrap();
    drop(conn);
    for sql in [
        "SELECT count(*), sum(v) FROM ev WHERE name LIKE 'cat07%'",
        "SELECT count(*), sum(v) FROM ev WHERE name LIKE 'cat1_-item'",
        "SELECT count(*), sum(v) FROM ev WHERE name LIKE '%-item'",
        "SELECT count(*), sum(v) FROM ev WHERE name NOT LIKE 'cat0%'",
        "SELECT count(*), sum(v) FROM ev WHERE name = 'cat03-item'",
        "SELECT count(*), sum(v) FROM ev WHERE name > 'cat19' AND name <= 'cat21-item'",
        "SELECT name, count(*) FROM ev WHERE name LIKE 'cat2%' GROUP BY name ORDER BY name",
    ] {
        let base = run(&db, sql, dict(streaming(1, 2048), false));
        for (threads, vs) in [(1, 2048), (1, 509), (4, 2048)] {
            let (got, counters) = run_counting(&db, sql, dict(streaming(threads, vs), true));
            assert_rows_eq(sql, &base, &got, &format!("dict t={threads} v={vs}"));
            assert!(counters.dict_hits > 0, "{sql}: predicate must be served by the dictionary");
        }
    }
    // The prefix probe must skip zones on the clustered column.
    let (_, counters) = run_counting(
        &db,
        "SELECT count(*) FROM ev WHERE name LIKE 'cat07%'",
        dict(streaming(1, 2048), true),
    );
    assert!(
        counters.vectors_skipped > 0,
        "a selective LIKE prefix over clustered categories must skip morsels: {counters:?}"
    );
}

/// Satellite: string-heap accounting across the dedup-abandonment
/// threshold, end to end. A group-by over >64Ki distinct VARCHAR keys
/// crosses `DEFAULT_DEDUP_LIMIT` while a tiny memory budget forces the
/// aggregate out of core — the spill decision reads `mem_bytes`, so the
/// accounting bug (double-counting abandoned dedup maps) would change
/// when/what spills. Results must match the unbudgeted run exactly.
#[test]
fn budgeted_group_by_crossing_dedup_abandonment_matches_unbounded() {
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE wide (s VARCHAR(24), v INT)").unwrap();
    let n: i32 = 80_000; // > DEFAULT_DEDUP_LIMIT (65536) distinct keys
    conn.append(
        "wide",
        vec![
            ColumnBuffer::Varchar((0..n).map(|i| Some(format!("key-{i:06}"))).collect()),
            ColumnBuffer::Int((0..n).map(|x| x % 13).collect()),
        ],
    )
    .unwrap();
    drop(conn);
    let sql = "SELECT count(*), count(DISTINCT s), sum(v), min(s), max(s) FROM \
               (SELECT s, sum(v) AS v FROM wide GROUP BY s) g";
    let base = run(&db, sql, streaming(1, 2048));
    for on in [true, false] {
        let mut tiny = dict(streaming(1, 2048), on);
        tiny.memory_budget = 256 * 1024;
        let (got, counters) = run_counting(&db, sql, tiny);
        assert_rows_eq(sql, &base, &got, &format!("dedup-crossing budgeted dict={on}"));
        assert!(
            counters.spilled_partitions > 0,
            "80k VARCHAR groups must exceed a 256kB budget (dict={on}): {counters:?}"
        );
    }
}
