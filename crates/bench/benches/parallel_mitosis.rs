//! Parallel-execution benches.
//!
//! * `fig2_mitosis` — the paper's Figure 2: the materialized engine's
//!   mitosis on SELECT MEDIAN(SQRT(i*2)) FROM tbl (parallelizable prefix,
//!   blocking median).
//! * `pipeline` — the streaming engine's generalized morsel parallelism
//!   on a grouped aggregation, a shape mitosis cannot parallelise at all:
//!   materialized runs it single-threaded regardless of `threads`, the
//!   streaming engine scales with per-thread partial hash aggregation.
//!
//! Run with `MONETLITE_BENCH_JSON=BENCH_pipeline.json cargo bench --bench
//! parallel_mitosis` to record results.

use criterion::{criterion_group, criterion_main, Criterion};
use monetlite::exec::{ExecMode, ExecOptions};
use monetlite_types::ColumnBuffer;

fn bench_mitosis(c: &mut Criterion) {
    let n = 1_000_000;
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE tbl (i INTEGER NOT NULL)").unwrap();
    conn.append("tbl", vec![ColumnBuffer::Int((0..n).map(|x| x % 65_536).collect())]).unwrap();
    let sql = "SELECT median(sqrt(i * 2)) FROM tbl";
    let mut g = c.benchmark_group("fig2_mitosis");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        conn.set_exec_options(ExecOptions {
            mode: ExecMode::Materialized,
            threads,
            mitosis_min_rows: 16 * 1024,
            ..monetlite_bench::uncached_opts()
        });
        g.bench_function(format!("median_sqrt_{threads}threads"), |b| {
            b.iter(|| conn.query(sql).unwrap())
        });
    }
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let n: i32 = 2_000_000;
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE facts (g INTEGER NOT NULL, v INTEGER NOT NULL, d DOUBLE)").unwrap();
    conn.append(
        "facts",
        vec![
            ColumnBuffer::Int((0..n).map(|x| x % 1_000).collect()),
            ColumnBuffer::Int((0..n).map(|x| x % 10_000).collect()),
            ColumnBuffer::Double((0..n).map(|x| x as f64 * 0.5).collect()),
        ],
    )
    .unwrap();
    // Grouped aggregation over a filtered scan: outside the mitosis
    // parallelizable prefix, squarely inside morsel parallelism.
    let sql = "SELECT g, count(*), sum(v), avg(d) FROM facts WHERE v < 9000 GROUP BY g";
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);

    conn.set_exec_options(ExecOptions {
        mode: ExecMode::Materialized,
        ..monetlite_bench::uncached_opts()
    });
    g.bench_function("grouped_agg_materialized", |b| b.iter(|| conn.query(sql).unwrap()));
    for threads in [1usize, 2, 4, 8] {
        conn.set_exec_options(ExecOptions {
            mode: ExecMode::Streaming,
            threads,
            ..monetlite_bench::uncached_opts()
        });
        g.bench_function(format!("grouped_agg_streaming_{threads}threads"), |b| {
            b.iter(|| conn.query(sql).unwrap())
        });
    }

    // A join-probe pipeline: build on the small side, parallel probe.
    conn.execute("CREATE TABLE dim (g INTEGER NOT NULL, w INTEGER NOT NULL)").unwrap();
    conn.append(
        "dim",
        vec![
            ColumnBuffer::Int((0..1_000).collect()),
            ColumnBuffer::Int((0..1_000).map(|x| x * 3).collect()),
        ],
    )
    .unwrap();
    let join_sql = "SELECT count(*), sum(w) FROM facts, dim WHERE facts.g = dim.g AND v < 5000";
    conn.set_exec_options(ExecOptions {
        mode: ExecMode::Materialized,
        ..monetlite_bench::uncached_opts()
    });
    g.bench_function("join_agg_materialized", |b| b.iter(|| conn.query(join_sql).unwrap()));
    for threads in [1usize, 4] {
        conn.set_exec_options(ExecOptions {
            mode: ExecMode::Streaming,
            threads,
            ..monetlite_bench::uncached_opts()
        });
        g.bench_function(format!("join_agg_streaming_{threads}threads"), |b| {
            b.iter(|| conn.query(join_sql).unwrap())
        });
    }

    // Limit early-exit: the materialized engine scans and filters all 2M
    // rows before slicing; the streaming engine stops after the first
    // few morsels — a structural win independent of core count.
    let limit_sql = "SELECT g, v FROM facts WHERE v < 5000 LIMIT 100";
    conn.set_exec_options(ExecOptions {
        mode: ExecMode::Materialized,
        ..monetlite_bench::uncached_opts()
    });
    g.bench_function("limit_scan_materialized", |b| b.iter(|| conn.query(limit_sql).unwrap()));
    conn.set_exec_options(ExecOptions {
        mode: ExecMode::Streaming,
        ..monetlite_bench::uncached_opts()
    });
    g.bench_function("limit_scan_streaming", |b| b.iter(|| conn.query(limit_sql).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_mitosis, bench_pipeline);
criterion_main!(benches);
