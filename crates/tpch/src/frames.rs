//! Hand-optimised dataframe-library implementations of TPC-H Q1–Q10.
//!
//! These are the "library scripts" of the paper's §4.2: the high-level
//! optimisations a database would do automatically — projection/filter
//! push-down, join ordering ("using the query plans that are executed by
//! VectorWise"), constant folding — are performed *by hand* here, so the
//! numbers represent the libraries' best case.

use crate::gen::TpchData;
use monetlite_frame::ops::{self, MaskOp};
use monetlite_frame::{AggOp, DataFrame, JoinHow, Session};
use monetlite_types::{Result, Value};

/// The dataset loaded as session frames (charged against the budget,
/// like `read.csv` results in R).
pub struct TpchFrames {
    /// lineitem frame.
    pub lineitem: DataFrame,
    /// orders frame.
    pub orders: DataFrame,
    /// customer frame.
    pub customer: DataFrame,
    /// supplier frame.
    pub supplier: DataFrame,
    /// part frame.
    pub part: DataFrame,
    /// partsupp frame.
    pub partsupp: DataFrame,
    /// nation frame.
    pub nation: DataFrame,
    /// region frame.
    pub region: DataFrame,
}

impl TpchFrames {
    /// Materialise all eight tables in the session.
    pub fn load(session: &Session, data: &TpchData) -> Result<TpchFrames> {
        let load = |t: &crate::gen::Table| -> Result<DataFrame> {
            session.frame(
                t.schema.fields().iter().map(|f| f.name.clone()).collect::<Vec<_>>(),
                t.cols.clone(),
            )
        };
        Ok(TpchFrames {
            lineitem: load(&data.lineitem)?,
            orders: load(&data.orders)?,
            customer: load(&data.customer)?,
            supplier: load(&data.supplier)?,
            part: load(&data.part)?,
            partsupp: load(&data.partsupp)?,
            nation: load(&data.nation)?,
            region: load(&data.region)?,
        })
    }
}

/// Run query `n` (1–10) and return its result frame.
pub fn run(n: usize, f: &TpchFrames) -> Result<DataFrame> {
    match n {
        1 => q1(f),
        2 => q2(f),
        3 => q3(f),
        4 => q4(f),
        5 => q5(f),
        6 => q6(f),
        7 => q7(f),
        8 => q8(f),
        9 => q9(f),
        10 => q10(f),
        _ => panic!("TPC-H queries 1-10 only"),
    }
}

/// Q1: pricing summary report (single-table scan + group).
pub fn q1(f: &TpchFrames) -> Result<DataFrame> {
    // Projection pushdown by hand: only the 7 needed columns.
    let li = f.lineitem.select(&[
        "l_returnflag",
        "l_linestatus",
        "l_quantity",
        "l_extendedprice",
        "l_discount",
        "l_tax",
        "l_shipdate",
    ])?;
    let mask = ops::mask_cmp(
        li.col("l_shipdate")?,
        MaskOp::Le,
        &Value::Date(monetlite_types::Date::parse("1998-09-02")?),
    );
    let li = li.filter(&mask)?;
    let price = ops::to_f64(li.col("l_extendedprice")?)?;
    let disc = ops::to_f64(li.col("l_discount")?)?;
    let tax = ops::to_f64(li.col("l_tax")?)?;
    let disc_price: Vec<f64> = price.iter().zip(&disc).map(|(&p, &d)| p * (1.0 - d)).collect();
    let charge = disc_price.iter().zip(&tax).map(|(&dp, &t)| dp * (1.0 + t)).collect();
    let li = li
        .with_column("disc_price", monetlite_types::ColumnBuffer::Double(disc_price))?
        .with_column("charge", monetlite_types::ColumnBuffer::Double(charge))?;
    li.group_by(
        &["l_returnflag", "l_linestatus"],
        &[
            ("l_quantity", AggOp::Sum, "sum_qty"),
            ("l_extendedprice", AggOp::Sum, "sum_base_price"),
            ("disc_price", AggOp::Sum, "sum_disc_price"),
            ("charge", AggOp::Sum, "sum_charge"),
            ("l_quantity", AggOp::Mean, "avg_qty"),
            ("l_extendedprice", AggOp::Mean, "avg_price"),
            ("l_discount", AggOp::Mean, "avg_disc"),
            ("l_quantity", AggOp::CountStar, "count_order"),
        ],
    )?
    .sort_by(&[("l_returnflag", false), ("l_linestatus", false)])
}

/// Q2: minimum-cost supplier (correlated min decorrelated by hand).
pub fn q2(f: &TpchFrames) -> Result<DataFrame> {
    // European suppliers only.
    let eu = f.region.filter(&ops::mask_cmp(
        f.region.col("r_name")?,
        MaskOp::Eq,
        &Value::Str("EUROPE".into()),
    ))?;
    let nations = f.nation.join(&eu, &["n_regionkey"], &["r_regionkey"], JoinHow::Semi)?;
    let supp = f
        .supplier
        .select(&[
            "s_suppkey",
            "s_nationkey",
            "s_acctbal",
            "s_name",
            "s_address",
            "s_phone",
            "s_comment",
        ])?
        .join(&nations, &["s_nationkey"], &["n_nationkey"], JoinHow::Semi)?;
    let ps = f.partsupp.select(&["ps_partkey", "ps_suppkey", "ps_supplycost"])?.join(
        &supp,
        &["ps_suppkey"],
        &["s_suppkey"],
        JoinHow::Semi,
    )?;
    // Per-part minimum cost among European suppliers.
    let mins = ps.group_by(&["ps_partkey"], &[("ps_supplycost", AggOp::Min, "min_cost")])?;
    // Parts of interest.
    let p = f.part.select(&["p_partkey", "p_mfgr", "p_size", "p_type"])?;
    let mask = ops::mask_and(
        &ops::mask_cmp(p.col("p_size")?, MaskOp::Eq, &Value::Int(15)),
        &ops::mask_ends_with(p.col("p_type")?, "BRASS"),
    );
    let p = p.filter(&mask)?;
    // Partsupp rows matching the per-part minimum.
    let ps2 = ps.join(&mins, &["ps_partkey"], &["ps_partkey"], JoinHow::Inner)?;
    let at_min = ops::mask_cmp_cols(ps2.col("ps_supplycost")?, MaskOp::Eq, ps2.col("min_cost")?);
    let ps2 = ps2.filter(&at_min)?;
    let hits = ps2.join(&p, &["ps_partkey"], &["p_partkey"], JoinHow::Inner)?;
    // Re-attach supplier and nation details.
    let supp_full = supp.join(
        &f.nation.select(&["n_nationkey", "n_name"])?,
        &["s_nationkey"],
        &["n_nationkey"],
        JoinHow::Inner,
    )?;
    let out = hits.join(&supp_full, &["ps_suppkey"], &["s_suppkey"], JoinHow::Inner)?;
    let out = out.with_column("p_partkey", out.col("ps_partkey")?.clone())?.select(&[
        "s_acctbal",
        "s_name",
        "n_name",
        "p_partkey",
        "p_mfgr",
        "s_address",
        "s_phone",
        "s_comment",
    ])?;
    out.sort_by(&[("s_acctbal", true), ("n_name", false), ("s_name", false), ("p_partkey", false)])?
        .head(100)
}

/// Q3: shipping priority (top unshipped orders).
pub fn q3(f: &TpchFrames) -> Result<DataFrame> {
    let cutoff = Value::Date(monetlite_types::Date::parse("1995-03-15")?);
    let cust = f.customer.select(&["c_custkey", "c_mktsegment"])?;
    let cust = cust.filter(&ops::mask_cmp(
        cust.col("c_mktsegment")?,
        MaskOp::Eq,
        &Value::Str("BUILDING".into()),
    ))?;
    let ord = f.orders.select(&["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"])?;
    let ord = ord.filter(&ops::mask_cmp(ord.col("o_orderdate")?, MaskOp::Lt, &cutoff))?;
    let ord = ord.join(&cust, &["o_custkey"], &["c_custkey"], JoinHow::Semi)?;
    let li = f.lineitem.select(&["l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"])?;
    let li = li.filter(&ops::mask_cmp(li.col("l_shipdate")?, MaskOp::Gt, &cutoff))?;
    let j = li.join(&ord, &["l_orderkey"], &["o_orderkey"], JoinHow::Inner)?;
    let price = ops::to_f64(j.col("l_extendedprice")?)?;
    let disc = ops::to_f64(j.col("l_discount")?)?;
    let j = j.with_column("rev", ops::zip_f64(&price, &disc, |p, d| p * (1.0 - d)))?;
    j.group_by(&["l_orderkey", "o_orderdate", "o_shippriority"], &[("rev", AggOp::Sum, "revenue")])?
        .sort_by(&[("revenue", true), ("o_orderdate", false)])?
        .head(10)
}

/// Q4: order priority checking (EXISTS → semi join by hand).
pub fn q4(f: &TpchFrames) -> Result<DataFrame> {
    let ord = f.orders.select(&["o_orderkey", "o_orderdate", "o_orderpriority"])?;
    let m = ops::mask_date_between(ord.col("o_orderdate")?, "1993-07-01", "1993-09-30")?;
    let ord = ord.filter(&m)?;
    let li = f.lineitem.select(&["l_orderkey", "l_commitdate", "l_receiptdate"])?;
    let late = ops::mask_cmp_cols(li.col("l_commitdate")?, MaskOp::Lt, li.col("l_receiptdate")?);
    let li = li.filter(&late)?;
    let ord = ord.join(&li, &["o_orderkey"], &["l_orderkey"], JoinHow::Semi)?;
    ord.group_by(&["o_orderpriority"], &[("o_orderkey", AggOp::CountStar, "order_count")])?
        .sort_by(&[("o_orderpriority", false)])
}

/// Q5: local supplier volume (6-way join, hand-ordered smallest-first).
pub fn q5(f: &TpchFrames) -> Result<DataFrame> {
    let asia = f.region.filter(&ops::mask_cmp(
        f.region.col("r_name")?,
        MaskOp::Eq,
        &Value::Str("ASIA".into()),
    ))?;
    let nations = f.nation.select(&["n_nationkey", "n_name", "n_regionkey"])?.join(
        &asia,
        &["n_regionkey"],
        &["r_regionkey"],
        JoinHow::Semi,
    )?;
    let ord = f.orders.select(&["o_orderkey", "o_custkey", "o_orderdate"])?;
    let m = ops::mask_date_between(ord.col("o_orderdate")?, "1994-01-01", "1994-12-31")?;
    let ord = ord.filter(&m)?;
    let cust = f.customer.select(&["c_custkey", "c_nationkey"])?;
    let oc = ord.join(&cust, &["o_custkey"], &["c_custkey"], JoinHow::Inner)?;
    let li = f.lineitem.select(&["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"])?;
    let j = li.join(&oc, &["l_orderkey"], &["o_orderkey"], JoinHow::Inner)?;
    let supp = f.supplier.select(&["s_suppkey", "s_nationkey"])?;
    // Both join conditions at once: supplier key AND same nation as the
    // customer (the "local supplier" condition).
    let j = j.join(
        &supp,
        &["l_suppkey", "c_nationkey"],
        &["s_suppkey", "s_nationkey"],
        JoinHow::Inner,
    )?;
    let j = j.join(&nations, &["c_nationkey"], &["n_nationkey"], JoinHow::Inner)?;
    let price = ops::to_f64(j.col("l_extendedprice")?)?;
    let disc = ops::to_f64(j.col("l_discount")?)?;
    let j = j.with_column("rev", ops::zip_f64(&price, &disc, |p, d| p * (1.0 - d)))?;
    j.group_by(&["n_name"], &[("rev", AggOp::Sum, "revenue")])?.sort_by(&[("revenue", true)])
}

/// Q6: forecasting revenue change (pure scan).
pub fn q6(f: &TpchFrames) -> Result<DataFrame> {
    let li = f.lineitem.select(&["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"])?;
    let m = ops::mask_date_between(li.col("l_shipdate")?, "1994-01-01", "1994-12-31")?;
    let m = ops::mask_and(
        &m,
        &ops::mask_cmp(
            li.col("l_discount")?,
            MaskOp::Ge,
            &Value::Decimal(monetlite_types::Decimal::parse("0.05")?),
        ),
    );
    let m = ops::mask_and(
        &m,
        &ops::mask_cmp(
            li.col("l_discount")?,
            MaskOp::Le,
            &Value::Decimal(monetlite_types::Decimal::parse("0.07")?),
        ),
    );
    let m = ops::mask_and(
        &m,
        &ops::mask_cmp(
            li.col("l_quantity")?,
            MaskOp::Lt,
            &Value::Decimal(monetlite_types::Decimal::parse("24")?),
        ),
    );
    let li = li.filter(&m)?;
    let price = ops::to_f64(li.col("l_extendedprice")?)?;
    let disc = ops::to_f64(li.col("l_discount")?)?;
    let li = li.with_column("rev", ops::zip_f64(&price, &disc, |p, d| p * d))?;
    li.group_by(&[], &[("rev", AggOp::Sum, "revenue")])
}

/// Q7: volume shipping between FRANCE and GERMANY.
pub fn q7(f: &TpchFrames) -> Result<DataFrame> {
    let two = f.nation.select(&["n_nationkey", "n_name"])?;
    let two = two.filter(&ops::mask_in(two.col("n_name")?, &["FRANCE", "GERMANY"]))?;
    let supp = f
        .supplier
        .select(&["s_suppkey", "s_nationkey"])?
        .join(&two, &["s_nationkey"], &["n_nationkey"], JoinHow::Inner)?
        .select(&["s_suppkey", "n_name"])?;
    let cust = f
        .customer
        .select(&["c_custkey", "c_nationkey"])?
        .join(&two, &["c_nationkey"], &["n_nationkey"], JoinHow::Inner)?
        .select(&["c_custkey", "n_name"])?;
    let li = f.lineitem.select(&[
        "l_orderkey",
        "l_suppkey",
        "l_shipdate",
        "l_extendedprice",
        "l_discount",
    ])?;
    let m = ops::mask_date_between(li.col("l_shipdate")?, "1995-01-01", "1996-12-31")?;
    let li = li.filter(&m)?;
    let li = li.join(&supp, &["l_suppkey"], &["s_suppkey"], JoinHow::Inner)?;
    let li = li.with_column("supp_nation", li.col("n_name")?.clone())?.select(&[
        "l_orderkey",
        "l_shipdate",
        "l_extendedprice",
        "l_discount",
        "supp_nation",
    ])?;
    let ord = f.orders.select(&["o_orderkey", "o_custkey"])?;
    let oc = ord.join(&cust, &["o_custkey"], &["c_custkey"], JoinHow::Inner)?;
    let oc = oc
        .with_column("cust_nation", oc.col("n_name")?.clone())?
        .select(&["o_orderkey", "cust_nation"])?;
    let j = li.join(&oc, &["l_orderkey"], &["o_orderkey"], JoinHow::Inner)?;
    // Keep only the FR→DE and DE→FR pairs.
    let fr_de = ops::mask_and(
        &ops::mask_cmp(j.col("supp_nation")?, MaskOp::Eq, &Value::Str("FRANCE".into())),
        &ops::mask_cmp(j.col("cust_nation")?, MaskOp::Eq, &Value::Str("GERMANY".into())),
    );
    let de_fr = ops::mask_and(
        &ops::mask_cmp(j.col("supp_nation")?, MaskOp::Eq, &Value::Str("GERMANY".into())),
        &ops::mask_cmp(j.col("cust_nation")?, MaskOp::Eq, &Value::Str("FRANCE".into())),
    );
    let j = j.filter(&ops::mask_or(&fr_de, &de_fr))?;
    let price = ops::to_f64(j.col("l_extendedprice")?)?;
    let disc = ops::to_f64(j.col("l_discount")?)?;
    let j = j
        .with_column("volume", ops::zip_f64(&price, &disc, |p, d| p * (1.0 - d)))?
        .with_column("l_year", ops::year(j.col("l_shipdate")?))?;
    j.group_by(&["supp_nation", "cust_nation", "l_year"], &[("volume", AggOp::Sum, "revenue")])?
        .sort_by(&[("supp_nation", false), ("cust_nation", false), ("l_year", false)])
}

/// Q8: national market share.
pub fn q8(f: &TpchFrames) -> Result<DataFrame> {
    let p = f.part.select(&["p_partkey", "p_type"])?;
    let p = p.filter(&ops::mask_cmp(
        p.col("p_type")?,
        MaskOp::Eq,
        &Value::Str("ECONOMY ANODIZED STEEL".into()),
    ))?;
    let li = f.lineitem.select(&[
        "l_orderkey",
        "l_partkey",
        "l_suppkey",
        "l_extendedprice",
        "l_discount",
    ])?;
    let li = li.join(&p, &["l_partkey"], &["p_partkey"], JoinHow::Semi)?;
    let ord = f.orders.select(&["o_orderkey", "o_custkey", "o_orderdate"])?;
    let m = ops::mask_date_between(ord.col("o_orderdate")?, "1995-01-01", "1996-12-31")?;
    let ord = ord.filter(&m)?;
    let j = li.join(&ord, &["l_orderkey"], &["o_orderkey"], JoinHow::Inner)?;
    // Customers in AMERICA.
    let america = f.region.filter(&ops::mask_cmp(
        f.region.col("r_name")?,
        MaskOp::Eq,
        &Value::Str("AMERICA".into()),
    ))?;
    let n1 = f.nation.select(&["n_nationkey", "n_regionkey"])?.join(
        &america,
        &["n_regionkey"],
        &["r_regionkey"],
        JoinHow::Semi,
    )?;
    let cust = f.customer.select(&["c_custkey", "c_nationkey"])?.join(
        &n1,
        &["c_nationkey"],
        &["n_nationkey"],
        JoinHow::Semi,
    )?;
    let j = j.join(&cust, &["o_custkey"], &["c_custkey"], JoinHow::Semi)?;
    // Supplier nation name.
    let supp = f.supplier.select(&["s_suppkey", "s_nationkey"])?;
    let j = j.join(&supp, &["l_suppkey"], &["s_suppkey"], JoinHow::Inner)?;
    let n2 = f.nation.select(&["n_nationkey", "n_name"])?;
    let j = j.join(&n2, &["s_nationkey"], &["n_nationkey"], JoinHow::Inner)?;
    let price = ops::to_f64(j.col("l_extendedprice")?)?;
    let disc = ops::to_f64(j.col("l_discount")?)?;
    let volume: Vec<f64> = price.iter().zip(&disc).map(|(&p, &d)| p * (1.0 - d)).collect();
    let brazil = ops::mask_cmp(j.col("n_name")?, MaskOp::Eq, &Value::Str("BRAZIL".into()));
    let bra_vol: Vec<f64> =
        volume.iter().zip(&brazil).map(|(&v, &b)| if b { v } else { 0.0 }).collect();
    let j = j
        .with_column("volume", monetlite_types::ColumnBuffer::Double(volume))?
        .with_column("bra_volume", monetlite_types::ColumnBuffer::Double(bra_vol))?
        .with_column("o_year", ops::year(j.col("o_orderdate")?))?;
    let g = j.group_by(
        &["o_year"],
        &[("bra_volume", AggOp::Sum, "bra"), ("volume", AggOp::Sum, "total")],
    )?;
    let bra = ops::to_f64(g.col("bra")?)?;
    let total = ops::to_f64(g.col("total")?)?;
    let g = g.with_column("mkt_share", ops::zip_f64(&bra, &total, |b, t| b / t))?;
    g.select(&["o_year", "mkt_share"])?.sort_by(&[("o_year", false)])
}

/// Q9: product-type profit measure.
pub fn q9(f: &TpchFrames) -> Result<DataFrame> {
    let p = f.part.select(&["p_partkey", "p_name"])?;
    let p = p.filter(&ops::mask_contains(p.col("p_name")?, "green"))?;
    let li = f.lineitem.select(&[
        "l_orderkey",
        "l_partkey",
        "l_suppkey",
        "l_quantity",
        "l_extendedprice",
        "l_discount",
    ])?;
    let li = li.join(&p, &["l_partkey"], &["p_partkey"], JoinHow::Semi)?;
    let ps = f.partsupp.select(&["ps_partkey", "ps_suppkey", "ps_supplycost"])?;
    let j =
        li.join(&ps, &["l_partkey", "l_suppkey"], &["ps_partkey", "ps_suppkey"], JoinHow::Inner)?;
    let supp = f.supplier.select(&["s_suppkey", "s_nationkey"])?;
    let j = j.join(&supp, &["l_suppkey"], &["s_suppkey"], JoinHow::Inner)?;
    let nat = f.nation.select(&["n_nationkey", "n_name"])?;
    let j = j.join(&nat, &["s_nationkey"], &["n_nationkey"], JoinHow::Inner)?;
    let ord = f.orders.select(&["o_orderkey", "o_orderdate"])?;
    let j = j.join(&ord, &["l_orderkey"], &["o_orderkey"], JoinHow::Inner)?;
    let price = ops::to_f64(j.col("l_extendedprice")?)?;
    let disc = ops::to_f64(j.col("l_discount")?)?;
    let cost = ops::to_f64(j.col("ps_supplycost")?)?;
    let qty = ops::to_f64(j.col("l_quantity")?)?;
    let amount: Vec<f64> =
        (0..price.len()).map(|i| price[i] * (1.0 - disc[i]) - cost[i] * qty[i]).collect();
    let j = j
        .with_column("amount", monetlite_types::ColumnBuffer::Double(amount))?
        .with_column("o_year", ops::year(j.col("o_orderdate")?))?
        .with_column("nation", j.col("n_name")?.clone())?;
    j.group_by(&["nation", "o_year"], &[("amount", AggOp::Sum, "sum_profit")])?
        .sort_by(&[("nation", false), ("o_year", true)])
}

/// Q10: returned-item reporting.
pub fn q10(f: &TpchFrames) -> Result<DataFrame> {
    let ord = f.orders.select(&["o_orderkey", "o_custkey", "o_orderdate"])?;
    let m = ops::mask_date_between(ord.col("o_orderdate")?, "1993-10-01", "1993-12-31")?;
    let ord = ord.filter(&m)?;
    let li = f.lineitem.select(&["l_orderkey", "l_returnflag", "l_extendedprice", "l_discount"])?;
    let li =
        li.filter(&ops::mask_cmp(li.col("l_returnflag")?, MaskOp::Eq, &Value::Str("R".into())))?;
    let j = li.join(&ord, &["l_orderkey"], &["o_orderkey"], JoinHow::Inner)?;
    let cust = f.customer.select(&[
        "c_custkey",
        "c_name",
        "c_acctbal",
        "c_phone",
        "c_nationkey",
        "c_address",
        "c_comment",
    ])?;
    let j = j.join(&cust, &["o_custkey"], &["c_custkey"], JoinHow::Inner)?;
    let nat = f.nation.select(&["n_nationkey", "n_name"])?;
    let j = j.join(&nat, &["c_nationkey"], &["n_nationkey"], JoinHow::Inner)?;
    let price = ops::to_f64(j.col("l_extendedprice")?)?;
    let disc = ops::to_f64(j.col("l_discount")?)?;
    let j = j
        .with_column("rev", ops::zip_f64(&price, &disc, |p, d| p * (1.0 - d)))?
        .with_column("c_custkey", j.col("o_custkey")?.clone())?;
    j.group_by(
        &["c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address", "c_comment"],
        &[("rev", AggOp::Sum, "revenue")],
    )?
    .sort_by(&[("revenue", true)])?
    .head(20)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn all_queries_run_on_tiny_data() {
        let data = generate(0.002, 11);
        let session = Session::unlimited();
        let frames = TpchFrames::load(&session, &data).unwrap();
        for n in 1..=10 {
            let r = run(n, &frames);
            assert!(r.is_ok(), "frame Q{n} failed: {:?}", r.err());
        }
    }

    #[test]
    fn q1_has_expected_shape() {
        let data = generate(0.002, 11);
        let session = Session::unlimited();
        let frames = TpchFrames::load(&session, &data).unwrap();
        let r = q1(&frames).unwrap();
        assert!(r.rows() >= 3, "expect at least 3 flag/status groups");
        assert!(r.names().contains(&"sum_disc_price".to_string()));
    }

    #[test]
    fn oom_surfaces_at_load_or_query() {
        let data = generate(0.002, 11);
        let tight = Session::with_budget(100 * 1024);
        let r = TpchFrames::load(&tight, &data);
        // Either loading or the first join must exhaust the budget.
        let failed = match r {
            Err(monetlite_types::MlError::OutOfMemory { .. }) => true,
            Err(e) => panic!("unexpected error {e:?}"),
            Ok(frames) => run(5, &frames).is_err(),
        };
        assert!(failed, "tight budget must OOM somewhere");
    }
}
