//! Simulation of MonetDB's memory-mapped-file memory management (paper
//! §3.1 *Memory Management*).
//!
//! "MonetDB does not use a traditional buffer pool ... Instead, it relies
//! on the operating system ... using memory-mapped files to store columns
//! persistently on disk. The operating system then loads pages into memory
//! as they are used and evicts pages from memory when they are no longer
//! being actively used. This model allows it to keep hot columns loaded in
//! memory, while columns that are not frequently touched are off-loaded to
//! disk."
//!
//! [`Vmem`] plays the role of the OS: file-backed columns register their
//! resident slot here; every touch updates a logical clock; when resident
//! bytes exceed the configured budget the coldest columns are evicted
//! (their `Arc<Bat>` dropped — memory is truly released once in-flight
//! readers finish). Evicted columns transparently reload from their
//! backing file on the next touch. In-memory databases simply never
//! register, so nothing is ever evicted — matching the paper's in-memory
//! mode where "all stored data will be discarded" on shutdown.

use crate::bat::Bat;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, Weak};

/// The shared residency slot of one column: `None` = off-loaded to disk.
pub type ResidentSlot = Mutex<Option<Arc<Bat>>>;

/// Counters describing paging behaviour; exposed so benches can report
/// load/eviction traffic (the SF10 "swapping" effect of Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmemStats {
    /// Column loads from backing files.
    pub loads: u64,
    /// Column evictions under memory pressure.
    pub evictions: u64,
    /// Total bytes read from backing files.
    pub bytes_loaded: u64,
    /// Bytes currently resident (registered columns only).
    pub resident_bytes: usize,
}

struct VEntry {
    slot: Weak<ResidentSlot>,
    bytes: usize,
    last_touch: u64,
    resident: bool,
}

struct VmemInner {
    entries: HashMap<u64, VEntry>,
    clock: u64,
    resident_bytes: usize,
    stats: VmemStats,
}

/// The paging manager. One per [`crate::store::Store`].
pub struct Vmem {
    budget: usize,
    inner: Mutex<VmemInner>,
}

impl Vmem {
    /// Create with a resident-byte budget (`usize::MAX` = unlimited).
    pub fn new(budget: usize) -> Vmem {
        Vmem {
            budget,
            inner: Mutex::new(VmemInner {
                entries: HashMap::new(),
                clock: 0,
                resident_bytes: 0,
                stats: VmemStats::default(),
            }),
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Budget bytes not currently occupied by resident columns — the
    /// memory the execution engine may devote to transient operator state
    /// (pipeline-breaker hash tables, sort buffers) before it must spill
    /// to disk. Unlimited budgets report unlimited headroom.
    pub fn headroom(&self) -> usize {
        if self.budget == usize::MAX {
            return usize::MAX;
        }
        self.budget.saturating_sub(self.inner.lock().resident_bytes)
    }

    /// Record that column `id` became resident with `bytes` bytes in
    /// `slot`, then enforce the budget by evicting the coldest columns.
    pub fn touch(&self, id: u64, slot: &Arc<ResidentSlot>, bytes: usize, loaded_from_disk: bool) {
        let mut g = self.inner.lock();
        g.clock += 1;
        let clock = g.clock;
        let e = g.entries.entry(id).or_insert(VEntry {
            slot: Arc::downgrade(slot),
            bytes,
            last_touch: 0,
            resident: false,
        });
        if !e.resident {
            e.resident = true;
            g.resident_bytes += bytes;
        }
        let e = g.entries.get_mut(&id).unwrap();
        e.last_touch = clock;
        e.bytes = bytes;
        if loaded_from_disk {
            g.stats.loads += 1;
            g.stats.bytes_loaded += bytes as u64;
        }
        self.enforce_budget(&mut g, id);
    }

    /// Deregister a column (its backing entry was replaced or dropped).
    pub fn forget(&self, id: u64) {
        let mut g = self.inner.lock();
        if let Some(e) = g.entries.remove(&id) {
            if e.resident {
                g.resident_bytes -= e.bytes;
            }
        }
    }

    /// Current paging statistics.
    pub fn stats(&self) -> VmemStats {
        let g = self.inner.lock();
        VmemStats { resident_bytes: g.resident_bytes, ..g.stats }
    }

    /// Reset counters (between bench phases).
    pub fn reset_stats(&self) {
        let mut g = self.inner.lock();
        g.stats = VmemStats::default();
    }

    fn enforce_budget(&self, g: &mut VmemInner, just_touched: u64) {
        if g.resident_bytes <= self.budget {
            return;
        }
        // Evict coldest-first until under budget; never evict the column
        // being touched (it is in active use).
        let mut order: Vec<(u64, u64)> = g
            .entries
            .iter()
            .filter(|(id, e)| **id != just_touched && e.resident)
            .map(|(id, e)| (e.last_touch, *id))
            .collect();
        order.sort_unstable();
        for (_, id) in order {
            if g.resident_bytes <= self.budget {
                break;
            }
            let e = g.entries.get_mut(&id).unwrap();
            match e.slot.upgrade() {
                Some(slot) => {
                    *slot.lock() = None;
                    e.resident = false;
                    g.resident_bytes -= e.bytes;
                    g.stats.evictions += 1;
                }
                None => {
                    // The column object is gone entirely.
                    let bytes = e.bytes;
                    g.entries.remove(&id);
                    g.resident_bytes -= bytes;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot_with(bytes: usize) -> Arc<ResidentSlot> {
        Arc::new(Mutex::new(Some(Arc::new(Bat::Int(vec![0; bytes / 4])))))
    }

    #[test]
    fn under_budget_nothing_evicted() {
        let vm = Vmem::new(1000);
        let a = slot_with(400);
        let b = slot_with(400);
        vm.touch(1, &a, 400, true);
        vm.touch(2, &b, 400, true);
        assert!(a.lock().is_some());
        assert!(b.lock().is_some());
        let s = vm.stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.resident_bytes, 800);
    }

    #[test]
    fn coldest_column_evicted_first() {
        let vm = Vmem::new(1000);
        let a = slot_with(600);
        let b = slot_with(600);
        vm.touch(1, &a, 600, true);
        vm.touch(2, &b, 600, true); // over budget: evict 1 (colder)
        assert!(a.lock().is_none(), "cold column should be off-loaded");
        assert!(b.lock().is_some(), "hot column stays resident");
        assert_eq!(vm.stats().evictions, 1);
        assert_eq!(vm.stats().resident_bytes, 600);
    }

    #[test]
    fn touched_column_never_self_evicts() {
        let vm = Vmem::new(100);
        let a = slot_with(500);
        vm.touch(1, &a, 500, true);
        // Single column larger than budget stays resident (the OS would
        // thrash, but the active mapping can't be dropped mid-use).
        assert!(a.lock().is_some());
    }

    #[test]
    fn retouching_keeps_column_hot() {
        let vm = Vmem::new(1000);
        let a = slot_with(600);
        let b = slot_with(600);
        vm.touch(1, &a, 600, true);
        vm.touch(2, &b, 600, true); // evicts a
        *a.lock() = Some(Arc::new(Bat::Int(vec![0; 150])));
        vm.touch(1, &a, 600, true); // reload a, evicts b
        assert!(a.lock().is_some());
        assert!(b.lock().is_none());
        assert_eq!(vm.stats().loads, 3);
    }

    #[test]
    fn forget_releases_accounting() {
        let vm = Vmem::new(1000);
        let a = slot_with(600);
        vm.touch(1, &a, 600, false);
        assert_eq!(vm.stats().resident_bytes, 600);
        vm.forget(1);
        assert_eq!(vm.stats().resident_bytes, 0);
    }

    #[test]
    fn dead_slots_are_garbage_collected() {
        let vm = Vmem::new(500);
        {
            let a = slot_with(400);
            vm.touch(1, &a, 400, false);
        } // a dropped entirely
        let b = slot_with(400);
        vm.touch(2, &b, 400, false);
        assert!(b.lock().is_some());
        assert_eq!(vm.stats().resident_bytes, 400);
    }
}
