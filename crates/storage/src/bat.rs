//! BAT-style columns: tightly packed typed arrays (paper §3.1).
//!
//! "Every column is stored either in-memory or on-disk as a tightly packed
//! array. Row-numbers for each value are never explicitly stored. Instead,
//! they are implicitly derived from their position in the tightly packed
//! array."
//!
//! [`Bat`] is the engine-internal column. Fixed-width types are plain
//! `Vec<T>` with in-domain NULL sentinels; VARCHAR is an offsets array over
//! a [`StringHeap`]. Conversion to and from the host interchange format
//! ([`ColumnBuffer`]) happens only at the embedding boundary.

use crate::heap::{StringHeap, NULL_OFFSET};
use monetlite_types::nulls::{NULL_I32, NULL_I64, NULL_I8};
use monetlite_types::{ColumnBuffer, Date, Decimal, LogicalType, MlError, Result, Value};

/// A single engine-internal column.
#[derive(Debug, Clone)]
pub enum Bat {
    /// BOOLEAN as i8 (NULL = i8::MIN).
    Bool(Vec<i8>),
    /// INTEGER (NULL = i32::MIN).
    Int(Vec<i32>),
    /// BIGINT (NULL = i64::MIN).
    Bigint(Vec<i64>),
    /// DOUBLE (NULL = NaN).
    Double(Vec<f64>),
    /// DECIMAL as scaled i64 (NULL = i64::MIN).
    Decimal {
        /// Scaled raw values.
        data: Vec<i64>,
        /// Fractional digits.
        scale: u8,
    },
    /// VARCHAR: offsets into a string heap (offset 0 = NULL).
    Varchar {
        /// Per-row heap offsets.
        offsets: Vec<u32>,
        /// The shared value heap (with duplicate elimination).
        heap: StringHeap,
    },
    /// DATE as days since epoch (NULL = i32::MIN).
    Date(Vec<i32>),
}

impl Bat {
    /// Empty column of a logical type.
    pub fn new(ty: LogicalType) -> Bat {
        Self::with_capacity(ty, 0)
    }

    /// Empty column with reserved capacity.
    pub fn with_capacity(ty: LogicalType, cap: usize) -> Bat {
        match ty {
            LogicalType::Bool => Bat::Bool(Vec::with_capacity(cap)),
            LogicalType::Int => Bat::Int(Vec::with_capacity(cap)),
            LogicalType::Bigint => Bat::Bigint(Vec::with_capacity(cap)),
            LogicalType::Double => Bat::Double(Vec::with_capacity(cap)),
            LogicalType::Decimal { scale, .. } => {
                Bat::Decimal { data: Vec::with_capacity(cap), scale }
            }
            LogicalType::Varchar => {
                Bat::Varchar { offsets: Vec::with_capacity(cap), heap: StringHeap::new() }
            }
            LogicalType::Date => Bat::Date(Vec::with_capacity(cap)),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Bat::Bool(v) => v.len(),
            Bat::Int(v) => v.len(),
            Bat::Bigint(v) => v.len(),
            Bat::Double(v) => v.len(),
            Bat::Decimal { data, .. } => data.len(),
            Bat::Varchar { offsets, .. } => offsets.len(),
            Bat::Date(v) => v.len(),
        }
    }

    /// True for zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical type.
    pub fn logical_type(&self) -> LogicalType {
        match self {
            Bat::Bool(_) => LogicalType::Bool,
            Bat::Int(_) => LogicalType::Int,
            Bat::Bigint(_) => LogicalType::Bigint,
            Bat::Double(_) => LogicalType::Double,
            Bat::Decimal { scale, .. } => LogicalType::Decimal { width: 18, scale: *scale },
            Bat::Varchar { .. } => LogicalType::Varchar,
            Bat::Date(_) => LogicalType::Date,
        }
    }

    /// Approximate resident size in bytes (array + heap), the quantity the
    /// vmem budget accounts.
    pub fn size_bytes(&self) -> usize {
        match self {
            Bat::Bool(v) => v.len(),
            Bat::Int(v) | Bat::Date(v) => v.len() * 4,
            Bat::Bigint(v) => v.len() * 8,
            Bat::Double(v) => v.len() * 8,
            Bat::Decimal { data, .. } => data.len() * 8,
            Bat::Varchar { offsets, heap } => offsets.len() * 4 + heap.size_bytes(),
        }
    }

    /// Approximate *resident* size in bytes, including transient heap
    /// structures ([`StringHeap::mem_bytes`]) that the persisted image
    /// omits. This is the quantity execution-time memory budgets (spill
    /// decisions) account; [`Bat::size_bytes`] remains the vmem/persisted
    /// measure.
    pub fn mem_bytes(&self) -> usize {
        match self {
            Bat::Varchar { offsets, heap } => offsets.len() * 4 + heap.mem_bytes(),
            other => other.size_bytes(),
        }
    }

    /// Row `i` as a dynamic [`Value`] (cold path: spot checks, wire
    /// protocol, row-store bridge).
    pub fn get(&self, i: usize) -> Value {
        match self {
            Bat::Bool(v) => {
                if v[i] == NULL_I8 {
                    Value::Null
                } else {
                    Value::Bool(v[i] != 0)
                }
            }
            Bat::Int(v) => {
                if v[i] == NULL_I32 {
                    Value::Null
                } else {
                    Value::Int(v[i])
                }
            }
            Bat::Bigint(v) => {
                if v[i] == NULL_I64 {
                    Value::Null
                } else {
                    Value::Bigint(v[i])
                }
            }
            Bat::Double(v) => {
                if v[i].is_nan() {
                    Value::Null
                } else {
                    Value::Double(v[i])
                }
            }
            Bat::Decimal { data, scale } => {
                if data[i] == NULL_I64 {
                    Value::Null
                } else {
                    Value::Decimal(Decimal::new(data[i], *scale))
                }
            }
            Bat::Varchar { offsets, heap } => {
                if offsets[i] == NULL_OFFSET {
                    Value::Null
                } else {
                    Value::Str(heap.get(offsets[i]).to_string())
                }
            }
            Bat::Date(v) => {
                if v[i] == NULL_I32 {
                    Value::Null
                } else {
                    Value::Date(Date(v[i]))
                }
            }
        }
    }

    /// Borrowed string at row `i` (`None` for NULL). Only valid on Varchar.
    #[inline]
    pub fn str_at(&self, i: usize) -> Option<&str> {
        match self {
            Bat::Varchar { offsets, heap } => {
                if offsets[i] == NULL_OFFSET {
                    None
                } else {
                    Some(heap.get(offsets[i]))
                }
            }
            _ => panic!("str_at on non-varchar column"),
        }
    }

    /// True iff row `i` is NULL.
    #[inline]
    pub fn is_null_at(&self, i: usize) -> bool {
        match self {
            Bat::Bool(v) => v[i] == NULL_I8,
            Bat::Int(v) | Bat::Date(v) => v[i] == NULL_I32,
            Bat::Bigint(v) => v[i] == NULL_I64,
            Bat::Double(v) => v[i].is_nan(),
            Bat::Decimal { data, .. } => data[i] == NULL_I64,
            Bat::Varchar { offsets, .. } => offsets[i] == NULL_OFFSET,
        }
    }

    /// Append a dynamic value (cold path).
    pub fn push(&mut self, v: &Value) -> Result<()> {
        match (&mut *self, v) {
            (Bat::Bool(c), Value::Bool(b)) => c.push(*b as i8),
            (Bat::Bool(c), Value::Null) => c.push(NULL_I8),
            (Bat::Int(c), Value::Int(x)) => c.push(*x),
            (Bat::Int(c), Value::Null) => c.push(NULL_I32),
            (Bat::Bigint(c), Value::Bigint(x)) => c.push(*x),
            (Bat::Bigint(c), Value::Int(x)) => c.push(*x as i64),
            (Bat::Bigint(c), Value::Null) => c.push(NULL_I64),
            (Bat::Double(c), Value::Double(x)) => c.push(*x),
            (Bat::Double(c), Value::Int(x)) => c.push(*x as f64),
            (Bat::Double(c), Value::Bigint(x)) => c.push(*x as f64),
            (Bat::Double(c), Value::Decimal(d)) => c.push(d.to_f64()),
            (Bat::Double(c), Value::Null) => c.push(f64::NAN),
            (Bat::Decimal { data, scale }, Value::Decimal(d)) => data.push(d.rescale(*scale)?.raw),
            (Bat::Decimal { data, scale }, Value::Int(x)) => {
                data.push(Decimal::new(*x as i64, 0).rescale(*scale)?.raw)
            }
            (Bat::Decimal { data, .. }, Value::Null) => data.push(NULL_I64),
            (Bat::Varchar { offsets, heap }, Value::Str(s)) => offsets.push(heap.add(s)),
            (Bat::Varchar { offsets, .. }, Value::Null) => offsets.push(NULL_OFFSET),
            (Bat::Date(c), Value::Date(d)) => c.push(d.0),
            (Bat::Date(c), Value::Null) => c.push(NULL_I32),
            (b, v) => {
                return Err(MlError::TypeMismatch(format!(
                    "cannot append {v:?} to {} column",
                    b.logical_type()
                )))
            }
        }
        Ok(())
    }

    /// Bulk-convert a host buffer into a BAT. This is the engine side of
    /// `monetdb_append`: a single pass, no per-row statement parsing.
    pub fn from_buffer(buf: &ColumnBuffer) -> Bat {
        match buf {
            ColumnBuffer::Bool(v) => Bat::Bool(v.clone()),
            ColumnBuffer::Int(v) => Bat::Int(v.clone()),
            ColumnBuffer::Bigint(v) => Bat::Bigint(v.clone()),
            ColumnBuffer::Double(v) => Bat::Double(v.clone()),
            ColumnBuffer::Decimal { data, scale } => {
                Bat::Decimal { data: data.clone(), scale: *scale }
            }
            ColumnBuffer::Varchar(v) => {
                let mut heap = StringHeap::new();
                let offsets = v
                    .iter()
                    .map(|s| match s {
                        None => NULL_OFFSET,
                        Some(s) => heap.add(s),
                    })
                    .collect();
                Bat::Varchar { offsets, heap }
            }
            ColumnBuffer::Date(v) => Bat::Date(v.clone()),
        }
    }

    /// Export to a host buffer; `sel` restricts and orders rows.
    ///
    /// For fixed-width types with `sel == None` this is the eager-copy
    /// conversion path; the zero-copy path in the core crate shares the
    /// backing `Arc<Bat>` instead and never calls this.
    pub fn to_buffer(&self, sel: Option<&[u32]>) -> ColumnBuffer {
        match sel {
            None => {
                match self {
                    Bat::Bool(v) => ColumnBuffer::Bool(v.clone()),
                    Bat::Int(v) => ColumnBuffer::Int(v.clone()),
                    Bat::Bigint(v) => ColumnBuffer::Bigint(v.clone()),
                    Bat::Double(v) => ColumnBuffer::Double(v.clone()),
                    Bat::Decimal { data, scale } => {
                        ColumnBuffer::Decimal { data: data.clone(), scale: *scale }
                    }
                    Bat::Varchar { offsets, heap } => ColumnBuffer::Varchar(
                        offsets
                            .iter()
                            .map(|&o| {
                                if o == NULL_OFFSET {
                                    None
                                } else {
                                    Some(heap.get(o).to_string())
                                }
                            })
                            .collect(),
                    ),
                    Bat::Date(v) => ColumnBuffer::Date(v.clone()),
                }
            }
            Some(sel) => match self {
                Bat::Bool(v) => ColumnBuffer::Bool(sel.iter().map(|&i| v[i as usize]).collect()),
                Bat::Int(v) => ColumnBuffer::Int(sel.iter().map(|&i| v[i as usize]).collect()),
                Bat::Bigint(v) => {
                    ColumnBuffer::Bigint(sel.iter().map(|&i| v[i as usize]).collect())
                }
                Bat::Double(v) => {
                    ColumnBuffer::Double(sel.iter().map(|&i| v[i as usize]).collect())
                }
                Bat::Decimal { data, scale } => ColumnBuffer::Decimal {
                    data: sel.iter().map(|&i| data[i as usize]).collect(),
                    scale: *scale,
                },
                Bat::Varchar { offsets, heap } => ColumnBuffer::Varchar(
                    sel.iter()
                        .map(|&i| {
                            let o = offsets[i as usize];
                            if o == NULL_OFFSET {
                                None
                            } else {
                                Some(heap.get(o).to_string())
                            }
                        })
                        .collect(),
                ),
                Bat::Date(v) => ColumnBuffer::Date(sel.iter().map(|&i| v[i as usize]).collect()),
            },
        }
    }

    /// Append all rows of another BAT (string values are re-interned into
    /// this heap so duplicate elimination keeps working across appends).
    pub fn append_bat(&mut self, other: &Bat) -> Result<()> {
        match (&mut *self, other) {
            (Bat::Bool(a), Bat::Bool(b)) => a.extend_from_slice(b),
            (Bat::Int(a), Bat::Int(b)) => a.extend_from_slice(b),
            (Bat::Bigint(a), Bat::Bigint(b)) => a.extend_from_slice(b),
            (Bat::Double(a), Bat::Double(b)) => a.extend_from_slice(b),
            (Bat::Decimal { data: a, scale: sa }, Bat::Decimal { data: b, scale: sb }) => {
                if sa == sb {
                    a.extend_from_slice(b);
                } else {
                    for &raw in b {
                        if raw == NULL_I64 {
                            a.push(NULL_I64);
                        } else {
                            a.push(Decimal::new(raw, *sb).rescale(*sa)?.raw);
                        }
                    }
                }
            }
            (Bat::Varchar { offsets, heap }, Bat::Varchar { offsets: bo, heap: bh }) => {
                for &o in bo {
                    if o == NULL_OFFSET {
                        offsets.push(NULL_OFFSET);
                    } else {
                        offsets.push(heap.add(bh.get(o)));
                    }
                }
            }
            (Bat::Date(a), Bat::Date(b)) => a.extend_from_slice(b),
            (a, b) => {
                return Err(MlError::TypeMismatch(format!(
                    "cannot append {} BAT to {} BAT",
                    b.logical_type(),
                    a.logical_type()
                )))
            }
        }
        Ok(())
    }

    /// Gather rows by position into a new BAT (the `fetch`/projection
    /// kernel's materialisation step). Varchar gathers share the heap via
    /// clone, keeping the cost proportional to the selection.
    pub fn take(&self, sel: &[u32]) -> Bat {
        match self {
            Bat::Bool(v) => Bat::Bool(sel.iter().map(|&i| v[i as usize]).collect()),
            Bat::Int(v) => Bat::Int(sel.iter().map(|&i| v[i as usize]).collect()),
            Bat::Bigint(v) => Bat::Bigint(sel.iter().map(|&i| v[i as usize]).collect()),
            Bat::Double(v) => Bat::Double(sel.iter().map(|&i| v[i as usize]).collect()),
            Bat::Decimal { data, scale } => Bat::Decimal {
                data: sel.iter().map(|&i| data[i as usize]).collect(),
                scale: *scale,
            },
            Bat::Varchar { offsets, heap } => Bat::Varchar {
                offsets: sel.iter().map(|&i| offsets[i as usize]).collect(),
                heap: heap.clone(),
            },
            Bat::Date(v) => Bat::Date(sel.iter().map(|&i| v[i as usize]).collect()),
        }
    }

    /// Minimum and maximum of the non-NULL rows in `[lo, hi)`, in the
    /// order-preserving `i64` key domain of [`crate::index::key_at`] (the
    /// zonemap builder's one-pass summary). `None` when every row in the
    /// range is NULL, or for VARCHAR (strings only hash — no
    /// order-preserving key domain).
    pub fn key_range(&self, lo: usize, hi: usize) -> Option<(i64, i64)> {
        if matches!(self, Bat::Varchar { .. }) {
            return None;
        }
        let mut mn = i64::MAX;
        let mut mx = i64::MIN;
        let mut any = false;
        for i in lo..hi.min(self.len()) {
            if self.is_null_at(i) {
                continue;
            }
            let k = crate::index::key_at(self, i);
            mn = mn.min(k);
            mx = mx.max(k);
            any = true;
        }
        any.then_some((mn, mx))
    }

    /// Count of NULL rows.
    pub fn null_count(&self) -> usize {
        match self {
            Bat::Bool(v) => v.iter().filter(|&&x| x == NULL_I8).count(),
            Bat::Int(v) | Bat::Date(v) => v.iter().filter(|&&x| x == NULL_I32).count(),
            Bat::Bigint(v) => v.iter().filter(|&&x| x == NULL_I64).count(),
            Bat::Double(v) => v.iter().filter(|x| x.is_nan()).count(),
            Bat::Decimal { data, .. } => data.iter().filter(|&&x| x == NULL_I64).count(),
            Bat::Varchar { offsets, .. } => offsets.iter().filter(|&&o| o == NULL_OFFSET).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_to_buffer_roundtrip_fixed() {
        let buf = ColumnBuffer::Int(vec![1, NULL_I32, 3]);
        let bat = Bat::from_buffer(&buf);
        assert_eq!(bat.len(), 3);
        assert_eq!(bat.null_count(), 1);
        assert_eq!(bat.to_buffer(None), buf);
    }

    #[test]
    fn from_to_buffer_roundtrip_strings() {
        let buf =
            ColumnBuffer::Varchar(vec![Some("a".into()), None, Some("b".into()), Some("a".into())]);
        let bat = Bat::from_buffer(&buf);
        assert_eq!(bat.null_count(), 1);
        assert_eq!(bat.str_at(0), Some("a"));
        assert_eq!(bat.str_at(1), None);
        // dedup collapsed the two "a"s
        if let Bat::Varchar { offsets, .. } = &bat {
            assert_eq!(offsets[0], offsets[3]);
        }
        assert_eq!(bat.to_buffer(None), buf);
    }

    #[test]
    fn selective_export() {
        let bat = Bat::from_buffer(&ColumnBuffer::Int(vec![10, 20, 30, 40]));
        assert_eq!(bat.to_buffer(Some(&[2, 0])), ColumnBuffer::Int(vec![30, 10]));
    }

    #[test]
    fn take_strings_keeps_heap_valid() {
        let bat = Bat::from_buffer(&ColumnBuffer::Varchar(vec![
            Some("x".into()),
            Some("y".into()),
            None,
        ]));
        let t = bat.take(&[1, 2]);
        assert_eq!(t.str_at(0), Some("y"));
        assert_eq!(t.str_at(1), None);
    }

    #[test]
    fn append_bat_reinterns_strings() {
        let mut a = Bat::from_buffer(&ColumnBuffer::Varchar(vec![Some("shared".into())]));
        let b = Bat::from_buffer(&ColumnBuffer::Varchar(vec![Some("shared".into()), None]));
        a.append_bat(&b).unwrap();
        assert_eq!(a.len(), 3);
        if let Bat::Varchar { offsets, .. } = &a {
            assert_eq!(offsets[0], offsets[1], "re-interning should dedup");
            assert_eq!(offsets[2], NULL_OFFSET);
        }
    }

    #[test]
    fn append_decimal_mixed_scale() {
        let mut a = Bat::Decimal { data: vec![100], scale: 2 };
        a.append_bat(&Bat::Decimal { data: vec![7], scale: 0 }).unwrap();
        assert_eq!(a.get(1), Value::Decimal(Decimal::new(700, 2)));
    }

    #[test]
    fn push_values() {
        let mut b = Bat::new(LogicalType::Date);
        b.push(&Value::Date(Date(100))).unwrap();
        b.push(&Value::Null).unwrap();
        assert_eq!(b.get(0), Value::Date(Date(100)));
        assert!(b.is_null_at(1));
        assert!(b.push(&Value::Int(5)).is_err());
    }

    #[test]
    fn type_mismatch_append_errors() {
        let mut a = Bat::new(LogicalType::Int);
        assert!(a.append_bat(&Bat::new(LogicalType::Double)).is_err());
    }

    proptest! {
        #[test]
        fn prop_buffer_roundtrip_int(v in proptest::collection::vec(any::<i32>(), 0..100)) {
            let buf = ColumnBuffer::Int(v);
            let bat = Bat::from_buffer(&buf);
            prop_assert_eq!(bat.to_buffer(None), buf);
        }

        #[test]
        fn prop_take_matches_get(v in proptest::collection::vec(-1000i64..1000, 1..50),
                                 picks in proptest::collection::vec(0usize..49, 0..20)) {
            let picks: Vec<u32> = picks.into_iter().filter(|&p| p < v.len()).map(|p| p as u32).collect();
            let bat = Bat::Bigint(v.clone());
            let taken = bat.take(&picks);
            for (j, &i) in picks.iter().enumerate() {
                prop_assert_eq!(taken.get(j), bat.get(i as usize));
            }
        }
    }
}
