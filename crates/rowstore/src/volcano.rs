//! The volcano (iterator / tuple-at-a-time) executor.
//!
//! Every operator pulls one row at a time from its child — the classic
//! Graefe model used by SQLite/PostgreSQL/MariaDB, and the root cause of
//! the baseline's poor analytical performance in the paper's Table 1:
//! "Because of their tuple-at-a-time volcano processing model they invoke
//! a lot of overhead for each tuple that passes through the pipeline."
//!
//! For simplicity operators here materialise their input where a real
//! system would stream; the per-row dynamic dispatch — the dominant cost —
//! is identical.

use crate::scalar::eval_row;
use crate::table::RowTable;
use crate::JoinStrategy;
use monetlite::expr::{AggSpec, BExpr, PAggFunc};
use monetlite::plan::{PJoinKind, Plan};
use monetlite_types::{MlError, Result, Value};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One plan execution over the row tables.
pub struct VolcanoExec<'a> {
    /// Catalog.
    pub tables: &'a HashMap<String, RowTable>,
    /// Join algorithm profile.
    pub join_strategy: JoinStrategy,
    /// Absolute deadline.
    pub deadline: Option<Instant>,
    /// Configured timeout (for the error message).
    pub timeout: Option<Duration>,
    /// Intermediate row ceiling (plan blowups count as timeouts).
    pub max_rows: usize,
}

impl VolcanoExec<'_> {
    /// Run a plan to a fully materialised row set.
    pub fn run(&mut self, plan: &Plan) -> Result<Vec<Vec<Value>>> {
        self.exec(plan)
    }

    fn check_blowup(&self, rows: usize) -> Result<()> {
        if rows > self.max_rows {
            let limit = self.timeout.unwrap_or_default().as_millis() as u64;
            return Err(MlError::Timeout { elapsed_ms: limit, limit_ms: limit });
        }
        Ok(())
    }

    fn check_deadline(&self) -> Result<()> {
        if let Some(d) = self.deadline {
            if Instant::now() > d {
                let limit = self.timeout.unwrap_or_default().as_millis() as u64;
                return Err(MlError::Timeout { elapsed_ms: limit, limit_ms: limit });
            }
        }
        Ok(())
    }

    fn exec(&mut self, plan: &Plan) -> Result<Vec<Vec<Value>>> {
        self.check_deadline()?;
        match plan {
            Plan::Scan { table, projected, filters, .. } => {
                let t = self
                    .tables
                    .get(table)
                    .ok_or_else(|| MlError::Catalog(format!("unknown table '{table}'")))?;
                let mut out = Vec::new();
                let mut ticker = 0u32;
                let mut deadline_err = None;
                t.scan(|full_row| {
                    // Row stores read the whole row no matter what;
                    // projection happens after deserialisation.
                    let row: Vec<Value> = projected.iter().map(|&c| full_row[c].clone()).collect();
                    for f in filters {
                        if eval_row(f, &row)? != Value::Bool(true) {
                            return Ok(true);
                        }
                    }
                    out.push(row);
                    ticker += 1;
                    if ticker.is_multiple_of(4096) {
                        if let Err(e) = self.check_deadline() {
                            deadline_err = Some(e);
                            return Ok(false);
                        }
                    }
                    Ok(true)
                })?;
                match deadline_err {
                    Some(e) => Err(e),
                    None => Ok(out),
                }
            }
            Plan::Filter { input, pred } => {
                let rows = self.exec(input)?;
                let mut out = Vec::new();
                for row in rows {
                    if eval_row(pred, &row)? == Value::Bool(true) {
                        out.push(row);
                    }
                }
                Ok(out)
            }
            Plan::Project { input, exprs, .. } => {
                let rows = self.exec(input)?;
                let mut out = Vec::with_capacity(rows.len());
                let mut ticker = 0u32;
                for row in rows {
                    let mut new = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        new.push(eval_row(e, &row)?);
                    }
                    out.push(new);
                    ticker += 1;
                    if ticker.is_multiple_of(8192) {
                        self.check_deadline()?;
                    }
                }
                Ok(out)
            }
            Plan::Join { left, right, kind, left_keys, right_keys, residual, .. } => {
                self.exec_join(left, right, *kind, left_keys, right_keys, residual.as_ref())
            }
            Plan::Aggregate { input, groups, aggs, .. } => {
                let rows = self.exec(input)?;
                self.exec_aggregate(rows, groups, aggs)
            }
            Plan::Sort { input, keys } => {
                let mut rows = self.exec(input)?;
                sort_rows(&mut rows, keys);
                Ok(rows)
            }
            Plan::TopN { input, keys, n } => {
                let mut rows = self.exec(input)?;
                sort_rows(&mut rows, keys);
                rows.truncate(*n as usize);
                Ok(rows)
            }
            Plan::Limit { input, n } => {
                let mut rows = self.exec(input)?;
                rows.truncate(*n as usize);
                Ok(rows)
            }
            Plan::Distinct { input } => {
                let rows = self.exec(input)?;
                let mut seen = std::collections::HashSet::new();
                let mut out = Vec::new();
                for row in rows {
                    let key = values_key(&row);
                    if seen.insert(key) {
                        out.push(row);
                    }
                }
                Ok(out)
            }
            Plan::Values { rows, .. } => {
                let mut out = Vec::with_capacity(rows.len());
                for r in rows {
                    let mut row = Vec::with_capacity(r.len());
                    for e in r {
                        row.push(eval_row(e, &[])?);
                    }
                    out.push(row);
                }
                Ok(out)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_join(
        &mut self,
        left: &Plan,
        right: &Plan,
        kind: PJoinKind,
        left_keys: &[BExpr],
        right_keys: &[BExpr],
        residual: Option<&BExpr>,
    ) -> Result<Vec<Vec<Value>>> {
        let lrows = self.exec(left)?;
        let rrows = self.exec(right)?;
        let rwidth = right.schema().len();
        let semi_like = matches!(kind, PJoinKind::Semi | PJoinKind::Anti);
        let mut out = Vec::new();

        let combine = |l: &[Value], r: Option<&[Value]>| -> Vec<Value> {
            let mut row = l.to_vec();
            match r {
                Some(r) => row.extend(r.iter().cloned()),
                None => row.extend(std::iter::repeat_n(Value::Null, rwidth)),
            }
            row
        };

        let residual_ok = |row: &[Value]| -> Result<bool> {
            match residual {
                None => Ok(true),
                Some(res) => Ok(eval_row(res, row)? == Value::Bool(true)),
            }
        };

        if kind == PJoinKind::Cross || left_keys.is_empty() {
            if semi_like {
                return Err(MlError::Execution("semi/anti join requires keys".into()));
            }
            if kind == PJoinKind::Left && residual.is_none() {
                // Scalar join (binder-planned key-less LEFT): the right
                // side holds at most one row; zero rows pad NULL.
                if rrows.len() > 1 {
                    return Err(MlError::Execution(format!(
                        "scalar subquery returned {} rows (at most one expected)",
                        rrows.len()
                    )));
                }
                for l in &lrows {
                    out.push(combine(l, rrows.first().map(|r| r.as_slice())));
                }
                return Ok(out);
            }
            let mut ticker = 0u64;
            for l in &lrows {
                let mut matched = false;
                for r in &rrows {
                    ticker += 1;
                    if ticker.is_multiple_of(16384) {
                        self.check_deadline()?;
                        self.check_blowup(out.len())?;
                    }
                    let row = combine(l, Some(r));
                    if residual_ok(&row)? {
                        matched = true;
                        out.push(row);
                    }
                }
                // Key-less LEFT with a residual: pad probe rows whose
                // matches all failed.
                if kind == PJoinKind::Left && !matched {
                    out.push(combine(l, None));
                }
            }
            return Ok(out);
        }

        match self.join_strategy {
            JoinStrategy::Hash => {
                // Build on the right.
                let mut table: HashMap<String, Vec<usize>> = HashMap::new();
                for (i, r) in rrows.iter().enumerate() {
                    let keys: Vec<Value> =
                        right_keys.iter().map(|k| eval_row(k, r)).collect::<Result<_>>()?;
                    if keys.iter().any(|k| k.is_null()) {
                        continue;
                    }
                    table.entry(values_key(&keys)).or_default().push(i);
                }
                let mut ticker = 0u64;
                for l in &lrows {
                    ticker += 1;
                    if ticker.is_multiple_of(8192) {
                        self.check_deadline()?;
                        self.check_blowup(out.len())?;
                    }
                    let keys: Vec<Value> =
                        left_keys.iter().map(|k| eval_row(k, l)).collect::<Result<_>>()?;
                    let null_key = keys.iter().any(|k| k.is_null());
                    let mut matched = false;
                    if !null_key {
                        if let Some(bucket) = table.get(&values_key(&keys)) {
                            for &ri in bucket {
                                let row = combine(l, Some(&rrows[ri]));
                                if residual_ok(&row)? {
                                    matched = true;
                                    match kind {
                                        PJoinKind::Inner | PJoinKind::Left => out.push(row),
                                        PJoinKind::Semi | PJoinKind::Anti => break,
                                        PJoinKind::Cross => unreachable!(),
                                    }
                                }
                            }
                        }
                    }
                    finish(&mut out, kind, l, &combine, matched)?;
                }
            }
            JoinStrategy::NestedLoop => {
                // SQLite-style block nested loops: O(n·m) key comparisons.
                let mut ticker = 0u64;
                for l in &lrows {
                    let lkeys: Vec<Value> =
                        left_keys.iter().map(|k| eval_row(k, l)).collect::<Result<_>>()?;
                    let null_key = lkeys.iter().any(|k| k.is_null());
                    let mut matched = false;
                    if !null_key {
                        for r in &rrows {
                            ticker += 1;
                            if ticker.is_multiple_of(65536) {
                                self.check_deadline()?;
                                self.check_blowup(out.len())?;
                            }
                            let rkeys: Vec<Value> =
                                right_keys.iter().map(|k| eval_row(k, r)).collect::<Result<_>>()?;
                            if rkeys.iter().any(|k| k.is_null()) {
                                continue;
                            }
                            let eq = lkeys
                                .iter()
                                .zip(&rkeys)
                                .all(|(a, b)| a.cmp_sql(b) == std::cmp::Ordering::Equal);
                            if !eq {
                                continue;
                            }
                            let row = combine(l, Some(r));
                            if residual_ok(&row)? {
                                matched = true;
                                match kind {
                                    PJoinKind::Inner | PJoinKind::Left => out.push(row),
                                    PJoinKind::Semi | PJoinKind::Anti => break,
                                    PJoinKind::Cross => unreachable!(),
                                }
                            }
                        }
                    }
                    finish(&mut out, kind, l, &combine, matched)?;
                }
            }
        }
        Ok(out)
    }

    fn exec_aggregate(
        &mut self,
        rows: Vec<Vec<Value>>,
        groups: &[BExpr],
        aggs: &[AggSpec],
    ) -> Result<Vec<Vec<Value>>> {
        struct GroupState {
            keys: Vec<Value>,
            accs: Vec<Acc>,
        }
        enum Acc {
            Count(i64),
            CountDistinct(std::collections::HashSet<String>),
            SumF(f64, bool),
            SumDec(i128, bool, u8),
            SumInt(i128, bool),
            Avg(f64, i64),
            Best(Value, bool),
            Median(Vec<f64>),
        }
        let new_accs = |aggs: &[AggSpec]| -> Result<Vec<Acc>> {
            aggs.iter()
                .map(|a| {
                    Ok(match (a.func, a.distinct) {
                        (PAggFunc::Count, true) => {
                            Acc::CountDistinct(std::collections::HashSet::new())
                        }
                        (PAggFunc::Count, false) => Acc::Count(0),
                        (PAggFunc::Sum, _) => match a.arg.as_ref().map(|x| x.ty()) {
                            Some(monetlite_types::LogicalType::Int)
                            | Some(monetlite_types::LogicalType::Bigint) => Acc::SumInt(0, false),
                            Some(monetlite_types::LogicalType::Decimal { scale, .. }) => {
                                Acc::SumDec(0, false, scale)
                            }
                            _ => Acc::SumF(0.0, false),
                        },
                        (PAggFunc::Avg, _) => Acc::Avg(0.0, 0),
                        (PAggFunc::Min, _) => Acc::Best(Value::Null, false),
                        (PAggFunc::Max, _) => Acc::Best(Value::Null, true),
                        (PAggFunc::Median, _) => Acc::Median(Vec::new()),
                    })
                })
                .collect()
        };
        let mut table: HashMap<String, GroupState> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        for row in &rows {
            let keys: Vec<Value> =
                groups.iter().map(|g| eval_row(g, row)).collect::<Result<_>>()?;
            let kstr = values_key(&keys);
            if !table.contains_key(&kstr) {
                table.insert(kstr.clone(), GroupState { keys, accs: new_accs(aggs)? });
                order.push(kstr.clone());
            }
            let st = table.get_mut(&kstr).unwrap();
            for (acc, spec) in st.accs.iter_mut().zip(aggs) {
                let arg = spec.arg.as_ref().map(|a| eval_row(a, row)).transpose()?;
                match acc {
                    Acc::Count(c) => {
                        if spec.arg.is_none() || !arg.as_ref().unwrap().is_null() {
                            *c += 1;
                        }
                    }
                    Acc::CountDistinct(set) => {
                        if let Some(v) = &arg {
                            if !v.is_null() {
                                set.insert(v.to_string());
                            }
                        }
                    }
                    Acc::SumInt(s, seen) => {
                        if let Some(v) = &arg {
                            if !v.is_null() {
                                *s += v.as_i64()? as i128;
                                *seen = true;
                            }
                        }
                    }
                    Acc::SumDec(s, seen, scale) => {
                        if let Some(Value::Decimal(d)) = &arg {
                            *s += d.rescale(*scale)?.raw as i128;
                            *seen = true;
                        }
                    }
                    Acc::SumF(s, seen) => {
                        if let Some(v) = &arg {
                            if !v.is_null() {
                                *s += v.as_f64()?;
                                *seen = true;
                            }
                        }
                    }
                    Acc::Avg(s, c) => {
                        if let Some(v) = &arg {
                            if !v.is_null() {
                                *s += v.as_f64()?;
                                *c += 1;
                            }
                        }
                    }
                    Acc::Best(best, is_max) => {
                        if let Some(v) = &arg {
                            if !v.is_null() {
                                let replace = if best.is_null() {
                                    true
                                } else {
                                    let ord = v.cmp_sql(best);
                                    if *is_max {
                                        ord == std::cmp::Ordering::Greater
                                    } else {
                                        ord == std::cmp::Ordering::Less
                                    }
                                };
                                if replace {
                                    *best = v.clone();
                                }
                            }
                        }
                    }
                    Acc::Median(buf) => {
                        if let Some(v) = &arg {
                            if !v.is_null() {
                                buf.push(v.as_f64()?);
                            }
                        }
                    }
                }
            }
        }
        // Global aggregate over empty input still yields one row.
        if groups.is_empty() && table.is_empty() {
            table.insert(String::new(), GroupState { keys: vec![], accs: new_accs(aggs)? });
            order.push(String::new());
        }
        let mut out = Vec::with_capacity(order.len());
        for k in order {
            let st = table.remove(&k).unwrap();
            let mut row = st.keys;
            for (acc, spec) in st.accs.into_iter().zip(aggs) {
                row.push(match acc {
                    Acc::Count(c) => Value::Bigint(c),
                    Acc::CountDistinct(set) => Value::Bigint(set.len() as i64),
                    Acc::SumInt(s, seen) => {
                        if !seen {
                            Value::Null
                        } else if s > i64::MAX as i128 || s < i64::MIN as i128 {
                            return Err(MlError::Execution("SUM overflow".into()));
                        } else {
                            Value::Bigint(s as i64)
                        }
                    }
                    Acc::SumDec(s, seen, scale) => {
                        if !seen {
                            Value::Null
                        } else if s > i64::MAX as i128 || s < i64::MIN as i128 {
                            return Err(MlError::Execution("SUM overflow".into()));
                        } else {
                            Value::Decimal(monetlite_types::Decimal::new(s as i64, scale))
                        }
                    }
                    Acc::SumF(s, seen) => {
                        if seen {
                            Value::Double(s)
                        } else {
                            Value::Null
                        }
                    }
                    Acc::Avg(s, c) => {
                        if c == 0 {
                            Value::Null
                        } else {
                            Value::Double(s / c as f64)
                        }
                    }
                    Acc::Best(v, _) => v,
                    Acc::Median(mut buf) => {
                        if buf.is_empty() {
                            Value::Null
                        } else {
                            buf.sort_by(|a, b| a.partial_cmp(b).unwrap());
                            let n = buf.len();
                            Value::Double(if n % 2 == 1 {
                                buf[n / 2]
                            } else {
                                (buf[n / 2 - 1] + buf[n / 2]) / 2.0
                            })
                        }
                    }
                });
                let _ = spec;
            }
            out.push(row);
        }
        Ok(out)
    }
}

fn finish(
    out: &mut Vec<Vec<Value>>,
    kind: PJoinKind,
    l: &[Value],
    combine: &impl Fn(&[Value], Option<&[Value]>) -> Vec<Value>,
    matched: bool,
) -> Result<()> {
    match kind {
        PJoinKind::Left if !matched => out.push(combine(l, None)),
        PJoinKind::Semi if matched => out.push(l.to_vec()),
        PJoinKind::Anti if !matched => out.push(l.to_vec()),
        _ => {}
    }
    Ok(())
}

fn sort_rows(rows: &mut [Vec<Value>], keys: &[(usize, bool)]) {
    rows.sort_by(|a, b| {
        for &(c, desc) in keys {
            let ord = a[c].cmp_sql(&b[c]);
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// String image of a composite key ("NULL" groups NULLs together, SQL
/// grouping semantics; join paths skip NULL keys before reaching here).
fn values_key(vals: &[Value]) -> String {
    let mut s = String::new();
    for v in vals {
        match v {
            Value::Null => s.push('\u{1}'),
            other => s.push_str(&other.to_string()),
        }
        s.push('\u{0}');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_key_distinguishes() {
        assert_ne!(values_key(&[Value::Int(1), Value::Int(2)]), values_key(&[Value::Int(12)]));
        assert_eq!(values_key(&[Value::Null]), values_key(&[Value::Null]));
        assert_ne!(values_key(&[Value::Null]), values_key(&[Value::Str("".into())]));
    }

    #[test]
    fn sort_rows_multi_key() {
        let mut rows = vec![
            vec![Value::Int(1), Value::Int(9)],
            vec![Value::Int(1), Value::Int(3)],
            vec![Value::Int(0), Value::Int(5)],
        ];
        sort_rows(&mut rows, &[(0, false), (1, true)]);
        assert_eq!(rows[0][0], Value::Int(0));
        assert_eq!(rows[1][1], Value::Int(9));
    }
}
