//! The shared database state: snapshot publication, optimistic commits,
//! checkpointing and recovery.
//!
//! Concurrency model (paper §3.1 *Concurrency Control*): "MonetDB uses an
//! optimistic concurrency control model. Individual transactions operate
//! on a snapshot of the database. When attempting to commit a transaction,
//! it will either commit successfully or abort when potential write
//! conflicts are detected." Here, a transaction records the version of
//! every table it writes; [`Store::commit`] validates those versions under
//! a global commit lock and aborts with
//! [`MlError::TransactionConflict`] when any differ.
//!
//! Durability: committed write operations are WAL-logged; a checkpoint
//! writes consolidated columns to individual column files (then managed by
//! [`Vmem`], the OS-paging simulation) and truncates the log.
//!
//! Like MonetDB(Lite), a persistent database directory is protected by a
//! lock file: a second `Store` opening the same directory fails with
//! "database locked" (the paper discusses exactly this limitation in §5).

use crate::bat::Bat;
use crate::catalog::{CatalogSnapshot, ColumnEntry, SegColumn, TableData, TableMeta};
use crate::fault;
use crate::persist;
use crate::vmem::Vmem;
use crate::wal::{self, WalRecord, WalWriter};
use monetlite_types::{LogicalType, MlError, Result, Schema};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

// Bumped MLC1 -> MLC2 when the checkpoint-tx watermark was inserted into
// the payload: an old-format file must fail with a clear "bad magic"
// instead of misparsing its table count as a watermark.
const CATALOG_MAGIC: &[u8; 4] = b"MLC2";
const ENDIAN_MARK: u16 = 0xBEEF;

/// Configuration for opening a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Database directory; `None` = in-memory only (all data discarded on
    /// shutdown, exactly the paper's in-memory mode).
    pub path: Option<PathBuf>,
    /// Resident-byte budget for the vmem paging simulation.
    pub vmem_budget: usize,
    /// WAL size (bytes) that triggers an automatic checkpoint at commit.
    pub wal_autocheckpoint: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions { path: None, vmem_budget: usize::MAX, wal_autocheckpoint: 64 << 20 }
    }
}

/// First table id of the per-transaction temporary range. Tables created
/// inside a transaction carry ids from here up until commit assigns a
/// real id; the ranges never overlap, so `id < TEMP_TABLE_ID_BASE`
/// certifies committed content — the test the query caches use before
/// trusting a `(table id, version)` pair as a content fingerprint
/// (temp ids are reused across transactions; committed ids never are).
pub const TEMP_TABLE_ID_BASE: u64 = u64::MAX / 2;

/// The write set of one transaction, applied atomically at commit.
///
/// Ops reuse the WAL record type so logging never copies column data.
#[derive(Default, Debug)]
pub struct TxWrites {
    /// Logical write operations in statement order.
    pub ops: Vec<WalRecord>,
    /// Version of each written table at transaction start (conflict
    /// detection baseline).
    pub base_versions: HashMap<String, u64>,
}

impl TxWrites {
    /// True when the transaction performed no writes.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

struct CommitInner {
    wal: Option<WalWriter>,
    next_table_id: u64,
    next_tx: u64,
    autocheckpoint: u64,
}

/// Where a simulated crash interrupts a checkpoint. Test instrumentation
/// for the recovery-equivalence suite: the checkpoint stops *before* the
/// named step, exactly as if the process had been killed there, and the
/// store must then be dropped and re-opened.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointCrash {
    /// Column files written; the catalog rename has not happened.
    BeforeCatalogRename,
    /// New catalog in place; the WAL has not been truncated.
    BeforeWalTruncate,
    /// WAL truncated; stale column files have not been removed.
    BeforeFileGc,
}

/// The shared, process-local database state. Cheap to share via `Arc`;
/// multiple stores may coexist in one process (lifting the paper's
/// single-database-per-process limitation, which it lists as future work).
pub struct Store {
    path: Option<PathBuf>,
    vmem: Arc<Vmem>,
    catalog: RwLock<Arc<CatalogSnapshot>>,
    commit_lock: Mutex<CommitInner>,
    /// Present when this store holds the directory lock file.
    lock_path: Option<PathBuf>,
}

impl Drop for Store {
    fn drop(&mut self) {
        if let Some(p) = &self.lock_path {
            let _ = fault::remove_file("store.lock.remove", p);
        }
    }
}

impl Store {
    /// Open an in-memory store (paper: `monetdb_startup(NULL)`).
    pub fn in_memory() -> Store {
        Self::open(StoreOptions::default()).expect("in-memory store cannot fail to open")
    }

    /// Open a store per options, running recovery when a directory is
    /// given.
    pub fn open(opts: StoreOptions) -> Result<Store> {
        let vmem = Arc::new(Vmem::new(opts.vmem_budget));
        let Some(dir) = opts.path.clone() else {
            return Ok(Store {
                path: None,
                vmem,
                catalog: RwLock::new(Arc::new(CatalogSnapshot::default())),
                commit_lock: Mutex::new(CommitInner {
                    wal: None,
                    next_table_id: 1,
                    next_tx: 1,
                    autocheckpoint: opts.wal_autocheckpoint,
                }),
                lock_path: None,
            });
        };
        fault::create_dir_all("store.open.mkdir", &dir.join("cols"))?;
        // Paper §5: a database directory may be used by one server at a
        // time ("database locked").
        let lock_path = dir.join("db.lock");
        match fault::create_new("store.lock.create", &lock_path) {
            Ok(mut f) => {
                let _ = writeln!(f, "{}", std::process::id());
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                return Err(MlError::Catalog(format!(
                    "database locked: {} exists (another server is using this database)",
                    lock_path.display()
                )));
            }
            Err(e) => return Err(e.into()),
        }
        let open_inner = || -> Result<Store> {
            let (mut tables, mut next_table_id, checkpoint_tx) = load_catalog(&dir, &vmem)?;
            // Replay committed WAL transactions on top of the checkpoint.
            // Transactions at or below the catalog's checkpoint watermark
            // are already part of the checkpoint image: a crash between
            // the catalog rename and the WAL truncation must not apply
            // them a second time (appends would duplicate rows, deletes
            // would hit renumbered rows after compaction).
            let txns = wal::replay(&dir.join("wal.log"))?;
            let mut max_tx = checkpoint_tx;
            let mut replayed = false;
            for (tx, recs) in txns {
                if tx <= checkpoint_tx {
                    continue;
                }
                replayed = true;
                max_tx = max_tx.max(tx);
                for rec in recs {
                    apply_record(&mut tables, &rec, &mut next_table_id)?;
                }
            }
            let store = Store {
                path: Some(dir.clone()),
                vmem: vmem.clone(),
                catalog: RwLock::new(Arc::new(CatalogSnapshot { tables })),
                commit_lock: Mutex::new(CommitInner {
                    wal: Some(WalWriter::open(&dir.join("wal.log"))?),
                    next_table_id,
                    // Transaction ids stay monotonic across restarts so
                    // the watermark comparison is always meaningful.
                    next_tx: max_tx + 1,
                    autocheckpoint: opts.wal_autocheckpoint,
                }),
                lock_path: None, // set by caller on success
            };
            if replayed {
                store.checkpoint()?;
            }
            Ok(store)
        };
        match open_inner() {
            Ok(mut s) => {
                s.lock_path = Some(lock_path);
                Ok(s)
            }
            Err(e) => {
                // Never leave a stale lock behind on a failed open, and —
                // paper §3.4 — report corruption as an error instead of
                // exiting the host process.
                let _ = fault::remove_file("store.lock.remove", &lock_path);
                Err(e)
            }
        }
    }

    /// The current catalog snapshot (transactions hold this `Arc`).
    pub fn snapshot(&self) -> Arc<CatalogSnapshot> {
        self.catalog.read().clone()
    }

    /// The paging simulation attached to this store.
    pub fn vmem(&self) -> &Arc<Vmem> {
        &self.vmem
    }

    /// The database directory (None = in-memory).
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Atomically validate and apply a transaction's writes.
    pub fn commit(&self, writes: TxWrites) -> Result<()> {
        if writes.is_empty() {
            return Ok(());
        }
        let mut ci = self.commit_lock.lock();
        let snap = self.catalog.read().clone();
        // Optimistic validation: every written table must still be at the
        // version observed at transaction start.
        for (name, base) in &writes.base_versions {
            match snap.tables.get(name) {
                Some(t) if t.version == *base => {}
                Some(t) => {
                    return Err(MlError::TransactionConflict(format!(
                        "table '{name}' changed (version {} -> {})",
                        base, t.version
                    )))
                }
                None => {
                    return Err(MlError::TransactionConflict(format!(
                        "table '{name}' was dropped concurrently"
                    )))
                }
            }
        }
        let mut tables = snap.tables.clone();
        for op in &writes.ops {
            apply_record(&mut tables, op, &mut ci.next_table_id)?;
        }
        // WAL: harden before publishing.
        let tx = ci.next_tx;
        ci.next_tx += 1;
        if let Some(w) = &mut ci.wal {
            w.append(&WalRecord::Begin(tx))?;
            for op in &writes.ops {
                w.append(op)?;
            }
            w.append(&WalRecord::Commit(tx))?;
            w.flush()?;
        }
        *self.catalog.write() = Arc::new(CatalogSnapshot { tables });
        let wal_bytes = ci.wal.as_ref().map_or(0, |w| w.bytes());
        if wal_bytes > ci.autocheckpoint {
            self.checkpoint_locked(&mut ci, None)?;
        }
        Ok(())
    }

    /// Write all table data to column files, rewrite the catalog file, and
    /// truncate the WAL. No-op for in-memory stores.
    ///
    /// Crash safety: the steps are ordered so a kill at any point leaves a
    /// recoverable state — (1) column files are written under fresh names
    /// and the old catalog still references the old ones; (2) the catalog
    /// rewrite is a temp-file + fsync + rename, atomically switching to
    /// the new image *including its transaction watermark*; (3) only then
    /// is the WAL truncated (a crash in between replays nothing twice
    /// because recovery skips transactions at or below the watermark);
    /// (4) unreferenced column files are removed last (a crash leaves
    /// harmless orphans that the next checkpoint collects).
    pub fn checkpoint(&self) -> Result<()> {
        let mut ci = self.commit_lock.lock();
        self.checkpoint_locked(&mut ci, None)
    }

    /// Run a checkpoint that stops (as if killed) before the given step.
    /// Test instrumentation: the store must be dropped and re-opened
    /// afterwards; see the crash-injection tests.
    #[doc(hidden)]
    pub fn checkpoint_crashing(&self, at: CheckpointCrash) -> Result<()> {
        let mut ci = self.commit_lock.lock();
        self.checkpoint_locked(&mut ci, Some(at))
    }

    fn checkpoint_locked(
        &self,
        ci: &mut CommitInner,
        crash: Option<CheckpointCrash>,
    ) -> Result<()> {
        let Some(dir) = &self.path else {
            return Ok(());
        };
        let snap = self.catalog.read().clone();
        let colsdir = dir.join("cols");
        let mut new_tables = HashMap::new();
        let mut referenced: HashSet<String> = HashSet::new();
        for (name, meta) in &snap.tables {
            let compacting = meta.data.deleted_count > 0;
            let sel: Option<Vec<u32>> = if compacting {
                let deleted = meta.data.deleted.as_ref().unwrap();
                Some((0..meta.data.rows as u32).filter(|&r| !deleted[r as usize]).collect())
            } else {
                None
            };
            let mut new_cols = Vec::with_capacity(meta.data.cols.len());
            for segcol in &meta.data.cols {
                let entry = segcol.entry()?;
                let entry = match &sel {
                    Some(sel) => Arc::new(ColumnEntry::from_bat(entry.bat()?.take(sel))),
                    None => entry,
                };
                if !entry.is_backed() {
                    let fname = format!("c{}.bat", entry.id);
                    let fpath = colsdir.join(&fname);
                    let bat = entry.bat()?;
                    persist::write_column_file(&fpath, bat.as_ref())?;
                    // Zonemap sidecar: computed at checkpoint (ingest has
                    // consolidated the column by now) so a restarted
                    // process can skip vectors on range predicates without
                    // faulting the column back in. Sidecars are caches —
                    // a write failure must not fail the checkpoint.
                    if LogicalType::Varchar != entry.ty() && !bat.is_empty() {
                        // Entries are immutable between consolidations, so a
                        // zonemap cached by earlier scans is identical —
                        // reuse it instead of a second min/max pass.
                        let zm = entry.zonemap_opt().unwrap_or_else(|| {
                            Arc::new(crate::index::Zonemap::build(bat.as_ref()))
                        });
                        let _ = persist::write_zonemap_file(&persist::zonemap_sidecar(&fpath), &zm);
                        entry.install_zonemap(zm);
                    }
                    // Column-statistics sidecar (all types — NDV matters
                    // for string join/group keys too): the optimizer of a
                    // restarted process costs plans without faulting cold
                    // columns in. Like zonemaps these are caches — a
                    // write failure must not fail the checkpoint.
                    if !bat.is_empty() {
                        let st = entry.stats_opt().unwrap_or_else(|| {
                            Arc::new(crate::stats::ColumnStats::build(bat.as_ref()))
                        });
                        let _ = persist::write_stats_file(&persist::stats_sidecar(&fpath), &st);
                        entry.install_stats(st);
                    }
                    // String-dictionary sidecar: this is where VARCHAR
                    // columns get dictionary-encoded — at checkpoint the
                    // column is consolidated and immutable, so the sorted
                    // code domain stays valid until the next rewrite. A
                    // restarted process scans on codes without paying the
                    // sort. Cache discipline as above: write failures and
                    // corrupt sidecars are misses, never errors.
                    if LogicalType::Varchar == entry.ty() && !bat.is_empty() {
                        let d = entry
                            .dict_opt()
                            .or_else(|| crate::dict::StrDict::build(bat.as_ref()).map(Arc::new));
                        if let Some(d) = d {
                            let _ = persist::write_dict_file(&persist::dict_sidecar(&fpath), &d);
                            entry.install_dict(d);
                        }
                    }
                    entry.attach_backing(fpath, self.vmem.clone());
                }
                if let Some(p) = entry.backing_path() {
                    if let Some(f) = p.file_name() {
                        let f = f.to_string_lossy().into_owned();
                        referenced.insert(format!("{f}.zm"));
                        referenced.insert(format!("{f}.st"));
                        referenced.insert(format!("{f}.dict"));
                        referenced.insert(f);
                    }
                }
                new_cols.push(SegColumn::from_entry(entry));
            }
            let rows = sel.as_ref().map_or(meta.data.rows, |s| s.len());
            new_tables.insert(
                name.clone(),
                Arc::new(TableMeta {
                    id: meta.id,
                    name: meta.name.clone(),
                    schema: meta.schema.clone(),
                    data: TableData { cols: new_cols, deleted: None, rows, deleted_count: 0 },
                    // Compaction renumbers physical rows: bump the version
                    // so in-flight transactions holding stale row ids
                    // conflict instead of deleting the wrong rows.
                    version: meta.version + compacting as u64,
                    ordered_cols: meta.ordered_cols.clone(),
                }),
            );
        }
        let snap2 = CatalogSnapshot { tables: new_tables };
        if crash == Some(CheckpointCrash::BeforeCatalogRename) {
            return Ok(());
        }
        // Atomically publish the new image together with the watermark of
        // the last transaction it contains.
        write_catalog(dir, &snap2, ci.next_table_id, ci.next_tx - 1)?;
        if crash == Some(CheckpointCrash::BeforeWalTruncate) {
            return Ok(());
        }
        // Truncate and reopen the WAL (everything in it is at or below
        // the watermark now, so this step is idempotent for recovery).
        ci.wal = None;
        fault::create("store.wal.truncate", &dir.join("wal.log"))?;
        ci.wal = Some(WalWriter::open(&dir.join("wal.log"))?);
        if crash == Some(CheckpointCrash::BeforeFileGc) {
            return Ok(());
        }
        // Remove column files no longer referenced by the catalog — last,
        // so a crash anywhere above never deletes files a surviving
        // catalog still points at.
        for e in fault::read_dir("store.gc.readdir", &colsdir)? {
            let fname = e.file_name().to_string_lossy().into_owned();
            if !referenced.contains(&fname) {
                let _ = fault::remove_file("store.gc.remove", &e.path());
            }
        }
        *self.catalog.write() = Arc::new(snap2);
        Ok(())
    }
}

/// Apply one logged/requested write op to a mutable table map.
/// Apply one logged/requested write op to a mutable table map (shared
/// with the engine's transaction-local overlay).
pub fn apply_record(
    tables: &mut HashMap<String, Arc<TableMeta>>,
    rec: &WalRecord,
    next_table_id: &mut u64,
) -> Result<()> {
    match rec {
        WalRecord::Begin(_) | WalRecord::Commit(_) => {}
        WalRecord::CreateTable { name, schema } => {
            if tables.contains_key(name) {
                return Err(MlError::Catalog(format!("table '{name}' already exists")));
            }
            let id = *next_table_id;
            *next_table_id += 1;
            tables.insert(
                name.clone(),
                Arc::new(TableMeta {
                    id,
                    name: name.clone(),
                    schema: schema.clone(),
                    data: TableData::empty(schema),
                    version: 1,
                    ordered_cols: vec![],
                }),
            );
        }
        WalRecord::DropTable { name } => {
            if tables.remove(name).is_none() {
                return Err(MlError::Catalog(format!("unknown table '{name}'")));
            }
        }
        WalRecord::Append { table, cols } => {
            let meta = tables
                .get(table)
                .ok_or_else(|| MlError::Catalog(format!("unknown table '{table}'")))?;
            check_append_types(&meta.schema, cols)?;
            let new = Arc::new(TableMeta {
                id: meta.id,
                name: meta.name.clone(),
                schema: meta.schema.clone(),
                data: meta.data.appended(cols.iter().map(clone_bat).collect())?,
                version: meta.version + 1,
                ordered_cols: meta.ordered_cols.clone(),
            });
            tables.insert(table.clone(), new);
        }
        WalRecord::Delete { table, rows } => {
            let meta = tables
                .get(table)
                .ok_or_else(|| MlError::Catalog(format!("unknown table '{table}'")))?;
            let new = Arc::new(TableMeta {
                id: meta.id,
                name: meta.name.clone(),
                schema: meta.schema.clone(),
                data: meta.data.with_deleted(rows),
                version: meta.version + 1,
                ordered_cols: meta.ordered_cols.clone(),
            });
            tables.insert(table.clone(), new);
        }
        WalRecord::CreateOrderIndex { table, col } => {
            let meta = tables
                .get(table)
                .ok_or_else(|| MlError::Catalog(format!("unknown table '{table}'")))?;
            if *col as usize >= meta.schema.len() {
                return Err(MlError::Catalog(format!(
                    "order index column {col} out of range for '{table}'"
                )));
            }
            let mut ordered = meta.ordered_cols.clone();
            if !ordered.contains(&(*col as usize)) {
                ordered.push(*col as usize);
            }
            let new = Arc::new(TableMeta {
                id: meta.id,
                name: meta.name.clone(),
                schema: meta.schema.clone(),
                data: meta.data.clone(),
                version: meta.version,
                ordered_cols: ordered,
            });
            tables.insert(table.clone(), new);
        }
    }
    Ok(())
}

fn clone_bat(b: &Bat) -> Bat {
    b.clone()
}

fn check_append_types(schema: &Schema, cols: &[Bat]) -> Result<()> {
    if cols.len() != schema.len() {
        return Err(MlError::Execution(format!(
            "append expects {} columns, got {}",
            schema.len(),
            cols.len()
        )));
    }
    for (f, c) in schema.fields().iter().zip(cols) {
        let compatible = matches!(
            (f.ty, c.logical_type()),
            (LogicalType::Bool, LogicalType::Bool)
                | (LogicalType::Int, LogicalType::Int)
                | (LogicalType::Bigint, LogicalType::Bigint)
                | (LogicalType::Double, LogicalType::Double)
                | (LogicalType::Decimal { .. }, LogicalType::Decimal { .. })
                | (LogicalType::Varchar, LogicalType::Varchar)
                | (LogicalType::Date, LogicalType::Date)
        );
        if !compatible {
            return Err(MlError::TypeMismatch(format!(
                "column '{}' expects {}, got {}",
                f.name,
                f.ty,
                c.logical_type()
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Catalog file
// ---------------------------------------------------------------------------

fn write_catalog(
    dir: &Path,
    snap: &CatalogSnapshot,
    next_table_id: u64,
    checkpoint_tx: u64,
) -> Result<()> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&next_table_id.to_le_bytes());
    // Watermark: the highest committed transaction id contained in this
    // image. Recovery skips WAL transactions at or below it.
    payload.extend_from_slice(&checkpoint_tx.to_le_bytes());
    let names = snap.table_names();
    payload.extend_from_slice(&(names.len() as u32).to_le_bytes());
    for name in &names {
        let meta = &snap.tables[name];
        payload.extend_from_slice(&meta.id.to_le_bytes());
        payload.extend_from_slice(&(name.len() as u32).to_le_bytes());
        payload.extend_from_slice(name.as_bytes());
        wal::encode_schema(&mut payload, &meta.schema);
        payload.extend_from_slice(&meta.version.to_le_bytes());
        payload.extend_from_slice(&(meta.data.rows as u64).to_le_bytes());
        for col in &meta.data.cols {
            let entry = col.entry()?;
            let p = entry.backing_path().ok_or_else(|| {
                MlError::Io(format!("column of '{name}' has no backing file at checkpoint"))
            })?;
            let fname = p.file_name().unwrap().to_string_lossy();
            payload.extend_from_slice(&(fname.len() as u32).to_le_bytes());
            payload.extend_from_slice(fname.as_bytes());
        }
        payload.extend_from_slice(&(meta.ordered_cols.len() as u32).to_le_bytes());
        for &c in &meta.ordered_cols {
            payload.extend_from_slice(&(c as u32).to_le_bytes());
        }
    }
    let tmp = dir.join("catalog.tmp");
    let res = (|| -> Result<()> {
        let mut f = fault::create("catalog.create", &tmp)?;
        fault::write_all("catalog.write", &mut f, CATALOG_MAGIC)?;
        fault::write_all("catalog.write", &mut f, &ENDIAN_MARK.to_ne_bytes())?;
        fault::write_all("catalog.write", &mut f, &payload)?;
        fault::write_all("catalog.write", &mut f, &crate::index::fnv1a(&payload).to_le_bytes())?;
        fault::sync_all("catalog.sync", &f)?;
        drop(f);
        fault::rename("catalog.rename", &tmp, &dir.join("catalog.bin"))?;
        Ok(())
    })();
    // `catalog.tmp` lives in the db root, outside the cols/ GC sweep — a
    // failed checkpoint must clean it up itself or it leaks forever.
    if res.is_err() {
        let _ = fault::remove_file("catalog.cleanup", &tmp);
    }
    res
}

type LoadedCatalog = (HashMap<String, Arc<TableMeta>>, u64, u64);

fn load_catalog(dir: &Path, vmem: &Arc<Vmem>) -> Result<LoadedCatalog> {
    let path = dir.join("catalog.bin");
    let mut f = match fault::open("catalog.open", &path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((HashMap::new(), 1, 0));
        }
        Err(e) => return Err(e.into()),
    };
    let mut buf = Vec::new();
    fault::read_to_end("catalog.read", &mut f, &mut buf)?;
    if buf.len() < 4 + 2 + 8 || &buf[..4] != CATALOG_MAGIC {
        return Err(MlError::Corrupt("catalog.bin: bad magic or truncated".into()));
    }
    if u16::from_ne_bytes(buf[4..6].try_into().unwrap()) != ENDIAN_MARK {
        return Err(MlError::Corrupt("catalog.bin: foreign endianness".into()));
    }
    let (payload, ck) = buf[6..].split_at(buf.len() - 6 - 8);
    if crate::index::fnv1a(payload) != u64::from_le_bytes(ck.try_into().unwrap()) {
        return Err(MlError::Corrupt("catalog.bin: checksum mismatch".into()));
    }
    let mut r = payload;
    let next_table_id = take_u64(&mut r)?;
    let checkpoint_tx = take_u64(&mut r)?;
    let ntables = take_u32(&mut r)? as usize;
    if ntables > 1_000_000 {
        return Err(MlError::Corrupt("catalog.bin: implausible table count".into()));
    }
    let mut tables = HashMap::with_capacity(ntables);
    for _ in 0..ntables {
        let id = take_u64(&mut r)?;
        let name = take_str(&mut r)?;
        let schema = wal::decode_schema(&mut r)?;
        let version = take_u64(&mut r)?;
        let rows = take_u64(&mut r)? as usize;
        let mut cols = Vec::with_capacity(schema.len());
        for field in schema.fields() {
            let fname = take_str(&mut r)?;
            let entry = Arc::new(ColumnEntry::from_file(
                dir.join("cols").join(&fname),
                field.ty,
                rows,
                vmem.clone(),
            ));
            cols.push(SegColumn::from_entry(entry));
        }
        let nord = take_u32(&mut r)? as usize;
        let mut ordered_cols = Vec::with_capacity(nord.min(schema.len()));
        for _ in 0..nord {
            ordered_cols.push(take_u32(&mut r)? as usize);
        }
        tables.insert(
            name.clone(),
            Arc::new(TableMeta {
                id,
                name,
                schema,
                data: TableData { cols, deleted: None, rows, deleted_count: 0 },
                version,
                ordered_cols,
            }),
        );
    }
    Ok((tables, next_table_id, checkpoint_tx))
}

fn take_u32(r: &mut &[u8]) -> Result<u32> {
    if r.len() < 4 {
        return Err(MlError::Corrupt("catalog.bin truncated".into()));
    }
    let (b, rest) = r.split_at(4);
    *r = rest;
    Ok(u32::from_le_bytes(b.try_into().unwrap()))
}

fn take_u64(r: &mut &[u8]) -> Result<u64> {
    if r.len() < 8 {
        return Err(MlError::Corrupt("catalog.bin truncated".into()));
    }
    let (b, rest) = r.split_at(8);
    *r = rest;
    Ok(u64::from_le_bytes(b.try_into().unwrap()))
}

fn take_str(r: &mut &[u8]) -> Result<String> {
    let len = take_u32(r)? as usize;
    if r.len() < len {
        return Err(MlError::Corrupt("catalog.bin truncated".into()));
    }
    let (s, rest) = r.split_at(len);
    *r = rest;
    String::from_utf8(s.to_vec()).map_err(|_| MlError::Corrupt("catalog.bin bad utf-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_types::{ColumnBuffer, Field, Value};

    fn schema_ab() -> Schema {
        Schema::new(vec![
            Field::not_null("a", LogicalType::Int),
            Field::new("b", LogicalType::Varchar),
        ])
        .unwrap()
    }

    fn create_and_fill(store: &Store, rows: Vec<i32>) {
        let mut w = TxWrites::default();
        w.ops.push(WalRecord::CreateTable { name: "t".into(), schema: schema_ab() });
        let strs: Vec<Option<String>> = rows.iter().map(|i| Some(format!("s{i}"))).collect();
        w.ops.push(WalRecord::Append {
            table: "t".into(),
            cols: vec![Bat::Int(rows), Bat::from_buffer(&ColumnBuffer::Varchar(strs))],
        });
        store.commit(w).unwrap();
    }

    #[test]
    fn in_memory_create_append_read() {
        let store = Store::in_memory();
        create_and_fill(&store, vec![1, 2, 3]);
        let snap = store.snapshot();
        let t = snap.table("t").unwrap();
        assert_eq!(t.data.visible_rows(), 3);
        let bat = t.data.cols[0].entry().unwrap().bat().unwrap();
        assert_eq!(bat.get(2), Value::Int(3));
    }

    #[test]
    fn snapshot_isolation_across_commits() {
        let store = Store::in_memory();
        create_and_fill(&store, vec![1]);
        let old = store.snapshot();
        let mut w = TxWrites::default();
        w.base_versions.insert("t".into(), old.table("t").unwrap().version);
        w.ops.push(WalRecord::Append {
            table: "t".into(),
            cols: vec![Bat::Int(vec![2]), Bat::from_buffer(&ColumnBuffer::Varchar(vec![None]))],
        });
        store.commit(w).unwrap();
        assert_eq!(old.table("t").unwrap().data.visible_rows(), 1);
        assert_eq!(store.snapshot().table("t").unwrap().data.visible_rows(), 2);
    }

    #[test]
    fn write_write_conflict_aborts() {
        let store = Store::in_memory();
        create_and_fill(&store, vec![1]);
        let base = store.snapshot().table("t").unwrap().version;
        // First writer commits.
        let mut w1 = TxWrites::default();
        w1.base_versions.insert("t".into(), base);
        w1.ops.push(WalRecord::Delete { table: "t".into(), rows: vec![0] });
        store.commit(w1).unwrap();
        // Second writer started from the same version: must abort.
        let mut w2 = TxWrites::default();
        w2.base_versions.insert("t".into(), base);
        w2.ops.push(WalRecord::Delete { table: "t".into(), rows: vec![0] });
        match store.commit(w2) {
            Err(MlError::TransactionConflict(_)) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn persistent_roundtrip_via_checkpoint() {
        let dir = tempfile::tempdir().unwrap();
        {
            let store = Store::open(StoreOptions {
                path: Some(dir.path().to_path_buf()),
                ..Default::default()
            })
            .unwrap();
            create_and_fill(&store, vec![10, 20]);
            store.checkpoint().unwrap();
        }
        let store = Store::open(StoreOptions {
            path: Some(dir.path().to_path_buf()),
            ..Default::default()
        })
        .unwrap();
        let snap = store.snapshot();
        let t = snap.table("t").unwrap();
        assert_eq!(t.data.visible_rows(), 2);
        let bat = t.data.cols[1].entry().unwrap().bat().unwrap();
        assert_eq!(bat.str_at(1), Some("s20"));
    }

    #[test]
    fn checkpoint_writes_zonemap_sidecars_readable_after_restart() {
        let dir = tempfile::tempdir().unwrap();
        {
            let store = Store::open(StoreOptions {
                path: Some(dir.path().to_path_buf()),
                ..Default::default()
            })
            .unwrap();
            create_and_fill(&store, (0..20_000).collect());
            store.checkpoint().unwrap();
            // The INTEGER column gets a sidecar; the VARCHAR column does
            // not (strings have no order-preserving key domain).
            let snap = store.snapshot();
            let t = snap.table("t").unwrap();
            let int_path = t.data.cols[0].entry().unwrap().backing_path().unwrap();
            let str_path = t.data.cols[1].entry().unwrap().backing_path().unwrap();
            assert!(persist::zonemap_sidecar(&int_path).exists());
            assert!(!persist::zonemap_sidecar(&str_path).exists());
        }
        // After restart the sidecar resolves without rebuilding.
        let store = Store::open(StoreOptions {
            path: Some(dir.path().to_path_buf()),
            ..Default::default()
        })
        .unwrap();
        let snap = store.snapshot();
        let entry = snap.table("t").unwrap().data.cols[0].entry().unwrap();
        let zm = entry.zonemap().unwrap();
        assert_eq!(zm.rows(), 20_000);
        assert_eq!(zm.n_zones(), 20_000usize.div_ceil(crate::index::ZONE_ROWS));
        // Clustered ints: a probe below the first value matches nowhere.
        assert!(!zm.range_may_match(0, 20_000, Some(20_001), None));
        // A checkpoint with no new columns keeps the sidecar (GC must
        // treat it as referenced).
        store.checkpoint().unwrap();
        let int_path = snap.table("t").unwrap().data.cols[0].entry().unwrap();
        assert!(persist::zonemap_sidecar(&int_path.backing_path().unwrap()).exists());
    }

    #[test]
    fn checkpoint_writes_stats_sidecars_survive_restart_and_corruption() {
        let dir = tempfile::tempdir().unwrap();
        {
            let store = Store::open(StoreOptions {
                path: Some(dir.path().to_path_buf()),
                ..Default::default()
            })
            .unwrap();
            create_and_fill(&store, (0..30_000).map(|i| i % 5000).collect());
            store.checkpoint().unwrap();
            let snap = store.snapshot();
            let t = snap.table("t").unwrap();
            // Both the INTEGER and the VARCHAR column get a stats sidecar
            // (NDV matters for string keys even without a value range).
            for c in 0..2 {
                let p = t.data.cols[c].entry().unwrap().backing_path().unwrap();
                assert!(persist::stats_sidecar(&p).exists(), "col {c} missing .st");
            }
        }
        // After restart the sidecar resolves without rebuilding (and
        // without faulting the column data in).
        let store = Store::open(StoreOptions {
            path: Some(dir.path().to_path_buf()),
            ..Default::default()
        })
        .unwrap();
        let snap = store.snapshot();
        let entry = snap.table("t").unwrap().data.cols[0].entry().unwrap();
        let st = entry.stats().unwrap();
        assert_eq!(st.rows, 30_000);
        assert_eq!((st.min_key, st.max_key), (0, 4999));
        let ndv = st.ndv();
        assert!((4250.0..=5750.0).contains(&ndv), "5000 distinct, est {ndv}");
        // A checkpoint with no new columns keeps the sidecar (GC must
        // treat it as referenced).
        store.checkpoint().unwrap();
        let path = entry.backing_path().unwrap();
        assert!(persist::stats_sidecar(&path).exists());
        drop(store);
        // Corrupt the sidecar: the next open must recompute from the
        // column (corruption is a cache miss, never an error).
        let sp = persist::stats_sidecar(&path);
        let mut bytes = std::fs::read(&sp).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&sp, &bytes).unwrap();
        let store = Store::open(StoreOptions {
            path: Some(dir.path().to_path_buf()),
            ..Default::default()
        })
        .unwrap();
        let snap = store.snapshot();
        let entry = snap.table("t").unwrap().data.cols[0].entry().unwrap();
        let st = entry.stats().unwrap();
        assert_eq!(st.rows, 30_000, "recomputed after corruption");
        assert_eq!((st.min_key, st.max_key), (0, 4999));
    }

    #[test]
    fn checkpoint_writes_dict_sidecars_survive_restart_and_corruption() {
        let dir = tempfile::tempdir().unwrap();
        {
            let store = Store::open(StoreOptions {
                path: Some(dir.path().to_path_buf()),
                ..Default::default()
            })
            .unwrap();
            create_and_fill(&store, (0..10_000).map(|i| i % 50).collect());
            store.checkpoint().unwrap();
            let snap = store.snapshot();
            let t = snap.table("t").unwrap();
            // Only the VARCHAR column gets a dictionary sidecar.
            let int_path = t.data.cols[0].entry().unwrap().backing_path().unwrap();
            let str_path = t.data.cols[1].entry().unwrap().backing_path().unwrap();
            assert!(!persist::dict_sidecar(&int_path).exists());
            assert!(persist::dict_sidecar(&str_path).exists());
        }
        // After restart the sidecar resolves without re-sorting.
        let store = Store::open(StoreOptions {
            path: Some(dir.path().to_path_buf()),
            ..Default::default()
        })
        .unwrap();
        let snap = store.snapshot();
        let entry = snap.table("t").unwrap().data.cols[1].entry().unwrap();
        let d = entry.dict().unwrap();
        assert_eq!(d.rows(), 10_000);
        assert_eq!(d.len(), 50, "50 distinct strings");
        assert_eq!(d.code_of("s0"), Some(0), "byte-sorted: \"s0\" first");
        // A checkpoint with no new columns keeps the sidecar (GC must
        // treat it as referenced).
        store.checkpoint().unwrap();
        let path = entry.backing_path().unwrap();
        assert!(persist::dict_sidecar(&path).exists());
        drop(store);
        // Corrupt the sidecar: the next open must rebuild from the column
        // (corruption is a cache miss, never an error).
        let dp = persist::dict_sidecar(&path);
        let mut bytes = std::fs::read(&dp).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&dp, &bytes).unwrap();
        let store = Store::open(StoreOptions {
            path: Some(dir.path().to_path_buf()),
            ..Default::default()
        })
        .unwrap();
        let snap = store.snapshot();
        let entry = snap.table("t").unwrap().data.cols[1].entry().unwrap();
        let d = entry.dict().unwrap();
        assert_eq!((d.rows(), d.len()), (10_000, 50), "rebuilt after corruption");
    }

    #[test]
    fn wal_recovery_without_checkpoint() {
        let dir = tempfile::tempdir().unwrap();
        {
            let store = Store::open(StoreOptions {
                path: Some(dir.path().to_path_buf()),
                ..Default::default()
            })
            .unwrap();
            create_and_fill(&store, vec![7, 8, 9]);
            // No explicit checkpoint: data lives only in the WAL.
        }
        let store = Store::open(StoreOptions {
            path: Some(dir.path().to_path_buf()),
            ..Default::default()
        })
        .unwrap();
        let snap = store.snapshot();
        assert_eq!(snap.table("t").unwrap().data.visible_rows(), 3);
        let bat = snap.table("t").unwrap().data.cols[0].entry().unwrap().bat().unwrap();
        assert_eq!(bat.get(0), Value::Int(7));
    }

    #[test]
    fn deletes_compacted_at_checkpoint() {
        let dir = tempfile::tempdir().unwrap();
        {
            let store = Store::open(StoreOptions {
                path: Some(dir.path().to_path_buf()),
                ..Default::default()
            })
            .unwrap();
            create_and_fill(&store, vec![1, 2, 3, 4]);
            let mut w = TxWrites::default();
            w.ops.push(WalRecord::Delete { table: "t".into(), rows: vec![0, 2] });
            store.commit(w).unwrap();
            store.checkpoint().unwrap();
            let snap = store.snapshot();
            assert_eq!(snap.table("t").unwrap().data.rows, 2, "checkpoint compacts deletes");
        }
        let store = Store::open(StoreOptions {
            path: Some(dir.path().to_path_buf()),
            ..Default::default()
        })
        .unwrap();
        let snap = store.snapshot();
        let bat = snap.table("t").unwrap().data.cols[0].entry().unwrap().bat().unwrap();
        assert_eq!(bat.to_buffer(None), ColumnBuffer::Int(vec![2, 4]));
    }

    #[test]
    fn database_locked_error() {
        let dir = tempfile::tempdir().unwrap();
        let opts = StoreOptions { path: Some(dir.path().to_path_buf()), ..Default::default() };
        let _s1 = Store::open(opts.clone()).unwrap();
        match Store::open(opts) {
            Err(MlError::Catalog(msg)) => assert!(msg.contains("database locked"), "{msg}"),
            Err(other) => panic!("expected locked error, got {other:?}"),
            Ok(_) => panic!("expected locked error, got a second store"),
        }
    }

    #[test]
    fn lock_released_on_drop() {
        let dir = tempfile::tempdir().unwrap();
        let opts = StoreOptions { path: Some(dir.path().to_path_buf()), ..Default::default() };
        {
            let _s1 = Store::open(opts.clone()).unwrap();
        }
        assert!(Store::open(opts).is_ok());
    }

    #[test]
    fn drop_table_removes_files_at_checkpoint() {
        let dir = tempfile::tempdir().unwrap();
        let store = Store::open(StoreOptions {
            path: Some(dir.path().to_path_buf()),
            ..Default::default()
        })
        .unwrap();
        create_and_fill(&store, vec![1]);
        store.checkpoint().unwrap();
        let files_before = std::fs::read_dir(dir.path().join("cols")).unwrap().count();
        assert!(files_before >= 2);
        let mut w = TxWrites::default();
        w.base_versions.insert("t".into(), store.snapshot().table("t").unwrap().version);
        w.ops.push(WalRecord::DropTable { name: "t".into() });
        store.commit(w).unwrap();
        store.checkpoint().unwrap();
        let files_after = std::fs::read_dir(dir.path().join("cols")).unwrap().count();
        assert_eq!(files_after, 0, "orphan column files must be removed");
    }

    #[test]
    fn create_duplicate_table_rejected() {
        let store = Store::in_memory();
        create_and_fill(&store, vec![1]);
        let mut w = TxWrites::default();
        w.ops.push(WalRecord::CreateTable { name: "t".into(), schema: schema_ab() });
        assert!(matches!(store.commit(w), Err(MlError::Catalog(_))));
    }

    #[test]
    fn append_type_mismatch_rejected() {
        let store = Store::in_memory();
        create_and_fill(&store, vec![1]);
        let mut w = TxWrites::default();
        w.ops.push(WalRecord::Append {
            table: "t".into(),
            cols: vec![
                Bat::Double(vec![1.0]),
                Bat::from_buffer(&ColumnBuffer::Varchar(vec![None])),
            ],
        });
        assert!(matches!(store.commit(w), Err(MlError::TypeMismatch(_))));
    }

    /// The full visible contents of table `t`, column 0, as a buffer.
    fn col0(store: &Store) -> ColumnBuffer {
        let snap = store.snapshot();
        let t = snap.table("t").unwrap();
        let bat = t.data.cols[0].entry().unwrap().bat().unwrap();
        match &t.data.deleted {
            None => bat.to_buffer(None),
            Some(d) => {
                let sel: Vec<u32> = (0..t.data.rows as u32).filter(|&r| !d[r as usize]).collect();
                bat.take(&sel).to_buffer(None)
            }
        }
    }

    fn reopen(dir: &Path) -> Store {
        Store::open(StoreOptions { path: Some(dir.to_path_buf()), ..Default::default() }).unwrap()
    }

    #[test]
    fn checkpoint_crash_at_every_step_recovers_equivalently() {
        // Reference sequence: create+fill, checkpoint, append, delete —
        // then crash the second checkpoint before each of its steps and
        // assert the re-opened store sees exactly the committed state.
        for at in [
            CheckpointCrash::BeforeCatalogRename,
            CheckpointCrash::BeforeWalTruncate,
            CheckpointCrash::BeforeFileGc,
        ] {
            let dir = tempfile::tempdir().unwrap();
            {
                let store = reopen(dir.path());
                create_and_fill(&store, vec![1, 2, 3]);
                store.checkpoint().unwrap();
                let mut w = TxWrites::default();
                w.ops.push(WalRecord::Append {
                    table: "t".into(),
                    cols: vec![
                        Bat::Int(vec![4, 5]),
                        Bat::from_buffer(&ColumnBuffer::Varchar(vec![None, None])),
                    ],
                });
                store.commit(w).unwrap();
                let mut w = TxWrites::default();
                w.ops.push(WalRecord::Delete { table: "t".into(), rows: vec![1] });
                store.commit(w).unwrap();
                store.checkpoint_crashing(at).unwrap();
                // Simulated kill: the store is dropped without finishing.
            }
            let store = reopen(dir.path());
            assert_eq!(
                col0(&store),
                ColumnBuffer::Int(vec![1, 3, 4, 5]),
                "recovery after crash {at:?} must see each committed txn exactly once"
            );
            // A post-recovery checkpoint + reopen converges to the same state.
            store.checkpoint().unwrap();
            drop(store);
            let store = reopen(dir.path());
            assert_eq!(col0(&store), ColumnBuffer::Int(vec![1, 3, 4, 5]), "after {at:?}");
        }
    }

    #[test]
    fn crash_between_catalog_and_wal_truncate_does_not_double_apply() {
        // The historical bug: the catalog image already contains the
        // appended rows, and the un-truncated WAL replays them again.
        let dir = tempfile::tempdir().unwrap();
        {
            let store = reopen(dir.path());
            create_and_fill(&store, vec![10]);
            store.checkpoint_crashing(CheckpointCrash::BeforeWalTruncate).unwrap();
        }
        let store = reopen(dir.path());
        assert_eq!(
            col0(&store),
            ColumnBuffer::Int(vec![10]),
            "append must not be applied twice after a mid-checkpoint crash"
        );
    }

    #[test]
    fn crash_after_compaction_does_not_replay_stale_deletes() {
        // Deletes compacted into the catalog renumber physical rows; a
        // replayed Delete record with old row ids would remove the wrong
        // rows without the watermark skip.
        let dir = tempfile::tempdir().unwrap();
        {
            let store = reopen(dir.path());
            create_and_fill(&store, vec![1, 2, 3, 4]);
            let mut w = TxWrites::default();
            w.ops.push(WalRecord::Delete { table: "t".into(), rows: vec![0] });
            store.commit(w).unwrap();
            store.checkpoint_crashing(CheckpointCrash::BeforeWalTruncate).unwrap();
        }
        let store = reopen(dir.path());
        assert_eq!(col0(&store), ColumnBuffer::Int(vec![2, 3, 4]));
    }

    #[test]
    fn tx_ids_stay_monotonic_across_restart() {
        let dir = tempfile::tempdir().unwrap();
        {
            let store = reopen(dir.path());
            create_and_fill(&store, vec![1]);
            store.checkpoint().unwrap();
        }
        {
            // New commits after restart get ids above the watermark; a
            // crashless checkpoint keeps everything consistent.
            let store = reopen(dir.path());
            let mut w = TxWrites::default();
            w.ops.push(WalRecord::Append {
                table: "t".into(),
                cols: vec![Bat::Int(vec![2]), Bat::from_buffer(&ColumnBuffer::Varchar(vec![None]))],
            });
            store.commit(w).unwrap();
        }
        let store = reopen(dir.path());
        assert_eq!(col0(&store), ColumnBuffer::Int(vec![1, 2]));
    }

    #[test]
    fn vmem_eviction_under_pressure_with_reload() {
        let dir = tempfile::tempdir().unwrap();
        let store = Store::open(StoreOptions {
            path: Some(dir.path().to_path_buf()),
            vmem_budget: 6000, // bytes: forces eviction between two 4kB columns
            ..Default::default()
        })
        .unwrap();
        // Two tables with one 1000-row int column each (4 kB).
        for name in ["x", "y"] {
            let mut w = TxWrites::default();
            let schema = Schema::new(vec![Field::not_null("v", LogicalType::Int)]).unwrap();
            w.ops.push(WalRecord::CreateTable { name: name.into(), schema });
            w.ops.push(WalRecord::Append {
                table: name.into(),
                cols: vec![Bat::Int((0..1000).collect())],
            });
            store.commit(w).unwrap();
        }
        store.checkpoint().unwrap();
        let snap = store.snapshot();
        // Touch x then y: y's touch should evict x under the 6 kB budget.
        let _ = snap.table("x").unwrap().data.cols[0].entry().unwrap().bat().unwrap();
        let _ = snap.table("y").unwrap().data.cols[0].entry().unwrap().bat().unwrap();
        // Touch x again: reload from disk.
        let bat = snap.table("x").unwrap().data.cols[0].entry().unwrap().bat().unwrap();
        assert_eq!(bat.get(999), Value::Int(999));
        let stats = store.vmem().stats();
        assert!(stats.evictions >= 1, "expected evictions, got {stats:?}");
        assert!(stats.loads >= 1, "expected reloads, got {stats:?}");
    }
}
