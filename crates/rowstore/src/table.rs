//! Row tables: row-major serialisation into pages + a B-tree row index,
//! the storage shape of SQLite ("a row-store database that uses ... a
//! B-tree structure ... to store data internally", paper §4.2).

use crate::page::{PageStore, PAGE_SIZE};
use monetlite_types::{Date, Decimal, LogicalType, MlError, Result, Schema, Value};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Location of one row in the page store.
#[derive(Debug, Clone, Copy)]
struct RowPtr {
    page: u32,
    offset: u32,
    len: u32,
}

/// One row-major table.
pub struct RowTable {
    schema: Schema,
    /// The page cache mutates (LRU, loads) even during logically-const
    /// scans, like any buffer manager behind a latch; `RowDb`'s mutex
    /// guarantees single-threaded access.
    pages: RefCell<PageStore>,
    /// rowid → row location: the B-tree.
    btree: BTreeMap<u64, RowPtr>,
    next_rowid: u64,
    tail_page: Option<u32>,
}

impl RowTable {
    /// Create a table whose pages spill to `spill_path`.
    pub fn new(schema: Schema, spill_path: PathBuf, budget_pages: usize) -> Result<RowTable> {
        Ok(RowTable {
            schema,
            pages: RefCell::new(PageStore::new(spill_path, budget_pages)),
            btree: BTreeMap::new(),
            next_rowid: 1,
            tail_page: None,
        })
    }

    /// Column definitions.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Live rows.
    pub fn row_count(&self) -> usize {
        self.btree.len()
    }

    /// Page reads from the spill file.
    pub fn io_reads(&self) -> u64 {
        self.pages.borrow().io_reads()
    }

    /// Insert one row (serialise + append + index).
    pub fn insert(&mut self, row: Vec<Value>) -> Result<u64> {
        if row.len() != self.schema.len() {
            return Err(MlError::Execution(format!(
                "row has {} values, table has {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        let bytes = encode_row(&row, &self.schema)?;
        if bytes.len() > PAGE_SIZE - 8 {
            return Err(MlError::Execution("row exceeds page size".into()));
        }
        let mut pages = self.pages.borrow_mut();
        let page = match self.tail_page {
            Some(p) if pages.free_in(p)? >= bytes.len() => p,
            _ => {
                let p = pages.new_page()?;
                self.tail_page = Some(p);
                p
            }
        };
        let offset = pages.append(page, &bytes)?;
        drop(pages);
        let rowid = self.next_rowid;
        self.next_rowid += 1;
        self.btree.insert(rowid, RowPtr { page, offset, len: bytes.len() as u32 });
        Ok(rowid)
    }

    /// Scan rows in rowid order; the callback returns false to stop.
    /// Every row is fully deserialised — the row-store scan cost.
    pub fn scan(&self, mut f: impl FnMut(Vec<Value>) -> Result<bool>) -> Result<()> {
        let ptrs: Vec<RowPtr> = self.btree.values().copied().collect();
        for ptr in ptrs {
            let bytes = self.pages.borrow_mut().read(ptr.page, ptr.offset, ptr.len)?;
            let row = decode_row(&bytes, &self.schema)?;
            if !f(row)? {
                break;
            }
        }
        Ok(())
    }

    /// Delete rows matching the predicate; returns the count.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&[Value]) -> Result<bool>) -> Result<u64> {
        let ptrs: Vec<(u64, RowPtr)> = self.btree.iter().map(|(k, v)| (*k, *v)).collect();
        let mut doomed = Vec::new();
        for (rowid, ptr) in ptrs {
            let bytes = self.pages.borrow_mut().read(ptr.page, ptr.offset, ptr.len)?;
            let row = decode_row(&bytes, &self.schema)?;
            if pred(&row)? {
                doomed.push(rowid);
            }
        }
        let n = doomed.len() as u64;
        for rowid in doomed {
            self.btree.remove(&rowid);
        }
        // Space is not reclaimed (SQLite leaves free pages too).
        Ok(n)
    }

    /// Update rows matching the predicate; returns the count.
    pub fn update_where(
        &mut self,
        mut pred: impl FnMut(&[Value]) -> Result<bool>,
        mut newval: impl FnMut(&[Value]) -> Result<Vec<Value>>,
    ) -> Result<u64> {
        let ptrs: Vec<(u64, RowPtr)> = self.btree.iter().map(|(k, v)| (*k, *v)).collect();
        let mut updates = Vec::new();
        for (rowid, ptr) in ptrs {
            let bytes = self.pages.borrow_mut().read(ptr.page, ptr.offset, ptr.len)?;
            let row = decode_row(&bytes, &self.schema)?;
            if pred(&row)? {
                updates.push((rowid, newval(&row)?));
            }
        }
        let n = updates.len() as u64;
        for (rowid, row) in updates {
            // Rewrite the row at a fresh location, keep the rowid.
            let bytes = encode_row(&row, &self.schema)?;
            let mut pages = self.pages.borrow_mut();
            let page = match self.tail_page {
                Some(p) if pages.free_in(p)? >= bytes.len() => p,
                _ => {
                    let p = pages.new_page()?;
                    self.tail_page = Some(p);
                    p
                }
            };
            let offset = pages.append(page, &bytes)?;
            drop(pages);
            self.btree.insert(rowid, RowPtr { page, offset, len: bytes.len() as u32 });
        }
        Ok(n)
    }

    /// Flush pages to the spill/database file.
    pub fn sync(&mut self) -> Result<()> {
        self.pages.borrow_mut().sync()
    }
}

// ---------------------------------------------------------------------------
// Row serialisation (row-major, schema-driven)
// ---------------------------------------------------------------------------

/// Encode a row: per column `[null: u8][payload]`.
pub fn encode_row(row: &[Value], schema: &Schema) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(row.len() * 8);
    for (v, f) in row.iter().zip(schema.fields()) {
        match v {
            Value::Null => out.push(0),
            _ => {
                out.push(1);
                match (v, f.ty) {
                    (Value::Bool(b), LogicalType::Bool) => out.push(*b as u8),
                    (Value::Int(x), LogicalType::Int) => out.extend_from_slice(&x.to_le_bytes()),
                    (Value::Bigint(x), LogicalType::Bigint) => {
                        out.extend_from_slice(&x.to_le_bytes())
                    }
                    (Value::Int(x), LogicalType::Bigint) => {
                        out.extend_from_slice(&(*x as i64).to_le_bytes())
                    }
                    (Value::Double(x), LogicalType::Double) => {
                        out.extend_from_slice(&x.to_bits().to_le_bytes())
                    }
                    (Value::Decimal(d), LogicalType::Decimal { scale, .. }) => {
                        out.extend_from_slice(&d.rescale(scale)?.raw.to_le_bytes())
                    }
                    (Value::Str(s), LogicalType::Varchar) => {
                        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                        out.extend_from_slice(s.as_bytes());
                    }
                    (Value::Date(d), LogicalType::Date) => {
                        out.extend_from_slice(&d.0.to_le_bytes())
                    }
                    (v, ty) => {
                        return Err(MlError::TypeMismatch(format!(
                            "cannot store {v:?} in {ty} column '{}'",
                            f.name
                        )))
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Decode a full row (always the whole row: row-major storage).
pub fn decode_row(bytes: &[u8], schema: &Schema) -> Result<Vec<Value>> {
    let mut row = Vec::with_capacity(schema.len());
    let mut pos = 0usize;
    let bad = || MlError::Corrupt("truncated row".into());
    for f in schema.fields() {
        if pos >= bytes.len() {
            return Err(bad());
        }
        let present = bytes[pos] == 1;
        pos += 1;
        if !present {
            row.push(Value::Null);
            continue;
        }
        let v = match f.ty {
            LogicalType::Bool => {
                let b = *bytes.get(pos).ok_or_else(bad)?;
                pos += 1;
                Value::Bool(b != 0)
            }
            LogicalType::Int => {
                let b = bytes.get(pos..pos + 4).ok_or_else(bad)?;
                pos += 4;
                Value::Int(i32::from_le_bytes(b.try_into().unwrap()))
            }
            LogicalType::Bigint => {
                let b = bytes.get(pos..pos + 8).ok_or_else(bad)?;
                pos += 8;
                Value::Bigint(i64::from_le_bytes(b.try_into().unwrap()))
            }
            LogicalType::Double => {
                let b = bytes.get(pos..pos + 8).ok_or_else(bad)?;
                pos += 8;
                Value::Double(f64::from_bits(u64::from_le_bytes(b.try_into().unwrap())))
            }
            LogicalType::Decimal { scale, .. } => {
                let b = bytes.get(pos..pos + 8).ok_or_else(bad)?;
                pos += 8;
                Value::Decimal(Decimal::new(i64::from_le_bytes(b.try_into().unwrap()), scale))
            }
            LogicalType::Varchar => {
                let lb = bytes.get(pos..pos + 4).ok_or_else(bad)?;
                let len = u32::from_le_bytes(lb.try_into().unwrap()) as usize;
                pos += 4;
                let sb = bytes.get(pos..pos + len).ok_or_else(bad)?;
                pos += len;
                Value::Str(
                    std::str::from_utf8(sb)
                        .map_err(|_| MlError::Corrupt("bad utf-8 in row".into()))?
                        .to_string(),
                )
            }
            LogicalType::Date => {
                let b = bytes.get(pos..pos + 4).ok_or_else(bad)?;
                pos += 4;
                Value::Date(Date(i32::from_le_bytes(b.try_into().unwrap())))
            }
        };
        row.push(v);
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_types::Field;
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::not_null("a", LogicalType::Int),
            Field::new("b", LogicalType::Varchar),
            Field::new("c", LogicalType::Decimal { width: 10, scale: 2 }),
            Field::new("d", LogicalType::Date),
            Field::new("e", LogicalType::Bool),
            Field::new("f", LogicalType::Double),
            Field::new("g", LogicalType::Bigint),
        ])
        .unwrap()
    }

    fn sample_row() -> Vec<Value> {
        vec![
            Value::Int(7),
            Value::Str("héllo".into()),
            Value::Decimal(Decimal::new(1234, 2)),
            Value::Date(Date(9000)),
            Value::Bool(true),
            Value::Double(2.75),
            Value::Bigint(-5),
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = schema();
        let row = sample_row();
        let bytes = encode_row(&row, &s).unwrap();
        assert_eq!(decode_row(&bytes, &s).unwrap(), row);
    }

    #[test]
    fn nulls_roundtrip() {
        let s = schema();
        let row = vec![
            Value::Int(1),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ];
        let bytes = encode_row(&row, &s).unwrap();
        assert_eq!(decode_row(&bytes, &s).unwrap(), row);
    }

    #[test]
    fn table_insert_scan_delete_update() {
        let dir = tempfile::tempdir().unwrap();
        let mut t = RowTable::new(schema(), dir.path().join("x.rsdb"), usize::MAX).unwrap();
        for i in 0..10 {
            let mut row = sample_row();
            row[0] = Value::Int(i);
            t.insert(row).unwrap();
        }
        assert_eq!(t.row_count(), 10);
        let mut seen = 0;
        t.scan(|row| {
            assert_eq!(row.len(), 7);
            seen += 1;
            Ok(true)
        })
        .unwrap();
        assert_eq!(seen, 10);
        let n = t.delete_where(|r| Ok(matches!(r[0], Value::Int(x) if x < 5))).unwrap();
        assert_eq!(n, 5);
        assert_eq!(t.row_count(), 5);
        let n = t
            .update_where(
                |r| Ok(matches!(r[0], Value::Int(5))),
                |r| {
                    let mut new = r.to_vec();
                    new[1] = Value::Str("updated".into());
                    Ok(new)
                },
            )
            .unwrap();
        assert_eq!(n, 1);
        let mut found = false;
        t.scan(|row| {
            if row[0] == Value::Int(5) {
                assert_eq!(row[1], Value::Str("updated".into()));
                found = true;
            }
            Ok(true)
        })
        .unwrap();
        assert!(found);
    }

    #[test]
    fn early_scan_stop() {
        let dir = tempfile::tempdir().unwrap();
        let mut t = RowTable::new(schema(), dir.path().join("y.rsdb"), usize::MAX).unwrap();
        for _ in 0..10 {
            t.insert(sample_row()).unwrap();
        }
        let mut n = 0;
        t.scan(|_| {
            n += 1;
            Ok(n < 3)
        })
        .unwrap();
        assert_eq!(n, 3);
    }

    proptest! {
        #[test]
        fn prop_row_roundtrip(a in any::<i32>(), s in ".{0,30}", raw in -10_000i64..10_000) {
            let sch = schema();
            let row = vec![
                Value::Int(a),
                Value::Str(s),
                Value::Decimal(Decimal::new(raw, 2)),
                Value::Null,
                Value::Bool(false),
                Value::Double(raw as f64 / 7.0),
                Value::Bigint(raw * 3),
            ];
            let bytes = encode_row(&row, &sch).unwrap();
            prop_assert_eq!(decode_row(&bytes, &sch).unwrap(), row);
        }
    }
}
