//! The binder: name resolution, type checking/coercion, aggregate
//! extraction and subquery decorrelation (AST → [`Plan`]).
//!
//! Correlated subqueries are flattened at bind time, the classic
//! MonetDB/relational approach:
//! * `EXISTS (SELECT ... WHERE inner = outer AND p)` → left **semi** join
//!   on the correlated equality keys (NOT EXISTS → **anti** join);
//! * `x IN (SELECT c ...)` → semi join on `x = c`;
//! * `x = (SELECT MIN(c) ... WHERE inner = outer)` (TPC-H Q2's pattern) →
//!   group the subquery by its correlated keys, **left join** the outer
//!   plan against the per-group aggregate, and rewrite the comparison to
//!   the joined column.

use crate::expr::{agg_output_type, AggSpec, ArithOp, BExpr, CmpOp, PAggFunc, ScalarFunc};
use crate::plan::{OutCol, PJoinKind, Plan};
use monetlite_sql::ast;
use monetlite_types::{Date, LogicalType, MlError, Result, Schema, Value};

/// Catalog lookup used by the binder; implemented by the core engine's
/// transaction view and by the rowstore baseline's catalog.
pub trait CatalogAccess {
    /// Schema of a base table.
    fn table_schema(&self, name: &str) -> Result<Schema>;
}

/// One visible column while binding.
#[derive(Debug, Clone)]
pub struct ScopeCol {
    /// Table alias / name qualifier.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Type.
    pub ty: LogicalType,
}

/// The columns visible to expression binding, aligned with the plan's
/// output positions.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    /// Visible columns.
    pub cols: Vec<ScopeCol>,
}

impl Scope {
    fn resolve(&self, table: Option<&str>, name: &str) -> Result<(usize, LogicalType)> {
        let name = name.to_ascii_lowercase();
        let mut found = None;
        for (i, c) in self.cols.iter().enumerate() {
            let qual_ok = match table {
                None => true,
                Some(t) => c.qualifier.as_deref() == Some(&t.to_ascii_lowercase()),
            };
            if qual_ok && c.name == name {
                if found.is_some() {
                    return Err(MlError::Bind(format!("ambiguous column '{name}'")));
                }
                found = Some((i, c.ty));
            }
        }
        found.ok_or_else(|| match table {
            Some(t) => MlError::Bind(format!("unknown column '{t}.{name}'")),
            None => MlError::Bind(format!("unknown column '{name}'")),
        })
    }
}

/// Binds statements against a catalog.
pub struct Binder<'a> {
    catalog: &'a dyn CatalogAccess,
}

impl<'a> Binder<'a> {
    /// New binder over a catalog view.
    pub fn new(catalog: &'a dyn CatalogAccess) -> Binder<'a> {
        Binder { catalog }
    }

    /// Bind a SELECT statement to a plan.
    pub fn bind_select(&self, stmt: &ast::SelectStmt) -> Result<Plan> {
        self.bind_select_scoped(stmt, None).map(|(p, _)| p)
    }

    /// Bind a bare expression over a single table's columns (used by the
    /// engines for UPDATE/DELETE predicates).
    pub fn bind_table_expr(&self, table: &str, e: &ast::Expr) -> Result<(BExpr, Scope)> {
        let schema = self.catalog.table_schema(table)?;
        let scope = Scope {
            cols: schema
                .fields()
                .iter()
                .map(|f| ScopeCol {
                    qualifier: Some(table.to_ascii_lowercase()),
                    name: f.name.clone(),
                    ty: f.ty,
                })
                .collect(),
        };
        let b = self.bind_expr(e, &scope)?;
        Ok((b, scope))
    }

    fn bind_select_scoped(
        &self,
        stmt: &ast::SelectStmt,
        outer: Option<&Scope>,
    ) -> Result<(Plan, Scope)> {
        // 1. FROM clause.
        let (mut plan, mut scope) = if stmt.from.is_empty() {
            (Plan::Values { rows: vec![vec![]], schema: vec![] }, Scope::default())
        } else {
            let mut iter = stmt.from.iter();
            let (mut p, mut s) = self.bind_table_ref(iter.next().unwrap())?;
            for tr in iter {
                let (rp, rs) = self.bind_table_ref(tr)?;
                let schema: Vec<OutCol> = p.schema().iter().chain(rp.schema()).cloned().collect();
                p = Plan::Join {
                    left: Box::new(p),
                    right: Box::new(rp),
                    kind: PJoinKind::Cross,
                    left_keys: vec![],
                    right_keys: vec![],
                    residual: None,
                    schema,
                };
                s.cols.extend(rs.cols);
            }
            (p, s)
        };

        // 2. WHERE: split into conjuncts, flatten subqueries, filter.
        if let Some(w) = &stmt.where_clause {
            let mut conjuncts = Vec::new();
            split_conjuncts(w, &mut conjuncts);
            let mut plain = Vec::new();
            for c in conjuncts {
                if let Some(p2) = self.try_bind_subquery_conjunct(c, plan.clone(), &mut scope)? {
                    plan = p2;
                } else {
                    plain.push(self.bind_expr_bool(c, &scope, outer)?);
                }
            }
            for pred in plain {
                plan = Plan::Filter { input: Box::new(plan), pred };
            }
        }

        // 3. Grouping & aggregates.
        let has_aggs =
            stmt.projections.iter().any(
                |p| matches!(p, ast::SelectItem::Expr { expr, .. } if expr.contains_aggregate()),
            ) || stmt.having.as_ref().is_some_and(|h| h.contains_aggregate());
        let grouped = !stmt.group_by.is_empty() || has_aggs;

        let (mut plan, out_names, out_exprs_schema) = if grouped {
            let group_bexprs: Vec<BExpr> =
                stmt.group_by.iter().map(|g| self.bind_expr(g, &scope)).collect::<Result<_>>()?;
            let mut aggs: Vec<AggSpec> = Vec::new();
            // Bind projections in aggregate context.
            let mut proj_exprs = Vec::new();
            let mut names = Vec::new();
            for (i, item) in stmt.projections.iter().enumerate() {
                match item {
                    ast::SelectItem::Wildcard | ast::SelectItem::QualifiedWildcard(_) => {
                        return Err(MlError::Bind(
                            "SELECT * is not allowed with GROUP BY/aggregates".into(),
                        ))
                    }
                    ast::SelectItem::Expr { expr, alias } => {
                        let b = self.bind_agg_expr(expr, &scope, &group_bexprs, &mut aggs)?;
                        names.push(output_name(alias.as_deref(), expr, i));
                        proj_exprs.push(b);
                    }
                }
            }
            // HAVING in aggregate context.
            let having = stmt
                .having
                .as_ref()
                .map(|h| self.bind_agg_expr(h, &scope, &group_bexprs, &mut aggs))
                .transpose()?;
            // Build Aggregate node schema: groups then aggs.
            let mut agg_schema = Vec::new();
            for (i, g) in group_bexprs.iter().enumerate() {
                agg_schema.push(OutCol { name: format!("g{i}"), ty: g.ty() });
            }
            for (i, a) in aggs.iter().enumerate() {
                agg_schema.push(OutCol { name: format!("a{i}"), ty: a.ty });
            }
            let mut plan = Plan::Aggregate {
                input: Box::new(plan),
                groups: group_bexprs,
                aggs,
                schema: agg_schema,
            };
            if let Some(h) = having {
                plan = Plan::Filter { input: Box::new(plan), pred: h };
            }
            let schema: Vec<OutCol> = proj_exprs
                .iter()
                .zip(&names)
                .map(|(e, n)| OutCol { name: n.clone(), ty: e.ty() })
                .collect();
            plan =
                Plan::Project { input: Box::new(plan), exprs: proj_exprs, schema: schema.clone() };
            (plan, names, schema)
        } else {
            // Plain projection.
            let mut exprs = Vec::new();
            let mut names = Vec::new();
            for (i, item) in stmt.projections.iter().enumerate() {
                match item {
                    ast::SelectItem::Wildcard => {
                        for (j, c) in scope.cols.iter().enumerate() {
                            exprs.push(BExpr::ColRef { idx: j, ty: c.ty });
                            names.push(c.name.clone());
                        }
                    }
                    ast::SelectItem::QualifiedWildcard(q) => {
                        let q = q.to_ascii_lowercase();
                        let mut any = false;
                        for (j, c) in scope.cols.iter().enumerate() {
                            if c.qualifier.as_deref() == Some(&q) {
                                exprs.push(BExpr::ColRef { idx: j, ty: c.ty });
                                names.push(c.name.clone());
                                any = true;
                            }
                        }
                        if !any {
                            return Err(MlError::Bind(format!("unknown table alias '{q}'")));
                        }
                    }
                    ast::SelectItem::Expr { expr, alias } => {
                        let b = self.bind_expr_outer(expr, &scope, outer)?;
                        names.push(output_name(alias.as_deref(), expr, i));
                        exprs.push(b);
                    }
                }
            }
            let schema: Vec<OutCol> = exprs
                .iter()
                .zip(&names)
                .map(|(e, n)| OutCol { name: n.clone(), ty: e.ty() })
                .collect();
            let plan = Plan::Project { input: Box::new(plan), exprs, schema: schema.clone() };
            (plan, names, schema)
        };

        // 4. DISTINCT.
        if stmt.distinct {
            plan = Plan::Distinct { input: Box::new(plan) };
        }

        // 5. ORDER BY over the output columns (name, alias or ordinal).
        if !stmt.order_by.is_empty() {
            let mut keys = Vec::new();
            for item in &stmt.order_by {
                let idx = match &item.expr {
                    ast::Expr::Literal(Value::Int(n)) => {
                        let n = *n as usize;
                        if n == 0 || n > out_names.len() {
                            return Err(MlError::Bind(format!(
                                "ORDER BY ordinal {n} out of range"
                            )));
                        }
                        n - 1
                    }
                    ast::Expr::Column { table: None, name } => {
                        let lower = name.to_ascii_lowercase();
                        out_names.iter().position(|n| *n == lower).ok_or_else(|| {
                            MlError::Bind(format!("ORDER BY column '{name}' is not in the output"))
                        })?
                    }
                    other => {
                        return Err(MlError::Bind(format!(
                            "ORDER BY must reference an output column or ordinal, got {other:?}"
                        )))
                    }
                };
                keys.push((idx, item.desc));
            }
            plan = Plan::Sort { input: Box::new(plan), keys };
        }

        // 6. LIMIT.
        if let Some(n) = stmt.limit {
            plan = Plan::Limit { input: Box::new(plan), n };
        }

        let out_scope = Scope {
            cols: out_exprs_schema
                .iter()
                .map(|c| ScopeCol { qualifier: None, name: c.name.clone(), ty: c.ty })
                .collect(),
        };
        Ok((plan, out_scope))
    }

    fn bind_table_ref(&self, tr: &ast::TableRef) -> Result<(Plan, Scope)> {
        match tr {
            ast::TableRef::Table { name, alias } => {
                let schema = self.catalog.table_schema(name)?;
                let qualifier = alias.clone().unwrap_or_else(|| name.clone()).to_ascii_lowercase();
                let cols: Vec<ScopeCol> = schema
                    .fields()
                    .iter()
                    .map(|f| ScopeCol {
                        qualifier: Some(qualifier.clone()),
                        name: f.name.clone(),
                        ty: f.ty,
                    })
                    .collect();
                let plan = Plan::Scan {
                    table: name.to_ascii_lowercase(),
                    projected: (0..schema.len()).collect(),
                    filters: vec![],
                    schema: cols
                        .iter()
                        .map(|c| OutCol { name: c.name.clone(), ty: c.ty })
                        .collect(),
                };
                Ok((plan, Scope { cols }))
            }
            ast::TableRef::Subquery { query, alias } => {
                let (plan, scope) = self.bind_select_scoped(query, None)?;
                let cols = scope
                    .cols
                    .into_iter()
                    .map(|c| ScopeCol { qualifier: Some(alias.to_ascii_lowercase()), ..c })
                    .collect();
                Ok((plan, Scope { cols }))
            }
            ast::TableRef::Join { left, right, kind, on } => {
                let (lp, ls) = self.bind_table_ref(left)?;
                let (rp, rs) = self.bind_table_ref(right)?;
                let mut scope = ls;
                scope.cols.extend(rs.cols);
                let schema: Vec<OutCol> = lp.schema().iter().chain(rp.schema()).cloned().collect();
                let pkind = match kind {
                    ast::JoinKind::Inner => PJoinKind::Inner,
                    ast::JoinKind::Left => PJoinKind::Left,
                    ast::JoinKind::Cross => PJoinKind::Cross,
                };
                let residual =
                    on.as_ref().map(|e| self.bind_expr_bool(e, &scope, None)).transpose()?;
                // Keys are extracted from the residual by the optimizer.
                Ok((
                    Plan::Join {
                        left: Box::new(lp),
                        right: Box::new(rp),
                        kind: pkind,
                        left_keys: vec![],
                        right_keys: vec![],
                        residual,
                        schema,
                    },
                    scope,
                ))
            }
        }
    }

    /// If `conjunct` is a flattenable subquery predicate, rewrite `plan`
    /// (joining in the subquery) and return the new plan.
    fn try_bind_subquery_conjunct(
        &self,
        conjunct: &ast::Expr,
        plan: Plan,
        scope: &mut Scope,
    ) -> Result<Option<Plan>> {
        match conjunct {
            ast::Expr::Exists { query, negated } => {
                Ok(Some(self.flatten_exists(query, *negated, plan, scope)?))
            }
            ast::Expr::Not(inner) => {
                if let ast::Expr::Exists { query, negated } = inner.as_ref() {
                    return Ok(Some(self.flatten_exists(query, !negated, plan, scope)?));
                }
                Ok(None)
            }
            ast::Expr::InSubquery { expr, query, negated } => {
                Ok(Some(self.flatten_in(expr, query, *negated, plan, scope)?))
            }
            ast::Expr::Binary { op, left, right }
                if matches!(
                    op,
                    ast::BinOp::Eq
                        | ast::BinOp::Lt
                        | ast::BinOp::LtEq
                        | ast::BinOp::Gt
                        | ast::BinOp::GtEq
                        | ast::BinOp::NotEq
                ) =>
            {
                let (scalar_side, other, flip) = match (left.as_ref(), right.as_ref()) {
                    (ast::Expr::ScalarSubquery(q), o) => (q, o, true),
                    (o, ast::Expr::ScalarSubquery(q)) => (q, o, false),
                    _ => return Ok(None),
                };
                let p = self.flatten_scalar_cmp(scalar_side, other, *op, flip, plan, scope)?;
                Ok(Some(p))
            }
            _ => Ok(None),
        }
    }

    /// EXISTS/NOT EXISTS → semi/anti join.
    fn flatten_exists(
        &self,
        query: &ast::SelectStmt,
        negated: bool,
        plan: Plan,
        scope: &Scope,
    ) -> Result<Plan> {
        let (inner_plan, inner_scope, lkeys, rkeys) =
            self.bind_correlated_subquery(query, scope)?;
        let _ = inner_scope;
        let schema = plan.schema().to_vec();
        Ok(Plan::Join {
            left: Box::new(plan),
            right: Box::new(inner_plan),
            kind: if negated { PJoinKind::Anti } else { PJoinKind::Semi },
            left_keys: lkeys,
            right_keys: rkeys,
            residual: None,
            schema,
        })
    }

    /// `x IN (SELECT c ...)` → semi join on x = c (+ correlated keys).
    fn flatten_in(
        &self,
        expr: &ast::Expr,
        query: &ast::SelectStmt,
        negated: bool,
        plan: Plan,
        scope: &Scope,
    ) -> Result<Plan> {
        let (inner_plan, inner_scope, mut lkeys, mut rkeys) =
            self.bind_correlated_subquery(query, scope)?;
        if inner_scope.cols.len() != 1 {
            return Err(MlError::Bind("IN subquery must produce exactly one column".into()));
        }
        let left_key = self.bind_expr(expr, scope)?;
        let right_key = BExpr::ColRef { idx: 0, ty: inner_scope.cols[0].ty };
        let (lk, rk) = coerce_pair(left_key, right_key)?;
        lkeys.push(lk);
        rkeys.push(rk);
        let schema = plan.schema().to_vec();
        Ok(Plan::Join {
            left: Box::new(plan),
            right: Box::new(inner_plan),
            kind: if negated { PJoinKind::Anti } else { PJoinKind::Semi },
            left_keys: lkeys,
            right_keys: rkeys,
            residual: None,
            schema,
        })
    }

    /// `other <op> (SELECT agg(..) ... WHERE correlated)` → left join on
    /// the correlated group keys + comparison against the aggregate
    /// column.
    fn flatten_scalar_cmp(
        &self,
        query: &ast::SelectStmt,
        other: &ast::Expr,
        op: ast::BinOp,
        flipped: bool,
        plan: Plan,
        scope: &mut Scope,
    ) -> Result<Plan> {
        let (inner_plan, inner_scope, lkeys, rkeys) =
            self.bind_correlated_subquery_grouped(query, scope)?;
        if inner_scope.cols.len() != rkeys.len() + 1 {
            return Err(MlError::Bind("scalar subquery must produce exactly one column".into()));
        }
        let val_idx = inner_scope.cols.len() - 1;
        let val_ty = inner_scope.cols[val_idx].ty;
        // Join: outer LEFT JOIN inner-grouped.
        let nleft = plan.schema().len();
        let mut schema = plan.schema().to_vec();
        schema.extend(inner_plan.schema().iter().cloned());
        let joined = Plan::Join {
            left: Box::new(plan),
            right: Box::new(inner_plan),
            kind: PJoinKind::Left,
            left_keys: lkeys,
            right_keys: rkeys,
            residual: None,
            schema,
        };
        // Comparison over the joined schema.
        let other_b = self.bind_expr(other, scope)?;
        let subq_col = BExpr::ColRef { idx: nleft + val_idx, ty: val_ty };
        let (l, r) =
            if flipped { coerce_pair(subq_col, other_b)? } else { coerce_pair(other_b, subq_col)? };
        let pred = BExpr::Cmp { op: bin_to_cmp(op)?, left: Box::new(l), right: Box::new(r) };
        let filtered = Plan::Filter { input: Box::new(joined), pred };
        // Project back to the outer columns only.
        let exprs: Vec<BExpr> =
            (0..nleft).map(|i| BExpr::ColRef { idx: i, ty: filtered.schema()[i].ty }).collect();
        let out_schema: Vec<OutCol> = filtered.schema()[..nleft].to_vec();
        // Scope is unchanged: same outer columns.
        Ok(Plan::Project { input: Box::new(filtered), exprs, schema: out_schema })
    }

    /// Bind a subquery, splitting its WHERE into inner-only conjuncts
    /// (applied inside) and correlated equalities (returned as join keys:
    /// outer-side, inner-side).
    fn bind_correlated_subquery(
        &self,
        query: &ast::SelectStmt,
        outer: &Scope,
    ) -> Result<(Plan, Scope, Vec<BExpr>, Vec<BExpr>)> {
        if !query.group_by.is_empty() || query.limit.is_some() {
            return Err(MlError::Unsupported("GROUP BY/LIMIT inside EXISTS/IN subqueries".into()));
        }
        // Bind the subquery FROM to get the inner scope.
        let inner_stmt = ast::SelectStmt { where_clause: None, order_by: vec![], ..query.clone() };
        let (mut inner_plan, inner_scope) = self.bind_from_only(&inner_stmt)?;
        let mut lkeys = Vec::new();
        let mut rkeys = Vec::new();
        if let Some(w) = &query.where_clause {
            let mut conjuncts = Vec::new();
            split_conjuncts(w, &mut conjuncts);
            for c in conjuncts {
                match self.classify_conjunct(c, &inner_scope, outer)? {
                    Classified::Inner(pred) => {
                        inner_plan = Plan::Filter { input: Box::new(inner_plan), pred };
                    }
                    Classified::CorrelatedEq { outer_key, inner_key } => {
                        lkeys.push(outer_key);
                        rkeys.push(inner_key);
                    }
                }
            }
        }
        // Select the projected columns of the subquery (for IN).
        let (proj_plan, proj_scope) =
            self.project_subquery_outputs(query, inner_plan, &inner_scope, &mut rkeys)?;
        Ok((proj_plan, proj_scope, lkeys, rkeys))
    }

    /// Like [`Self::bind_correlated_subquery`] but for scalar aggregate
    /// subqueries: the result plan groups by the correlated inner keys and
    /// outputs (keys..., aggregate).
    fn bind_correlated_subquery_grouped(
        &self,
        query: &ast::SelectStmt,
        outer: &Scope,
    ) -> Result<(Plan, Scope, Vec<BExpr>, Vec<BExpr>)> {
        if query.projections.len() != 1 {
            return Err(MlError::Bind("scalar subquery must select one expression".into()));
        }
        let agg_expr = match &query.projections[0] {
            ast::SelectItem::Expr { expr, .. } if expr.contains_aggregate() => expr,
            _ => {
                return Err(MlError::Unsupported(
                    "scalar subqueries must be a single aggregate".into(),
                ))
            }
        };
        let inner_stmt = ast::SelectStmt {
            where_clause: None,
            order_by: vec![],
            projections: vec![],
            ..query.clone()
        };
        let (mut inner_plan, inner_scope) = self.bind_from_only(&inner_stmt)?;
        let mut outer_keys = Vec::new();
        let mut inner_keys = Vec::new();
        if let Some(w) = &query.where_clause {
            let mut conjuncts = Vec::new();
            split_conjuncts(w, &mut conjuncts);
            for c in conjuncts {
                match self.classify_conjunct(c, &inner_scope, outer)? {
                    Classified::Inner(pred) => {
                        inner_plan = Plan::Filter { input: Box::new(inner_plan), pred };
                    }
                    Classified::CorrelatedEq { outer_key, inner_key } => {
                        outer_keys.push(outer_key);
                        inner_keys.push(inner_key);
                    }
                }
            }
        }
        // Aggregate grouped by the correlated inner keys.
        let mut aggs = Vec::new();
        let bound_agg = self.bind_agg_expr(agg_expr, &inner_scope, &inner_keys, &mut aggs)?;
        if aggs.len() != 1 || !matches!(bound_agg, BExpr::ColRef { .. }) {
            return Err(MlError::Unsupported(
                "scalar subquery must be a single plain aggregate".into(),
            ));
        }
        let mut schema = Vec::new();
        for (i, k) in inner_keys.iter().enumerate() {
            schema.push(OutCol { name: format!("k{i}"), ty: k.ty() });
        }
        let agg_ty = aggs[0].ty;
        schema.push(OutCol { name: "agg".into(), ty: agg_ty });
        let grouped = Plan::Aggregate {
            input: Box::new(inner_plan),
            groups: inner_keys.clone(),
            aggs,
            schema: schema.clone(),
        };
        // Join keys on the grouped output: positions 0..nkeys.
        let rkeys: Vec<BExpr> = inner_keys
            .iter()
            .enumerate()
            .map(|(i, k)| BExpr::ColRef { idx: i, ty: k.ty() })
            .collect();
        let scope = Scope {
            cols: schema
                .iter()
                .map(|c| ScopeCol { qualifier: None, name: c.name.clone(), ty: c.ty })
                .collect(),
        };
        Ok((grouped, scope, outer_keys, rkeys))
    }

    fn bind_from_only(&self, stmt: &ast::SelectStmt) -> Result<(Plan, Scope)> {
        let mut iter = stmt.from.iter();
        let first =
            iter.next().ok_or_else(|| MlError::Bind("subquery requires a FROM clause".into()))?;
        let (mut p, mut s) = self.bind_table_ref(first)?;
        for tr in iter {
            let (rp, rs) = self.bind_table_ref(tr)?;
            let schema: Vec<OutCol> = p.schema().iter().chain(rp.schema()).cloned().collect();
            p = Plan::Join {
                left: Box::new(p),
                right: Box::new(rp),
                kind: PJoinKind::Cross,
                left_keys: vec![],
                right_keys: vec![],
                residual: None,
                schema,
            };
            s.cols.extend(rs.cols);
        }
        Ok((p, s))
    }

    fn project_subquery_outputs(
        &self,
        query: &ast::SelectStmt,
        inner_plan: Plan,
        inner_scope: &Scope,
        rkeys: &mut [BExpr],
    ) -> Result<(Plan, Scope)> {
        // For EXISTS the projection is irrelevant (`SELECT *` common); for
        // IN the single projected expression becomes output column 0. Join
        // keys bound against the inner scope must be remapped through the
        // projection, so we append them as extra hidden outputs.
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        match query.projections.as_slice() {
            [ast::SelectItem::Wildcard] => {}
            items => {
                for (i, item) in items.iter().enumerate() {
                    match item {
                        ast::SelectItem::Expr { expr, alias } => {
                            exprs.push(self.bind_expr(expr, inner_scope)?);
                            names.push(output_name(alias.as_deref(), expr, i));
                        }
                        _ => {
                            // Wildcards in EXISTS: nothing to project.
                        }
                    }
                }
            }
        }
        if exprs.is_empty() {
            // EXISTS(SELECT * ...): keys only.
            let mut schema = Vec::new();
            let mut kexprs = Vec::new();
            for (i, k) in rkeys.iter().enumerate() {
                schema.push(OutCol { name: format!("k{i}"), ty: k.ty() });
                kexprs.push(k.clone());
            }
            for (i, k) in rkeys.iter_mut().enumerate() {
                *k = BExpr::ColRef { idx: i, ty: k.ty() };
            }
            let scope = Scope {
                cols: schema
                    .iter()
                    .map(|c| ScopeCol { qualifier: None, name: c.name.clone(), ty: c.ty })
                    .collect(),
            };
            return Ok((
                Plan::Project { input: Box::new(inner_plan), exprs: kexprs, schema },
                scope,
            ));
        }
        let nout = exprs.len();
        let mut schema: Vec<OutCol> =
            exprs.iter().zip(&names).map(|(e, n)| OutCol { name: n.clone(), ty: e.ty() }).collect();
        for (i, k) in rkeys.iter_mut().enumerate() {
            exprs.push(k.clone());
            schema.push(OutCol { name: format!("k{i}"), ty: k.ty() });
            *k = BExpr::ColRef { idx: nout + i, ty: k.ty() };
        }
        let scope = Scope {
            cols: schema[..nout]
                .iter()
                .map(|c| ScopeCol { qualifier: None, name: c.name.clone(), ty: c.ty })
                .collect(),
        };
        Ok((Plan::Project { input: Box::new(inner_plan), exprs, schema }, scope))
    }

    fn classify_conjunct(&self, e: &ast::Expr, inner: &Scope, outer: &Scope) -> Result<Classified> {
        // Pure inner predicate?
        if let Ok(b) = self.bind_expr(e, inner) {
            return Ok(Classified::Inner(b));
        }
        // Correlated equality?
        if let ast::Expr::Binary { op: ast::BinOp::Eq, left, right } = e {
            let l_inner = self.bind_expr(left, inner);
            let r_inner = self.bind_expr(right, inner);
            let l_outer = self.bind_expr(left, outer);
            let r_outer = self.bind_expr(right, outer);
            if let (Ok(ik), Ok(ok)) = (&l_inner, &r_outer) {
                let (ok2, ik2) = coerce_pair(ok.clone(), ik.clone())?;
                return Ok(Classified::CorrelatedEq { outer_key: ok2, inner_key: ik2 });
            }
            if let (Ok(ik), Ok(ok)) = (&r_inner, &l_outer) {
                let (ok2, ik2) = coerce_pair(ok.clone(), ik.clone())?;
                return Ok(Classified::CorrelatedEq { outer_key: ok2, inner_key: ik2 });
            }
        }
        Err(MlError::Unsupported(format!("unsupported correlated predicate in subquery: {e:?}")))
    }

    // -- expressions -------------------------------------------------------

    fn bind_expr_outer(
        &self,
        e: &ast::Expr,
        scope: &Scope,
        _outer: Option<&Scope>,
    ) -> Result<BExpr> {
        self.bind_expr(e, scope)
    }

    fn bind_expr_bool(&self, e: &ast::Expr, scope: &Scope, outer: Option<&Scope>) -> Result<BExpr> {
        let b = self.bind_expr_outer(e, scope, outer)?;
        if b.ty() != LogicalType::Bool {
            return Err(MlError::TypeMismatch(format!(
                "predicate must be BOOLEAN, got {}",
                b.ty()
            )));
        }
        Ok(b)
    }

    /// Bind an expression in a plain scope.
    pub fn bind_expr(&self, e: &ast::Expr, scope: &Scope) -> Result<BExpr> {
        match e {
            ast::Expr::Column { table, name } => {
                let (idx, ty) = scope.resolve(table.as_deref(), name)?;
                Ok(BExpr::ColRef { idx, ty })
            }
            ast::Expr::Literal(v) => Ok(BExpr::Lit(v.clone())),
            ast::Expr::Interval { .. } => {
                Err(MlError::Bind("INTERVAL is only valid in date arithmetic".into()))
            }
            ast::Expr::Binary { op, left, right } => self.bind_binary(*op, left, right, scope),
            ast::Expr::Not(inner) => {
                let b = self.bind_expr(inner, scope)?;
                if b.ty() != LogicalType::Bool {
                    return Err(MlError::TypeMismatch("NOT requires a BOOLEAN".into()));
                }
                Ok(BExpr::Not(Box::new(b)))
            }
            ast::Expr::Neg(inner) => {
                let b = self.bind_expr(inner, scope)?;
                let ty = b.ty();
                if !ty.is_numeric() {
                    return Err(MlError::TypeMismatch("unary '-' requires a numeric".into()));
                }
                Ok(BExpr::Neg { input: Box::new(b), ty })
            }
            ast::Expr::IsNull { expr, negated } => {
                let b = self.bind_expr(expr, scope)?;
                Ok(BExpr::IsNull { input: Box::new(b), negated: *negated })
            }
            ast::Expr::Like { expr, pattern, negated } => {
                let b = self.bind_expr(expr, scope)?;
                if b.ty() != LogicalType::Varchar {
                    return Err(MlError::TypeMismatch("LIKE requires a VARCHAR operand".into()));
                }
                Ok(BExpr::Like { input: Box::new(b), pattern: pattern.clone(), negated: *negated })
            }
            ast::Expr::Between { expr, low, high, negated } => {
                // Desugar: x BETWEEN a AND b == x >= a AND x <= b.
                let ge = ast::Expr::Binary {
                    op: ast::BinOp::GtEq,
                    left: expr.clone(),
                    right: low.clone(),
                };
                let le = ast::Expr::Binary {
                    op: ast::BinOp::LtEq,
                    left: expr.clone(),
                    right: high.clone(),
                };
                let both = ast::Expr::Binary {
                    op: ast::BinOp::And,
                    left: Box::new(ge),
                    right: Box::new(le),
                };
                let b = self.bind_expr(&both, scope)?;
                Ok(if *negated { BExpr::Not(Box::new(b)) } else { b })
            }
            ast::Expr::InList { expr, list, negated } => {
                // Desugar to an OR chain of equalities.
                let mut it = list.iter();
                let first =
                    it.next().ok_or_else(|| MlError::Bind("IN list must not be empty".into()))?;
                let mut acc = ast::Expr::Binary {
                    op: ast::BinOp::Eq,
                    left: expr.clone(),
                    right: Box::new(first.clone()),
                };
                for item in it {
                    let eq = ast::Expr::Binary {
                        op: ast::BinOp::Eq,
                        left: expr.clone(),
                        right: Box::new(item.clone()),
                    };
                    acc = ast::Expr::Binary {
                        op: ast::BinOp::Or,
                        left: Box::new(acc),
                        right: Box::new(eq),
                    };
                }
                let b = self.bind_expr(&acc, scope)?;
                Ok(if *negated { BExpr::Not(Box::new(b)) } else { b })
            }
            ast::Expr::InSubquery { .. } | ast::Expr::Exists { .. } => Err(MlError::Unsupported(
                "subquery predicates are only supported as top-level WHERE conjuncts".into(),
            )),
            ast::Expr::ScalarSubquery(_) => Err(MlError::Unsupported(
                "scalar subqueries are only supported in top-level WHERE comparisons".into(),
            )),
            ast::Expr::Case { branches, else_expr } => {
                let mut bound: Vec<(BExpr, BExpr)> = Vec::new();
                for (c, v) in branches {
                    let bc = self.bind_expr(c, scope)?;
                    if bc.ty() != LogicalType::Bool {
                        return Err(MlError::TypeMismatch("WHEN condition must be BOOLEAN".into()));
                    }
                    bound.push((bc, self.bind_expr(v, scope)?));
                }
                let belse = else_expr.as_ref().map(|e| self.bind_expr(e, scope)).transpose()?;
                // Common result type across all branch values.
                let mut ty = bound[0].1.ty();
                for (_, v) in &bound[1..] {
                    ty = LogicalType::common_super_type(ty, v.ty())?;
                }
                if let Some(e) = &belse {
                    if !matches!(e, BExpr::Lit(Value::Null)) {
                        ty = LogicalType::common_super_type(ty, e.ty())?;
                    }
                }
                let branches = bound
                    .into_iter()
                    .map(|(c, v)| Ok((c, cast_to(v, ty)?)))
                    .collect::<Result<Vec<_>>>()?;
                let else_expr = belse.map(|e| cast_to(e, ty).map(Box::new)).transpose()?;
                Ok(BExpr::Case { branches, else_expr, ty })
            }
            ast::Expr::Agg { .. } => {
                Err(MlError::Bind("aggregate functions are not allowed here".into()))
            }
            ast::Expr::Extract { field, expr } => {
                let b = self.bind_expr(expr, scope)?;
                if b.ty() != LogicalType::Date {
                    return Err(MlError::TypeMismatch("EXTRACT requires a DATE".into()));
                }
                let func = match field {
                    ast::DateField::Year => ScalarFunc::Year,
                    ast::DateField::Month => ScalarFunc::Month,
                    ast::DateField::Day => ScalarFunc::Day,
                };
                Ok(BExpr::Func { func, args: vec![b], ty: LogicalType::Int })
            }
            ast::Expr::Cast { expr, ty } => {
                let b = self.bind_expr(expr, scope)?;
                cast_to(b, *ty)
            }
            ast::Expr::Function { name, args } => self.bind_function(name, args, scope),
        }
    }

    fn bind_binary(
        &self,
        op: ast::BinOp,
        left: &ast::Expr,
        right: &ast::Expr,
        scope: &Scope,
    ) -> Result<BExpr> {
        use ast::BinOp as B;
        match op {
            B::And | B::Or => {
                let l = self.bind_expr(left, scope)?;
                let r = self.bind_expr(right, scope)?;
                if l.ty() != LogicalType::Bool || r.ty() != LogicalType::Bool {
                    return Err(MlError::TypeMismatch("AND/OR require BOOLEAN operands".into()));
                }
                Ok(if op == B::And {
                    BExpr::And(Box::new(l), Box::new(r))
                } else {
                    BExpr::Or(Box::new(l), Box::new(r))
                })
            }
            B::Eq | B::NotEq | B::Lt | B::LtEq | B::Gt | B::GtEq => {
                let l = self.bind_expr(left, scope)?;
                let r = self.bind_expr(right, scope)?;
                let (l, r) = coerce_pair(l, r)?;
                Ok(BExpr::Cmp { op: bin_to_cmp(op)?, left: Box::new(l), right: Box::new(r) })
            }
            B::Add | B::Sub | B::Mul | B::Div | B::Mod => {
                // Date ± INTERVAL and DATE - DATE first.
                if let ast::Expr::Interval { value, unit } = right {
                    let l = self.bind_expr(left, scope)?;
                    if l.ty() != LogicalType::Date {
                        return Err(MlError::TypeMismatch(
                            "INTERVAL arithmetic requires a DATE".into(),
                        ));
                    }
                    let signed = if op == B::Sub { -*value } else { *value };
                    if op != B::Add && op != B::Sub {
                        return Err(MlError::TypeMismatch(
                            "only + and - are defined on dates".into(),
                        ));
                    }
                    // Fold literal date ± interval at bind time.
                    if let BExpr::Lit(Value::Date(d)) = &l {
                        let nd = match unit {
                            ast::IntervalUnit::Day => d.add_days(signed),
                            ast::IntervalUnit::Month => d.add_months(signed),
                            ast::IntervalUnit::Year => d.add_years(signed),
                        };
                        return Ok(BExpr::Lit(Value::Date(nd)));
                    }
                    // Column date ± interval: dedicated date-shift function.
                    let func = match unit {
                        ast::IntervalUnit::Day => ScalarFunc::AddDays,
                        ast::IntervalUnit::Month => ScalarFunc::AddMonths,
                        ast::IntervalUnit::Year => ScalarFunc::AddYears,
                    };
                    return Ok(BExpr::Func {
                        func,
                        args: vec![l, BExpr::Lit(Value::Int(signed))],
                        ty: LogicalType::Date,
                    });
                }
                let l = self.bind_expr(left, scope)?;
                let r = self.bind_expr(right, scope)?;
                // DATE - DATE → days (INTEGER).
                if l.ty() == LogicalType::Date && r.ty() == LogicalType::Date && op == B::Sub {
                    return Ok(BExpr::Arith {
                        op: ArithOp::Sub,
                        left: Box::new(l),
                        right: Box::new(r),
                        ty: LogicalType::Int,
                    });
                }
                bind_arith(bin_to_arith(op), l, r)
            }
        }
    }

    fn bind_function(&self, name: &str, args: &[ast::Expr], scope: &Scope) -> Result<BExpr> {
        let bound: Vec<BExpr> =
            args.iter().map(|a| self.bind_expr(a, scope)).collect::<Result<_>>()?;
        let argc = bound.len();
        let wrong =
            |want: usize| MlError::Bind(format!("{name} expects {want} argument(s), got {argc}"));
        match name {
            "sqrt" | "floor" | "ceil" | "ceiling" => {
                if argc != 1 {
                    return Err(wrong(1));
                }
                let a = cast_to(bound.into_iter().next().unwrap(), LogicalType::Double)?;
                let func = match name {
                    "sqrt" => ScalarFunc::Sqrt,
                    "floor" => ScalarFunc::Floor,
                    _ => ScalarFunc::Ceil,
                };
                Ok(BExpr::Func { func, args: vec![a], ty: LogicalType::Double })
            }
            "abs" => {
                if argc != 1 {
                    return Err(wrong(1));
                }
                let a = bound.into_iter().next().unwrap();
                let ty = a.ty();
                if !ty.is_numeric() {
                    return Err(MlError::TypeMismatch("abs requires a numeric".into()));
                }
                Ok(BExpr::Func { func: ScalarFunc::Abs, args: vec![a], ty })
            }
            "upper" | "lower" => {
                if argc != 1 {
                    return Err(wrong(1));
                }
                let a = bound.into_iter().next().unwrap();
                if a.ty() != LogicalType::Varchar {
                    return Err(MlError::TypeMismatch(format!("{name} requires a VARCHAR")));
                }
                let func = if name == "upper" { ScalarFunc::Upper } else { ScalarFunc::Lower };
                Ok(BExpr::Func { func, args: vec![a], ty: LogicalType::Varchar })
            }
            "length" => {
                if argc != 1 {
                    return Err(wrong(1));
                }
                let a = bound.into_iter().next().unwrap();
                if a.ty() != LogicalType::Varchar {
                    return Err(MlError::TypeMismatch("length requires a VARCHAR".into()));
                }
                Ok(BExpr::Func { func: ScalarFunc::Length, args: vec![a], ty: LogicalType::Int })
            }
            "substring" | "substr" => {
                if argc != 3 {
                    return Err(wrong(3));
                }
                let mut it = bound.into_iter();
                let s = it.next().unwrap();
                if s.ty() != LogicalType::Varchar {
                    return Err(MlError::TypeMismatch("substring requires a VARCHAR".into()));
                }
                let from = cast_to(it.next().unwrap(), LogicalType::Int)?;
                let len = cast_to(it.next().unwrap(), LogicalType::Int)?;
                Ok(BExpr::Func {
                    func: ScalarFunc::Substring,
                    args: vec![s, from, len],
                    ty: LogicalType::Varchar,
                })
            }
            "year" | "month" | "day" => {
                if argc != 1 {
                    return Err(wrong(1));
                }
                let a = bound.into_iter().next().unwrap();
                if a.ty() != LogicalType::Date {
                    return Err(MlError::TypeMismatch(format!("{name} requires a DATE")));
                }
                let func = match name {
                    "year" => ScalarFunc::Year,
                    "month" => ScalarFunc::Month,
                    _ => ScalarFunc::Day,
                };
                Ok(BExpr::Func { func, args: vec![a], ty: LogicalType::Int })
            }
            other => Err(MlError::Bind(format!("unknown function '{other}'"))),
        }
    }

    /// Bind an expression allowed to contain aggregates: aggregate calls
    /// become references into the Aggregate node's output; subexpressions
    /// equal to a GROUP BY key become group-column references.
    fn bind_agg_expr(
        &self,
        e: &ast::Expr,
        input: &Scope,
        groups: &[BExpr],
        aggs: &mut Vec<AggSpec>,
    ) -> Result<BExpr> {
        // A subexpression identical to a group key resolves to that key's
        // output column.
        if let Ok(b) = self.bind_expr(e, input) {
            if let Some(pos) = groups.iter().position(|g| *g == b) {
                return Ok(BExpr::ColRef { idx: pos, ty: b.ty() });
            }
            if b.is_const() {
                return Ok(b);
            }
        }
        match e {
            ast::Expr::Agg { func, arg, distinct } => {
                let arg_b = arg.as_ref().map(|a| self.bind_expr(a, input)).transpose()?;
                let pfunc = match func {
                    ast::AggFunc::Count => PAggFunc::Count,
                    ast::AggFunc::Sum => PAggFunc::Sum,
                    ast::AggFunc::Avg => PAggFunc::Avg,
                    ast::AggFunc::Min => PAggFunc::Min,
                    ast::AggFunc::Max => PAggFunc::Max,
                    ast::AggFunc::Median => PAggFunc::Median,
                };
                let ty = agg_output_type(pfunc, arg_b.as_ref().map(|a| a.ty()));
                let spec = AggSpec { func: pfunc, arg: arg_b, distinct: *distinct, ty };
                let pos = match aggs.iter().position(|a| *a == spec) {
                    Some(p) => p,
                    None => {
                        aggs.push(spec);
                        aggs.len() - 1
                    }
                };
                Ok(BExpr::ColRef { idx: groups.len() + pos, ty })
            }
            ast::Expr::Binary { op, left, right } => {
                // Rebind children in aggregate context, then re-run the
                // binary typing rules on the bound pieces.
                let l = self.bind_agg_expr(left, input, groups, aggs)?;
                let r = self.bind_agg_expr(right, input, groups, aggs)?;
                rebuild_binary(*op, l, r)
            }
            ast::Expr::Neg(inner) => {
                let b = self.bind_agg_expr(inner, input, groups, aggs)?;
                let ty = b.ty();
                Ok(BExpr::Neg { input: Box::new(b), ty })
            }
            ast::Expr::Case { branches, else_expr } => {
                let mut bound = Vec::new();
                for (c, v) in branches {
                    bound.push((
                        self.bind_agg_expr(c, input, groups, aggs)?,
                        self.bind_agg_expr(v, input, groups, aggs)?,
                    ));
                }
                let belse = else_expr
                    .as_ref()
                    .map(|e| self.bind_agg_expr(e, input, groups, aggs))
                    .transpose()?;
                let mut ty = bound[0].1.ty();
                for (_, v) in &bound[1..] {
                    ty = LogicalType::common_super_type(ty, v.ty())?;
                }
                if let Some(e) = &belse {
                    if !matches!(e, BExpr::Lit(Value::Null)) {
                        ty = LogicalType::common_super_type(ty, e.ty())?;
                    }
                }
                let branches = bound
                    .into_iter()
                    .map(|(c, v)| Ok((c, cast_to(v, ty)?)))
                    .collect::<Result<Vec<_>>>()?;
                let else_expr = belse.map(|e| cast_to(e, ty).map(Box::new)).transpose()?;
                Ok(BExpr::Case { branches, else_expr, ty })
            }
            ast::Expr::Cast { expr, ty } => {
                let b = self.bind_agg_expr(expr, input, groups, aggs)?;
                cast_to(b, *ty)
            }
            ast::Expr::Extract { .. } | ast::Expr::Function { .. } => {
                // Non-aggregate functions over group keys were handled by
                // the group-key match above; reaching here means the
                // argument is not a group key.
                Err(MlError::Bind(format!("expression {e:?} must appear in the GROUP BY clause")))
            }
            other => Err(MlError::Bind(format!(
                "expression {other:?} must appear in GROUP BY or be inside an aggregate"
            ))),
        }
    }
}

enum Classified {
    Inner(BExpr),
    CorrelatedEq { outer_key: BExpr, inner_key: BExpr },
}

fn split_conjuncts<'e>(e: &'e ast::Expr, out: &mut Vec<&'e ast::Expr>) {
    if let ast::Expr::Binary { op: ast::BinOp::And, left, right } = e {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(e);
    }
}

fn bin_to_cmp(op: ast::BinOp) -> Result<CmpOp> {
    Ok(match op {
        ast::BinOp::Eq => CmpOp::Eq,
        ast::BinOp::NotEq => CmpOp::NotEq,
        ast::BinOp::Lt => CmpOp::Lt,
        ast::BinOp::LtEq => CmpOp::LtEq,
        ast::BinOp::Gt => CmpOp::Gt,
        ast::BinOp::GtEq => CmpOp::GtEq,
        other => return Err(MlError::Bind(format!("{other:?} is not a comparison"))),
    })
}

fn bin_to_arith(op: ast::BinOp) -> ArithOp {
    match op {
        ast::BinOp::Add => ArithOp::Add,
        ast::BinOp::Sub => ArithOp::Sub,
        ast::BinOp::Mul => ArithOp::Mul,
        ast::BinOp::Div => ArithOp::Div,
        _ => ArithOp::Mod,
    }
}

/// Re-apply binary typing rules to already-bound operands.
pub fn rebuild_binary(op: ast::BinOp, l: BExpr, r: BExpr) -> Result<BExpr> {
    use ast::BinOp as B;
    match op {
        B::And => Ok(BExpr::And(Box::new(l), Box::new(r))),
        B::Or => Ok(BExpr::Or(Box::new(l), Box::new(r))),
        B::Eq | B::NotEq | B::Lt | B::LtEq | B::Gt | B::GtEq => {
            let (l, r) = coerce_pair(l, r)?;
            Ok(BExpr::Cmp { op: bin_to_cmp(op)?, left: Box::new(l), right: Box::new(r) })
        }
        B::Add | B::Sub | B::Mul | B::Div | B::Mod => bind_arith(bin_to_arith(op), l, r),
    }
}

/// Numeric/typed arithmetic rules; inserts casts so kernels see one type.
pub fn bind_arith(op: ArithOp, l: BExpr, r: BExpr) -> Result<BExpr> {
    use LogicalType as T;
    let (lt, rt) = (l.ty(), r.ty());
    if !lt.is_numeric() || !rt.is_numeric() {
        return Err(MlError::TypeMismatch(format!(
            "arithmetic requires numeric operands, got {lt} and {rt}"
        )));
    }
    // Division always computes in double (MonetDB's decimal division
    // semantics differ; DOUBLE keeps every TPC-H aggregate exact enough
    // and avoids scale explosions).
    if op == ArithOp::Div {
        let l = cast_to(l, T::Double)?;
        let r = cast_to(r, T::Double)?;
        return Ok(BExpr::Arith { op, left: Box::new(l), right: Box::new(r), ty: T::Double });
    }
    let ty = LogicalType::common_super_type(lt, rt)?;
    match ty {
        T::Decimal { .. } => {
            let (ls, rs) = (scale_of(lt), scale_of(rt));
            match op {
                ArithOp::Mul => {
                    let s = ls + rs;
                    if s > 18 {
                        let l = cast_to(l, T::Double)?;
                        let r = cast_to(r, T::Double)?;
                        return Ok(BExpr::Arith {
                            op,
                            left: Box::new(l),
                            right: Box::new(r),
                            ty: T::Double,
                        });
                    }
                    // Operands keep their own scales; result scale = sum.
                    let l = to_decimal(l, ls)?;
                    let r = to_decimal(r, rs)?;
                    Ok(BExpr::Arith {
                        op,
                        left: Box::new(l),
                        right: Box::new(r),
                        ty: T::Decimal { width: 18, scale: s },
                    })
                }
                ArithOp::Add | ArithOp::Sub => {
                    let s = ls.max(rs);
                    let l = to_decimal(l, s)?;
                    let r = to_decimal(r, s)?;
                    Ok(BExpr::Arith {
                        op,
                        left: Box::new(l),
                        right: Box::new(r),
                        ty: T::Decimal { width: 18, scale: s },
                    })
                }
                ArithOp::Mod => Err(MlError::TypeMismatch("% is not defined on DECIMAL".into())),
                ArithOp::Div => unreachable!("handled above"),
            }
        }
        other => {
            let l = cast_to(l, other)?;
            let r = cast_to(r, other)?;
            Ok(BExpr::Arith { op, left: Box::new(l), right: Box::new(r), ty: other })
        }
    }
}

fn scale_of(ty: LogicalType) -> u8 {
    match ty {
        LogicalType::Decimal { scale, .. } => scale,
        _ => 0,
    }
}

fn to_decimal(e: BExpr, scale: u8) -> Result<BExpr> {
    cast_to(e, LogicalType::Decimal { width: 18, scale })
}

/// Insert a cast unless the expression already has the target type;
/// literal casts fold immediately.
pub fn cast_to(e: BExpr, ty: LogicalType) -> Result<BExpr> {
    if e.ty() == ty {
        return Ok(e);
    }
    if let BExpr::Lit(v) = &e {
        if let Some(folded) = fold_literal_cast(v, ty)? {
            return Ok(BExpr::Lit(folded));
        }
    }
    Ok(BExpr::Cast { input: Box::new(e), ty })
}

fn fold_literal_cast(v: &Value, ty: LogicalType) -> Result<Option<Value>> {
    use LogicalType as T;
    Ok(match (v, ty) {
        (Value::Null, _) => Some(Value::Null),
        (Value::Int(x), T::Bigint) => Some(Value::Bigint(*x as i64)),
        (Value::Int(x), T::Double) => Some(Value::Double(*x as f64)),
        (Value::Int(x), T::Decimal { scale, .. }) => {
            Some(Value::Decimal(monetlite_types::Decimal::new(*x as i64, 0).rescale(scale)?))
        }
        (Value::Bigint(x), T::Double) => Some(Value::Double(*x as f64)),
        (Value::Decimal(d), T::Double) => Some(Value::Double(d.to_f64())),
        (Value::Decimal(d), T::Decimal { scale, .. }) => Some(Value::Decimal(d.rescale(scale)?)),
        (Value::Str(s), T::Date) => Some(Value::Date(Date::parse(s)?)),
        (Value::Str(s), T::Varchar) => Some(Value::Str(s.clone())),
        _ => None,
    })
}

/// Coerce a comparison pair to a common type.
pub fn coerce_pair(l: BExpr, r: BExpr) -> Result<(BExpr, BExpr)> {
    let (lt, rt) = (l.ty(), r.ty());
    if lt == rt {
        return Ok((l, r));
    }
    // Date vs string literal: parse the literal.
    if lt == LogicalType::Date && rt == LogicalType::Varchar {
        let r = cast_to(r, LogicalType::Date)?;
        return Ok((l, r));
    }
    if rt == LogicalType::Date && lt == LogicalType::Varchar {
        let l = cast_to(l, LogicalType::Date)?;
        return Ok((l, r));
    }
    let common = LogicalType::common_super_type(lt, rt)?;
    // Decimal comparisons align scales.
    let common = match common {
        LogicalType::Decimal { width, .. } => {
            LogicalType::Decimal { width, scale: scale_of(lt).max(scale_of(rt)) }
        }
        other => other,
    };
    Ok((cast_to(l, common)?, cast_to(r, common)?))
}

fn output_name(alias: Option<&str>, expr: &ast::Expr, pos: usize) -> String {
    if let Some(a) = alias {
        return a.to_ascii_lowercase();
    }
    match expr {
        ast::Expr::Column { name, .. } => name.to_ascii_lowercase(),
        ast::Expr::Agg { func, .. } => format!("{func:?}").to_ascii_lowercase(),
        _ => format!("col{pos}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_types::Field;
    use std::collections::HashMap;

    struct MockCatalog {
        tables: HashMap<String, Schema>,
    }

    impl CatalogAccess for MockCatalog {
        fn table_schema(&self, name: &str) -> Result<Schema> {
            self.tables
                .get(&name.to_ascii_lowercase())
                .cloned()
                .ok_or_else(|| MlError::Catalog(format!("unknown table '{name}'")))
        }
    }

    fn catalog() -> MockCatalog {
        let mut tables = HashMap::new();
        tables.insert(
            "t".to_string(),
            Schema::new(vec![
                Field::not_null("a", LogicalType::Int),
                Field::new("b", LogicalType::Varchar),
                Field::new("d", LogicalType::Date),
                Field::new("p", LogicalType::Decimal { width: 15, scale: 2 }),
            ])
            .unwrap(),
        );
        tables.insert(
            "u".to_string(),
            Schema::new(vec![
                Field::not_null("a", LogicalType::Int),
                Field::new("x", LogicalType::Double),
            ])
            .unwrap(),
        );
        MockCatalog { tables }
    }

    fn bind(sql: &str) -> Result<Plan> {
        let stmt = monetlite_sql::parse_statement(sql)?;
        let cat = catalog();
        match stmt {
            monetlite_sql::Statement::Select(s) => Binder::new(&cat).bind_select(&s),
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_projection_types() {
        let p = bind("SELECT a, b FROM t").unwrap();
        assert_eq!(p.schema()[0].ty, LogicalType::Int);
        assert_eq!(p.schema()[1].ty, LogicalType::Varchar);
    }

    #[test]
    fn wildcard_expansion() {
        let p = bind("SELECT * FROM t").unwrap();
        assert_eq!(p.schema().len(), 4);
        assert_eq!(p.schema()[3].name, "p");
    }

    #[test]
    fn unknown_column_is_bind_error() {
        assert!(matches!(bind("SELECT nope FROM t"), Err(MlError::Bind(_))));
        assert!(matches!(bind("SELECT z.a FROM t"), Err(MlError::Bind(_))));
    }

    #[test]
    fn ambiguity_detected() {
        assert!(matches!(bind("SELECT a FROM t, u"), Err(MlError::Bind(_))));
        assert!(bind("SELECT t.a FROM t, u").is_ok());
    }

    #[test]
    fn comparison_inserts_cast() {
        // int vs decimal literal → decimal comparison via cast.
        let p = bind("SELECT a FROM t WHERE a > 1.5").unwrap();
        let s = p.render();
        assert!(s.contains("cast"), "expected cast in {s}");
    }

    #[test]
    fn decimal_multiply_scales_add() {
        let p = bind("SELECT p * p AS sq FROM t").unwrap();
        assert_eq!(p.schema()[0].ty, LogicalType::Decimal { width: 18, scale: 4 });
    }

    #[test]
    fn division_is_double() {
        let p = bind("SELECT a / 2 AS h FROM t").unwrap();
        assert_eq!(p.schema()[0].ty, LogicalType::Double);
    }

    #[test]
    fn date_interval_folds_at_bind() {
        let p = bind("SELECT a FROM t WHERE d <= date '1998-12-01' - interval '90' day").unwrap();
        let s = p.render();
        assert!(s.contains("1998-09-02"), "interval should fold: {s}");
    }

    #[test]
    fn date_string_comparison_coerces() {
        let p = bind("SELECT a FROM t WHERE d = '1995-01-01'").unwrap();
        let s = p.render();
        assert!(s.contains("1995-01-01"));
    }

    #[test]
    fn group_by_and_aggregates() {
        let p = bind("SELECT b, sum(a) AS s, count(*) AS c FROM t GROUP BY b").unwrap();
        match &p {
            Plan::Project { input, .. } => match input.as_ref() {
                Plan::Aggregate { groups, aggs, .. } => {
                    assert_eq!(groups.len(), 1);
                    assert_eq!(aggs.len(), 2);
                    assert_eq!(aggs[0].ty, LogicalType::Bigint);
                }
                other => panic!("expected aggregate, got {other:?}"),
            },
            other => panic!("expected project, got {other:?}"),
        }
    }

    #[test]
    fn aggregate_dedup() {
        // sum(a) referenced twice becomes one AggSpec.
        let p = bind("SELECT sum(a), sum(a) + 1 FROM t").unwrap();
        match &p {
            Plan::Project { input, .. } => match input.as_ref() {
                Plan::Aggregate { aggs, .. } => assert_eq!(aggs.len(), 1),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_grouped_column_rejected() {
        assert!(matches!(bind("SELECT b, a, sum(a) FROM t GROUP BY b"), Err(MlError::Bind(_))));
    }

    #[test]
    fn having_binds_in_agg_context() {
        let p = bind("SELECT b FROM t GROUP BY b HAVING count(*) > 2").unwrap();
        // Filter sits between aggregate and project.
        match &p {
            Plan::Project { input, .. } => {
                assert!(matches!(input.as_ref(), Plan::Filter { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn order_by_alias_and_ordinal() {
        let p = bind("SELECT a AS x, b FROM t ORDER BY x DESC, 2").unwrap();
        match &p {
            Plan::Sort { keys, .. } => assert_eq!(keys, &vec![(0, true), (1, false)]),
            other => panic!("{other:?}"),
        }
        assert!(bind("SELECT a FROM t ORDER BY 5").is_err());
        assert!(bind("SELECT a FROM t ORDER BY nope").is_err());
    }

    #[test]
    fn exists_flattens_to_semi_join() {
        let p =
            bind("SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.a = t.a AND u.x > 0.5)")
                .unwrap();
        let s = p.render();
        assert!(s.contains("semi join"), "{s}");
        assert!(s.contains("filter") || s.contains("where"), "inner filter retained: {s}");
    }

    #[test]
    fn not_exists_flattens_to_anti_join() {
        let p = bind("SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.a = t.a)").unwrap();
        assert!(p.render().contains("anti join"));
    }

    #[test]
    fn in_subquery_flattens_to_semi_join() {
        let p = bind("SELECT a FROM t WHERE a IN (SELECT a FROM u)").unwrap();
        assert!(p.render().contains("semi join"));
    }

    #[test]
    fn correlated_scalar_agg_flattens() {
        // Q2's shape.
        let p = bind("SELECT a FROM t WHERE p = (SELECT min(x) FROM u WHERE u.a = t.a)").unwrap();
        let s = p.render();
        assert!(s.contains("left join"), "{s}");
        assert!(s.contains("min"), "{s}");
    }

    #[test]
    fn case_types_unify() {
        let p = bind("SELECT sum(CASE WHEN b = 'x' THEN p ELSE 0 END) FROM t").unwrap();
        match &p {
            Plan::Project { input, .. } => match input.as_ref() {
                Plan::Aggregate { aggs, .. } => {
                    assert_eq!(aggs[0].ty, LogicalType::Decimal { width: 18, scale: 2 });
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_without_from() {
        let p = bind("SELECT 1 + 2 AS x").unwrap();
        assert_eq!(p.schema()[0].name, "x");
    }

    #[test]
    fn like_requires_string() {
        assert!(bind("SELECT a FROM t WHERE b LIKE '%x%'").is_ok());
        assert!(matches!(
            bind("SELECT a FROM t WHERE a LIKE '%x%'"),
            Err(MlError::TypeMismatch(_))
        ));
    }

    #[test]
    fn between_desugars() {
        let p = bind("SELECT a FROM t WHERE a BETWEEN 1 AND 5").unwrap();
        let s = p.render();
        assert!(s.contains(">=") && s.contains("<="), "{s}");
    }

    #[test]
    fn in_list_desugars_to_ors() {
        let p = bind("SELECT a FROM t WHERE b IN ('x', 'y')").unwrap();
        let s = p.render();
        assert!(s.contains("or"), "{s}");
    }

    #[test]
    fn explicit_join_keys_left_in_residual() {
        let p = bind("SELECT t.a FROM t JOIN u ON t.a = u.a").unwrap();
        let s = p.render();
        assert!(s.contains("residual"), "keys extracted later by optimizer: {s}");
    }
}
