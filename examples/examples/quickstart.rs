//! Quickstart: the embedded database in five minutes.
//!
//! ```sh
//! cargo run --release -p monetlite-examples --example quickstart
//! ```

use monetlite::host::{HostFrame, TransferMode};
use monetlite::Database;

fn main() -> monetlite::types::Result<()> {
    // No server, no config, no dependencies: open an in-memory database
    // (pass a directory to Database::open for persistence).
    let db = Database::open_in_memory();
    let mut conn = db.connect();

    conn.run_script(
        "CREATE TABLE weather (city VARCHAR(20) NOT NULL, day DATE, temp_c DOUBLE);
         INSERT INTO weather VALUES
            ('Amsterdam', date '2018-10-22', 12.5),
            ('Amsterdam', date '2018-10-23', 11.0),
            ('Turin',     date '2018-10-22', 19.5),
            ('Turin',     date '2018-10-23', 21.0),
            ('Turin',     date '2018-10-24', NULL);",
    )?;

    let result = conn.query(
        "SELECT city, count(*) AS days, avg(temp_c) AS avg_temp
         FROM weather
         WHERE temp_c IS NOT NULL
         GROUP BY city
         ORDER BY avg_temp DESC",
    )?;
    println!("{:?}", result.names());
    for r in 0..result.nrows() {
        println!("{:?}", result.row(r));
    }

    // Zero-copy transfer into the "analytical environment": fixed-width
    // columns are shared, not copied (paper §3.3).
    let all = conn.query("SELECT * FROM weather")?;
    let frame = HostFrame::import(&all, TransferMode::ZeroCopy);
    println!(
        "host import: {} columns shared zero-copy, {} converted, {} bytes copied",
        frame.stats.zero_copied, frame.stats.converted, frame.stats.bytes_copied
    );

    // Explicit transactions with optimistic concurrency control.
    conn.execute("BEGIN")?;
    conn.execute("UPDATE weather SET temp_c = temp_c + 1.0 WHERE city = 'Turin'")?;
    conn.execute("COMMIT")?;
    let check =
        conn.query("SELECT temp_c FROM weather WHERE day = date '2018-10-23' AND city = 'Turin'")?;
    println!("after update: {:?}", check.value(0, 0));
    Ok(())
}
