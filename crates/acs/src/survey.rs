//! Survey-package statistics: weighted estimates with standard errors
//! from successive difference replication (the R `survey` package's
//! `svrepdesign` path used by the paper's ACS script).
//!
//! The estimator for a statistic θ with replicate estimates θ₁..θ₈₀ is
//! `SE(θ) = sqrt(4/80 · Σᵣ (θᵣ − θ)²)`. The replicate loop is the
//! host-side compute that dominates Figure 8 regardless of the database
//! engine.

use crate::N_REPLICATES;
use monetlite_frame::ops;
use monetlite_types::{ColumnBuffer, MlError, Result};

/// A point estimate with its replication standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The full-sample weighted estimate.
    pub value: f64,
    /// Successive-difference-replication standard error.
    pub se: f64,
}

/// Abstracts "get me these columns of the acs table" so the same analysis
/// runs over any backend (embedded zero-copy export, row store, socket).
pub trait ColumnSource {
    /// Fetch columns by name, aligned row-wise.
    fn columns(&mut self, names: &[&str]) -> Result<Vec<ColumnBuffer>>;
}

fn replicate_names() -> Vec<String> {
    (1..=N_REPLICATES).map(|r| format!("pwgtp{r}")).collect()
}

/// Weighted total of `var` with SDR standard error.
pub fn weighted_total(src: &mut dyn ColumnSource, var: &str) -> Result<Estimate> {
    let rep_names = replicate_names();
    let mut names: Vec<&str> = vec![var, "pwgtp"];
    names.extend(rep_names.iter().map(|s| s.as_str()));
    let cols = src.columns(&names)?;
    let x = ops::to_f64(&cols[0])?;
    let w = ops::to_f64(&cols[1])?;
    let theta = dot_ignore_nan(&x, &w);
    let mut sq = 0.0;
    for rep in &cols[2..] {
        let wr = ops::to_f64(rep)?;
        let tr = dot_ignore_nan(&x, &wr);
        sq += (tr - theta) * (tr - theta);
    }
    Ok(Estimate { value: theta, se: (4.0 / N_REPLICATES as f64 * sq).sqrt() })
}

/// Weighted mean of `var` with SDR standard error.
pub fn weighted_mean(src: &mut dyn ColumnSource, var: &str) -> Result<Estimate> {
    let rep_names = replicate_names();
    let mut names: Vec<&str> = vec![var, "pwgtp"];
    names.extend(rep_names.iter().map(|s| s.as_str()));
    let cols = src.columns(&names)?;
    let x = ops::to_f64(&cols[0])?;
    let w = ops::to_f64(&cols[1])?;
    let theta = ratio_ignore_nan(&x, &w)?;
    let mut sq = 0.0;
    for rep in &cols[2..] {
        let wr = ops::to_f64(rep)?;
        let tr = ratio_ignore_nan(&x, &wr)?;
        sq += (tr - theta) * (tr - theta);
    }
    Ok(Estimate { value: theta, se: (4.0 / N_REPLICATES as f64 * sq).sqrt() })
}

/// Weighted totals of `var` per value of the (integer) `by` column —
/// returns (group value, estimate) pairs sorted by group.
pub fn grouped_total(
    src: &mut dyn ColumnSource,
    var: &str,
    by: &str,
) -> Result<Vec<(i32, Estimate)>> {
    let rep_names = replicate_names();
    let mut names: Vec<&str> = vec![var, by, "pwgtp"];
    names.extend(rep_names.iter().map(|s| s.as_str()));
    let cols = src.columns(&names)?;
    let x = ops::to_f64(&cols[0])?;
    let groups = match &cols[1] {
        ColumnBuffer::Int(v) => v,
        other => {
            return Err(MlError::TypeMismatch(format!(
                "grouping column must be INTEGER, got {}",
                other.logical_type()
            )))
        }
    };
    let mut keys: Vec<i32> = groups.to_vec();
    keys.sort_unstable();
    keys.dedup();
    let w = ops::to_f64(&cols[2])?;
    let reps: Vec<Vec<f64>> = cols[3..].iter().map(ops::to_f64).collect::<Result<_>>()?;
    let mut out = Vec::with_capacity(keys.len());
    for &k in &keys {
        let mask: Vec<bool> = groups.iter().map(|&g| g == k).collect();
        let theta = masked_dot(&x, &w, &mask);
        let mut sq = 0.0;
        for wr in &reps {
            let tr = masked_dot(&x, wr, &mask);
            sq += (tr - theta) * (tr - theta);
        }
        out.push((k, Estimate { value: theta, se: (4.0 / N_REPLICATES as f64 * sq).sqrt() }));
    }
    Ok(out)
}

/// The full Figure-8 statistics battery. Returns (label, estimate) pairs.
pub fn analysis(src: &mut dyn ColumnSource) -> Result<Vec<(String, Estimate)>> {
    let mut out = vec![
        ("total_population".into(), population_total(src)?),
        ("mean_income".into(), weighted_mean(src, "pincp")?),
        ("total_wages".into(), weighted_total(src, "wagp")?),
        ("mean_age".into(), weighted_mean(src, "agep")?),
    ];
    for (state, est) in grouped_total(src, "wagp", "st")? {
        out.push((format!("wages_state_{state}"), est));
    }
    Ok(out)
}

fn population_total(src: &mut dyn ColumnSource) -> Result<Estimate> {
    // Total population = sum of weights; SE over replicates.
    let rep_names = replicate_names();
    let mut names: Vec<&str> = vec!["pwgtp"];
    names.extend(rep_names.iter().map(|s| s.as_str()));
    let cols = src.columns(&names)?;
    let w = ops::to_f64(&cols[0])?;
    let theta: f64 = w.iter().filter(|v| !v.is_nan()).sum();
    let mut sq = 0.0;
    for rep in &cols[1..] {
        let wr = ops::to_f64(rep)?;
        let tr: f64 = wr.iter().filter(|v| !v.is_nan()).sum();
        sq += (tr - theta) * (tr - theta);
    }
    Ok(Estimate { value: theta, se: (4.0 / N_REPLICATES as f64 * sq).sqrt() })
}

fn dot_ignore_nan(x: &[f64], w: &[f64]) -> f64 {
    x.iter().zip(w).filter(|(a, b)| !a.is_nan() && !b.is_nan()).map(|(a, b)| a * b).sum()
}

fn ratio_ignore_nan(x: &[f64], w: &[f64]) -> Result<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for (a, b) in x.iter().zip(w) {
        if !a.is_nan() && !b.is_nan() {
            num += a * b;
            den += b;
        }
    }
    if den == 0.0 {
        return Err(MlError::Execution("weighted mean over zero weights".into()));
    }
    Ok(num / den)
}

fn masked_dot(x: &[f64], w: &[f64], mask: &[bool]) -> f64 {
    let mut s = 0.0;
    for i in 0..x.len() {
        if mask[i] && !x[i].is_nan() && !w[i].is_nan() {
            s += x[i] * w[i];
        }
    }
    s
}

/// Trivial in-memory source (tests and the library baseline).
pub struct BufferSource {
    /// Column names (aligned with `cols`).
    pub names: Vec<String>,
    /// Columns.
    pub cols: Vec<ColumnBuffer>,
}

impl ColumnSource for BufferSource {
    fn columns(&mut self, names: &[&str]) -> Result<Vec<ColumnBuffer>> {
        names
            .iter()
            .map(|n| {
                let lower = n.to_lowercase();
                self.names
                    .iter()
                    .position(|x| *x == lower)
                    .map(|i| self.cols[i].clone())
                    .ok_or_else(|| MlError::Catalog(format!("unknown column '{n}'")))
            })
            .collect()
    }
}

impl BufferSource {
    /// Build from generated data.
    pub fn from_data(data: &crate::AcsData) -> BufferSource {
        BufferSource {
            names: data.schema.fields().iter().map(|f| f.name.clone()).collect(),
            cols: data.cols.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn population_total_matches_weight_sum() {
        let d = generate(400, 5);
        let mut src = BufferSource::from_data(&d);
        let est = analysis(&mut src).unwrap();
        let (label, pop) = &est[0];
        assert_eq!(label, "total_population");
        let expected: f64 = match &d.cols[d.schema.index_of("pwgtp").unwrap()] {
            ColumnBuffer::Int(v) => v.iter().map(|&w| w as f64).sum(),
            _ => panic!(),
        };
        assert!((pop.value - expected).abs() < 1e-6);
        assert!(pop.se > 0.0, "replicates must produce a nonzero SE");
    }

    #[test]
    fn weighted_mean_is_in_range() {
        let d = generate(400, 6);
        let mut src = BufferSource::from_data(&d);
        let age = weighted_mean(&mut src, "agep").unwrap();
        assert!(age.value > 20.0 && age.value < 70.0, "{age:?}");
    }

    #[test]
    fn grouped_totals_cover_all_states() {
        let d = generate(500, 8);
        let mut src = BufferSource::from_data(&d);
        let groups = grouped_total(&mut src, "wagp", "st").unwrap();
        assert_eq!(groups.len(), crate::STATES.len());
        let sum: f64 = groups.iter().map(|(_, e)| e.value).sum();
        let total = weighted_total(&mut src, "wagp").unwrap();
        assert!((sum - total.value).abs() < 1e-6 * total.value.abs().max(1.0));
    }

    #[test]
    fn nan_incomes_ignored() {
        let d = generate(500, 9);
        let mut src = BufferSource::from_data(&d);
        let m = weighted_mean(&mut src, "pincp").unwrap();
        assert!(m.value.is_finite());
    }
}
