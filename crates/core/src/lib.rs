//! # monetlite — an embedded analytical database
//!
//! A Rust reproduction of **MonetDBLite** (Raasveldt & Mühleisen, CIKM'18):
//! an in-process, columnar, OLAP-oriented database with zero-copy data
//! transfer to the host "analytical environment".
//!
//! ```
//! use monetlite::Database;
//!
//! let db = Database::open_in_memory();          // monetdb_startup(NULL)
//! let mut conn = db.connect();                  // monetdb_connect()
//! conn.execute("CREATE TABLE t (a INT, b VARCHAR(10))").unwrap();
//! conn.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
//! let result = conn.query("SELECT a, b FROM t WHERE a > 1").unwrap();
//! assert_eq!(result.nrows(), 1);
//! ```
//!
//! Architecture (paper §3):
//! * [`monetlite_storage`] — BAT columns, string heaps with duplicate
//!   elimination, vmem paging, WAL, optimistic-concurrency catalog.
//! * [`bind`] / [`plan`] / [`opt`] — SQL → relational algebra → optimized
//!   plan (filter/projection push-down, join ordering, decorrelation).
//! * [`exec`] — column-at-a-time execution with candidate lists, automatic
//!   indexes (imprints, hash tables, order index) and mitosis parallelism.
//! * [`mal`] — EXPLAIN rendering in MAL form.
//! * [`host`] — the embedding boundary: zero-copy, eager and lazy result
//!   transfer into host-native arrays (§3.3).

#![forbid(unsafe_code)]

pub mod agg;
pub mod bind;
pub mod bloom;
pub mod exec;
pub mod expr;
pub mod host;
pub mod join;
pub mod kernels;
pub mod mal;
pub mod opt;
pub mod pipeline;
pub mod plan;
pub mod plan_cache;
pub mod result_cache;
pub mod rows;
pub mod sort;
pub mod spill;
pub mod testing;

use bind::{Binder, CatalogAccess, ViewDef};
use exec::{ExecContext, ExecOptions, TableProvider};
use monetlite_sql::ast;
use monetlite_storage::catalog::{CatalogSnapshot, TableMeta};
use monetlite_storage::store::{Store, StoreOptions, TxWrites};
use monetlite_storage::wal::WalRecord;
use monetlite_storage::Bat;
use monetlite_types::{ColumnBuffer, Field, LogicalType, MlError, Result, Schema, Value};
use opt::OptFlags;
use plan_cache::{PlanCache, PlanEntry, StmtMemo};
use result_cache::{ResultCache, ResultEntry};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

pub use exec::Chunk;
pub use monetlite_storage as storage;
pub use monetlite_storage::VmemStats;
pub use monetlite_types as types;

/// Database configuration.
#[derive(Debug, Clone)]
pub struct DbOptions {
    /// Database directory (None = in-memory; paper §3.2: "If no directory
    /// is provided, MonetDBLite will be launched in an in-memory only
    /// mode").
    pub path: Option<PathBuf>,
    /// vmem resident budget (simulated OS memory for column data).
    pub vmem_budget: usize,
    /// WAL bytes triggering auto-checkpoint.
    pub wal_autocheckpoint: u64,
    /// Execution defaults for new connections.
    pub exec: ExecOptions,
    /// Optimizer switches.
    pub opt_flags: OptFlags,
}

impl Default for DbOptions {
    fn default() -> Self {
        DbOptions {
            path: None,
            vmem_budget: usize::MAX,
            wal_autocheckpoint: 64 << 20,
            exec: ExecOptions::default(),
            opt_flags: OptFlags::default(),
        }
    }
}

/// An embedded database instance (the `monetdb_startup` handle). Unlike
/// the original MonetDBLite — whose global state limited it to one
/// database per process (paper §3.4/§5) — any number of `Database` values
/// can coexist.
pub struct Database {
    store: Arc<Store>,
    opts: DbOptions,
    /// View definitions, shared by every connection. Views live for the
    /// database handle's lifetime (they are not checkpointed) and apply
    /// immediately — CREATE/DROP VIEW are not transactional.
    views: Arc<std::sync::Mutex<HashMap<String, ViewDef>>>,
    /// Monotone counter bumped on every view-catalog change; part of
    /// every cache key, so view DDL invalidates by moving the key space
    /// rather than by scanning entries. Bumped under the `views` lock.
    views_epoch: Arc<AtomicU64>,
    /// Shared optimized-plan templates (`monetdb_query`'s repeated
    /// parameterized statements skip parse/bind/optimize on a hit).
    plan_cache: Arc<PlanCache>,
    /// Shared result sets for identical read-only statements.
    result_cache: Arc<ResultCache>,
}

impl Database {
    /// In-memory database: nothing is persisted, everything is discarded
    /// on drop.
    pub fn open_in_memory() -> Database {
        Database {
            store: Arc::new(Store::in_memory()),
            opts: DbOptions::default(),
            views: Arc::default(),
            views_epoch: Arc::default(),
            plan_cache: Arc::default(),
            result_cache: Arc::default(),
        }
    }

    /// Open (or create) a persistent database in `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Database> {
        Self::open_with(DbOptions { path: Some(dir.as_ref().to_path_buf()), ..Default::default() })
    }

    /// Open with full configuration.
    pub fn open_with(opts: DbOptions) -> Result<Database> {
        let store = Arc::new(Store::open(StoreOptions {
            path: opts.path.clone(),
            vmem_budget: opts.vmem_budget,
            wal_autocheckpoint: opts.wal_autocheckpoint,
        })?);
        Ok(Database {
            store,
            opts,
            views: Arc::default(),
            views_epoch: Arc::default(),
            plan_cache: Arc::default(),
            result_cache: Arc::default(),
        })
    }

    /// Create a connection ("dummy clients that only hold a query context",
    /// §3.2). Connections are independent and provide transaction
    /// isolation between each other.
    pub fn connect(&self) -> Connection {
        Connection {
            store: self.store.clone(),
            exec_opts: self.opts.exec,
            opt_flags: self.opts.opt_flags,
            stats_mode: opt::StatsMode::Real,
            txn: None,
            last_counters: None,
            db_views: self.views.clone(),
            views_epoch: self.views_epoch.clone(),
            plan_cache: self.plan_cache.clone(),
            result_cache: self.result_cache.clone(),
            interrupt: Arc::new(std::sync::atomic::AtomicBool::new(false)),
        }
    }

    /// The shared plan cache (tests / benches).
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// The shared result cache (tests / benches).
    pub fn result_cache(&self) -> &Arc<ResultCache> {
        &self.result_cache
    }

    /// Force a checkpoint (columns to disk, WAL truncated).
    pub fn checkpoint(&self) -> Result<()> {
        self.store.checkpoint()
    }

    /// Paging statistics of the vmem simulation.
    pub fn vmem_stats(&self) -> VmemStats {
        self.store.vmem().stats()
    }

    /// The underlying store (tests / benches).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }
}

// ---------------------------------------------------------------------------
// Query results
// ---------------------------------------------------------------------------

/// A columnar query result (the `monetdb_result` object of §3.2).
#[derive(Debug, Clone)]
pub struct QueryResult {
    names: Vec<String>,
    types: Vec<LogicalType>,
    cols: Vec<Arc<Bat>>,
    rows: usize,
    rows_affected: u64,
}

impl QueryResult {
    fn empty(rows_affected: u64) -> QueryResult {
        QueryResult { names: vec![], types: vec![], cols: vec![], rows: 0, rows_affected }
    }

    /// Number of result rows (`nrows`).
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of result columns (`ncols`).
    pub fn ncols(&self) -> usize {
        self.cols.len()
    }

    /// Rows affected by DML (0 for queries).
    pub fn rows_affected(&self) -> u64 {
        self.rows_affected
    }

    /// Column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Column types.
    pub fn types(&self) -> &[LogicalType] {
        &self.types
    }

    /// Low-level fetch (§3.2): the underlying column structure without any
    /// conversion — an `Arc` clone, O(1), never copies data.
    pub fn col_shared(&self, i: usize) -> Arc<Bat> {
        self.cols[i].clone()
    }

    /// Cell access as a dynamic value (spot checks, wire protocol).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.cols[col].get(row)
    }

    /// High-level fetch (§3.2): convert every column into the simple host
    /// buffer representation (always copies).
    pub fn to_buffers(&self) -> Vec<ColumnBuffer> {
        self.cols.iter().map(|c| c.to_buffer(None)).collect()
    }

    /// One row as values (tests).
    pub fn row(&self, r: usize) -> Vec<Value> {
        (0..self.ncols()).map(|c| self.value(r, c)).collect()
    }
}

// ---------------------------------------------------------------------------
// Connections and transactions
// ---------------------------------------------------------------------------

struct ActiveTxn {
    /// The catalog snapshot this transaction reads (snapshot isolation).
    base: Arc<CatalogSnapshot>,
    /// Effective table map: snapshot plus this transaction's own writes.
    tables: HashMap<String, Arc<TableMeta>>,
    /// Writes to submit at commit.
    writes: TxWrites,
    /// Temp id allocator for in-transaction creates.
    next_temp_id: u64,
    /// Started by explicit BEGIN (vs autocommit wrapper).
    explicit: bool,
    /// View definitions visible to this transaction (snapshot taken at
    /// txn start; CREATE/DROP VIEW update it immediately).
    views: HashMap<String, ViewDef>,
    /// View-catalog epoch matching `views` (cache-key component; bumped
    /// along with the global epoch when this transaction runs view DDL).
    views_epoch: u64,
}

/// A connection: holds the per-query context and transaction state.
pub struct Connection {
    store: Arc<Store>,
    exec_opts: ExecOptions,
    opt_flags: OptFlags,
    stats_mode: opt::StatsMode,
    txn: Option<ActiveTxn>,
    last_counters: Option<exec::CountersSnapshot>,
    db_views: Arc<std::sync::Mutex<HashMap<String, ViewDef>>>,
    views_epoch: Arc<AtomicU64>,
    plan_cache: Arc<PlanCache>,
    result_cache: Arc<ResultCache>,
    /// Cancellation token shared with [`InterruptHandle`]s; cleared at
    /// every statement start, polled at executor checkpoints.
    interrupt: Arc<std::sync::atomic::AtomicBool>,
}

/// A cheap cloneable, `Send` handle that cancels whatever statement its
/// [`Connection`] is running (the in-process analogue of a server's KILL
/// QUERY — an embedded runaway query would otherwise hold the host's
/// thread hostage). Interrupting an idle connection is a no-op: the flag
/// is cleared when the next statement starts.
#[derive(Clone, Debug)]
pub struct InterruptHandle {
    flag: Arc<std::sync::atomic::AtomicBool>,
}

impl InterruptHandle {
    /// Request cancellation: the running statement fails with
    /// [`MlError::Interrupted`] at its next checkpoint (per operator /
    /// per spilled frame, so typically within a morsel).
    pub fn interrupt(&self) {
        self.flag.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

/// The transaction's catalog view, usable by the binder, the optimizer's
/// stats and the executor.
struct TxnView<'a> {
    tables: &'a HashMap<String, Arc<TableMeta>>,
    views: &'a HashMap<String, ViewDef>,
}

impl CatalogAccess for TxnView<'_> {
    fn table_schema(&self, name: &str) -> Result<Schema> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .map(|t| t.schema.clone())
            .ok_or_else(|| MlError::Catalog(format!("unknown table '{name}'")))
    }

    fn view_def(&self, name: &str) -> Option<ViewDef> {
        self.views.get(name).cloned()
    }
}

impl TableProvider for TxnView<'_> {
    fn table_meta(&self, name: &str) -> Result<Arc<TableMeta>> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| MlError::Catalog(format!("unknown table '{name}'")))
    }
}

impl opt::Stats for TxnView<'_> {
    fn table_rows(&self, name: &str) -> usize {
        self.tables.get(&name.to_ascii_lowercase()).map_or(1000, |t| t.data.visible_rows().max(1))
    }

    /// Real per-column statistics from the storage layer's summaries
    /// (cache → `.st` sidecar → one-pass build). Statistics are physical
    /// -row summaries: the NDV is clamped to the visible row count, and
    /// deletes leave the rest conservative — the zonemap discipline.
    fn column_stats(&self, name: &str, col: usize) -> Option<opt::ColStats> {
        self.column_stats_inner(name, col, false)
    }
}

impl TxnView<'_> {
    /// `cached_only`: serve statistics already materialised (in-memory or
    /// sidecar-loadable next time) without paying a column scan — the
    /// diagnostic `estimated_rows` counter uses this so a joinless query
    /// never builds statistics planning didn't need.
    fn column_stats_inner(
        &self,
        name: &str,
        col: usize,
        cached_only: bool,
    ) -> Option<opt::ColStats> {
        let meta = self.tables.get(&name.to_ascii_lowercase())?;
        let sc = meta.data.cols.get(col)?;
        let entry = sc.entry().ok()?;
        let st = if cached_only { entry.stats_opt()? } else { entry.stats().ok()? };
        let visible = meta.data.visible_rows() as f64;
        Some(opt::ColStats {
            null_frac: st.null_frac(),
            ndv: st.ndv().min(visible.max(1.0)),
            min_key: st.has_range.then_some(st.min_key),
            max_key: st.has_range.then_some(st.max_key),
        })
    }
}

/// [`opt::Stats`] over a [`TxnView`] that never *builds* statistics —
/// cache hits only.
struct CachedTxnStats<'a>(&'a TxnView<'a>);

impl opt::Stats for CachedTxnStats<'_> {
    fn table_rows(&self, name: &str) -> usize {
        self.0.table_rows(name)
    }

    fn column_stats(&self, name: &str, col: usize) -> Option<opt::ColStats> {
        self.0.column_stats_inner(name, col, true)
    }
}

impl Connection {
    /// Override execution options (threads, index flags, timeout...).
    pub fn set_exec_options(&mut self, opts: ExecOptions) {
        self.exec_opts = opts;
    }

    /// Current execution options.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec_opts
    }

    /// Override optimizer flags (ablation benches).
    pub fn set_opt_flags(&mut self, flags: OptFlags) {
        self.opt_flags = flags;
    }

    /// Control how the optimizer sees statistics (differential tests:
    /// wrong statistics may change plans, never results).
    pub fn set_stats_mode(&mut self, mode: opt::StatsMode) {
        self.stats_mode = mode;
    }

    /// Execution counters of the last successful SELECT on this
    /// connection (`None` before the first one): tactical decisions,
    /// pipeline/morsel traffic, and — under a memory budget — spill
    /// activity (`spilled_partitions` / `spill_bytes`).
    pub fn last_exec_counters(&self) -> Option<exec::CountersSnapshot> {
        self.last_counters
    }

    /// A handle other threads can use to cancel this connection's running
    /// statement (see [`InterruptHandle`]).
    pub fn interrupt_handle(&self) -> InterruptHandle {
        InterruptHandle { flag: self.interrupt.clone() }
    }

    /// Execute one SQL statement, returning its full result
    /// (`monetdb_query`).
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        // Each statement starts un-interrupted: an interrupt delivered
        // while the connection was idle must not kill the next query.
        self.interrupt.store(false, std::sync::atomic::Ordering::SeqCst);
        let caches_on = self.exec_opts.use_plan_cache || self.exec_opts.use_result_cache;
        // Statement-text memo: a repeat of the exact text skips even the
        // parser (the memo is a pure function of the text, never stale).
        if caches_on {
            if let Some(memo) = self.plan_cache.memo_get(sql) {
                return self.run_select_memo(&memo);
            }
        }
        let stmt = monetlite_sql::parse_statement(sql)?;
        if caches_on {
            if let ast::Statement::Select(sel) = &stmt {
                let memo = Arc::new(StmtMemo::build(sel));
                self.plan_cache.memo_put(sql, memo.clone());
                return self.run_select_memo(&memo);
            }
        }
        self.run_statement(stmt)
    }

    /// Autocommit wrapper around the cached SELECT path (mirrors
    /// `run_statement`'s handling of a bare SELECT).
    fn run_select_memo(&mut self, memo: &StmtMemo) -> Result<QueryResult> {
        let implicit = self.ensure_txn();
        let r = self.run_select_cached(memo);
        self.finish_implicit(implicit, r.is_ok())?;
        r
    }

    /// Execute one statement for its side effect; returns rows affected.
    pub fn execute(&mut self, sql: &str) -> Result<u64> {
        Ok(self.query(sql)?.rows_affected())
    }

    /// Execute a `;`-separated script, returning the last statement's
    /// result.
    pub fn run_script(&mut self, sql: &str) -> Result<QueryResult> {
        self.interrupt.store(false, std::sync::atomic::Ordering::SeqCst);
        let stmts = monetlite_sql::parse_statements(sql)?;
        let mut last = QueryResult::empty(0);
        for s in stmts {
            last = self.run_statement(s)?;
        }
        Ok(last)
    }

    /// Bulk append host buffers to a table (`monetdb_append`, §3.2): one
    /// pass, no per-row INSERT parsing — "significant overhead involved in
    /// parsing individual INSERT INTO statements".
    pub fn append(&mut self, table: &str, cols: Vec<ColumnBuffer>) -> Result<()> {
        let implicit = self.ensure_txn();
        let r = self.append_inner(table, cols);
        self.finish_implicit(implicit, r.is_ok())?;
        r
    }

    fn append_inner(&mut self, table: &str, cols: Vec<ColumnBuffer>) -> Result<()> {
        let table = table.to_ascii_lowercase();
        let schema = {
            let txn = self.txn.as_ref().expect("txn ensured");
            let view = TxnView { tables: &txn.tables, views: &txn.views };
            view.table_schema(&table)?
        };
        if cols.len() != schema.len() {
            return Err(MlError::Execution(format!(
                "append expects {} columns, got {}",
                schema.len(),
                cols.len()
            )));
        }
        for (f, c) in schema.fields().iter().zip(&cols) {
            if !f.nullable && c.null_count() > 0 {
                return Err(MlError::Execution(format!("NULL in NOT NULL column '{}'", f.name)));
            }
        }
        let bats: Vec<Bat> = cols.iter().map(Bat::from_buffer).collect();
        self.apply_write(WalRecord::Append { table, cols: bats })
    }

    /// BEGIN a transaction explicitly.
    pub fn begin(&mut self) -> Result<()> {
        if self.txn.as_ref().is_some_and(|t| t.explicit) {
            return Err(MlError::TransactionState("transaction already open".into()));
        }
        self.start_txn(true);
        Ok(())
    }

    /// COMMIT the open transaction (optimistic validation happens here; a
    /// write-write conflict aborts with [`MlError::TransactionConflict`]).
    pub fn commit(&mut self) -> Result<()> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| MlError::TransactionState("no transaction open".into()))?;
        self.store.commit(txn.writes)
    }

    /// ROLLBACK the open transaction.
    pub fn rollback(&mut self) -> Result<()> {
        if self.txn.take().is_none() {
            return Err(MlError::TransactionState("no transaction open".into()));
        }
        Ok(())
    }

    fn start_txn(&mut self, explicit: bool) {
        let snapshot = self.store.snapshot();
        // Read the epoch under the views lock so (views, epoch) is a
        // consistent pair — view DDL bumps the epoch while holding it.
        let (views, views_epoch) = {
            let g = self.db_views.lock().expect("views lock");
            (g.clone(), self.views_epoch.load(Ordering::SeqCst))
        };
        self.txn = Some(ActiveTxn {
            tables: snapshot.tables.clone(),
            base: snapshot,
            writes: TxWrites::default(),
            next_temp_id: monetlite_storage::store::TEMP_TABLE_ID_BASE,
            explicit,
            views,
            views_epoch,
        });
    }

    /// Ensure a transaction exists; returns true when an implicit one was
    /// opened (autocommit).
    fn ensure_txn(&mut self) -> bool {
        if self.txn.is_none() {
            self.start_txn(false);
            true
        } else {
            false
        }
    }

    fn finish_implicit(&mut self, implicit: bool, ok: bool) -> Result<()> {
        if !implicit {
            return Ok(());
        }
        let txn = self.txn.take().expect("implicit txn present");
        if ok {
            self.store.commit(txn.writes)
        } else {
            Ok(()) // failed statement: discard
        }
    }

    /// Record a write op: apply to the transaction-local view (so later
    /// statements see it) and queue for commit.
    fn apply_write(&mut self, op: WalRecord) -> Result<()> {
        let txn = self.txn.as_mut().expect("txn ensured");
        // Base-version bookkeeping for conflict detection.
        let target = match &op {
            WalRecord::Append { table, .. }
            | WalRecord::Delete { table, .. }
            | WalRecord::CreateOrderIndex { table, .. } => Some(table.clone()),
            WalRecord::DropTable { name } => Some(name.clone()),
            _ => None,
        };
        if let Some(t) = target {
            if let Some(meta) = txn.base.tables.get(&t) {
                txn.writes.base_versions.entry(t).or_insert(meta.version);
            }
        }
        monetlite_storage::store::apply_record(&mut txn.tables, &op, &mut txn.next_temp_id)?;
        txn.writes.ops.push(op);
        Ok(())
    }

    fn run_statement(&mut self, stmt: ast::Statement) -> Result<QueryResult> {
        match stmt {
            ast::Statement::Begin => {
                self.begin()?;
                Ok(QueryResult::empty(0))
            }
            ast::Statement::Commit => {
                self.commit()?;
                Ok(QueryResult::empty(0))
            }
            ast::Statement::Rollback => {
                self.rollback()?;
                Ok(QueryResult::empty(0))
            }
            other => {
                let implicit = self.ensure_txn();
                let r = self.run_in_txn(other);
                self.finish_implicit(implicit, r.is_ok())?;
                r
            }
        }
    }

    fn run_in_txn(&mut self, stmt: ast::Statement) -> Result<QueryResult> {
        match stmt {
            ast::Statement::Select(sel) => {
                if self.exec_opts.use_plan_cache || self.exec_opts.use_result_cache {
                    // Script / non-memoized entry: normalize here so the
                    // statement still shares plan and result entries.
                    let memo = StmtMemo::build(&sel);
                    self.run_select_cached(&memo)
                } else {
                    self.run_select(&sel)
                }
            }
            ast::Statement::Explain(inner) => self.run_explain(*inner),
            ast::Statement::CreateTable { name, columns } => {
                let lname = name.to_ascii_lowercase();
                // Tables shadow views at name resolution, so a colliding
                // CREATE TABLE would silently hide an existing view —
                // reject it symmetrically with CREATE VIEW's check.
                if self.txn.as_ref().expect("txn").views.contains_key(&lname)
                    || self.db_views.lock().expect("views lock").contains_key(&lname)
                {
                    return Err(MlError::Catalog(format!("'{name}' already exists as a view")));
                }
                let fields: Vec<Field> = columns
                    .iter()
                    .map(|c| {
                        if c.nullable {
                            Field::new(&c.name, c.ty)
                        } else {
                            Field::not_null(&c.name, c.ty)
                        }
                    })
                    .collect();
                let schema = Schema::new(fields)?;
                self.apply_write(WalRecord::CreateTable { name: lname, schema })?;
                Ok(QueryResult::empty(0))
            }
            ast::Statement::DropTable { name, if_exists } => {
                let lname = name.to_ascii_lowercase();
                let exists = self.txn.as_ref().expect("txn").tables.contains_key(&lname);
                if !exists {
                    if if_exists {
                        return Ok(QueryResult::empty(0));
                    }
                    return Err(MlError::Catalog(format!("unknown table '{name}'")));
                }
                self.apply_write(WalRecord::DropTable { name: lname })?;
                Ok(QueryResult::empty(0))
            }
            ast::Statement::CreateView { name, columns, query } => {
                let lname = name.to_ascii_lowercase();
                let vd = ViewDef { columns, query: *query };
                {
                    let txn = self.txn.as_ref().expect("txn");
                    if txn.tables.contains_key(&lname) {
                        return Err(MlError::Catalog(format!(
                            "'{name}' already exists as a table"
                        )));
                    }
                    // Validate eagerly: the definition must bind, and a
                    // rename list must match the output width.
                    let view = TxnView { tables: &txn.tables, views: &txn.views };
                    let plan = Binder::new(&view).bind_select(&vd.query)?;
                    if let Some(cols) = &vd.columns {
                        if cols.len() != plan.schema().len() {
                            return Err(MlError::Bind(format!(
                                "view '{name}' selects {} column(s) but {} alias(es) were given",
                                plan.schema().len(),
                                cols.len()
                            )));
                        }
                    }
                }
                // Check-and-insert atomically against the *shared* map, so
                // two connections racing on the same name cannot both
                // succeed (the second would silently replace the first).
                {
                    let mut shared = self.db_views.lock().expect("views lock");
                    if shared.contains_key(&lname)
                        || self.txn.as_ref().expect("txn").views.contains_key(&lname)
                    {
                        return Err(MlError::Catalog(format!("view '{name}' already exists")));
                    }
                    shared.insert(lname.clone(), vd.clone());
                    // Move the cache-key epoch under the same lock: plan
                    // and result entries keyed under the old view catalog
                    // become unreachable.
                    let e = self.views_epoch.fetch_add(1, Ordering::SeqCst) + 1;
                    self.txn.as_mut().expect("txn").views_epoch = e;
                }
                self.txn.as_mut().expect("txn").views.insert(lname, vd);
                Ok(QueryResult::empty(0))
            }
            ast::Statement::DropView { name, if_exists } => {
                let lname = name.to_ascii_lowercase();
                let known = self.txn.as_mut().expect("txn").views.remove(&lname).is_some();
                let shared = {
                    let mut g = self.db_views.lock().expect("views lock");
                    let removed = g.remove(&lname).is_some();
                    if removed || known {
                        let e = self.views_epoch.fetch_add(1, Ordering::SeqCst) + 1;
                        self.txn.as_mut().expect("txn").views_epoch = e;
                    }
                    removed
                };
                if !known && !shared && !if_exists {
                    return Err(MlError::Catalog(format!("unknown view '{name}'")));
                }
                Ok(QueryResult::empty(0))
            }
            ast::Statement::Insert { table, columns, rows } => {
                self.run_insert(&table, columns.as_deref(), &rows)
            }
            ast::Statement::Delete { table, filter } => self.run_delete(&table, filter.as_ref()),
            ast::Statement::Update { table, sets, filter } => {
                self.run_update(&table, &sets, filter.as_ref())
            }
            ast::Statement::CreateIndex { table, column, ordered, .. } => {
                let lname = table.to_ascii_lowercase();
                let (col_idx, meta) = {
                    let txn = self.txn.as_ref().expect("txn");
                    let meta =
                        TxnView { tables: &txn.tables, views: &txn.views }.table_meta(&lname)?;
                    let idx = meta
                        .schema
                        .index_of(&column)
                        .ok_or_else(|| MlError::Catalog(format!("unknown column '{column}'")))?;
                    (idx, meta)
                };
                if ordered {
                    self.apply_write(WalRecord::CreateOrderIndex {
                        table: lname,
                        col: col_idx as u32,
                    })?;
                    // Build eagerly so later statements in this txn use it.
                    let entry = meta.data.cols[col_idx].entry()?;
                    let _ = entry.order_index()?;
                } else {
                    // Plain CREATE INDEX: MonetDB builds indexes
                    // automatically; treat as a hint and build the hash
                    // table now.
                    let entry = meta.data.cols[col_idx].entry()?;
                    let _ = entry.hash_index()?;
                }
                Ok(QueryResult::empty(0))
            }
            ast::Statement::Begin | ast::Statement::Commit | ast::Statement::Rollback => {
                unreachable!("handled in run_statement")
            }
        }
    }

    fn run_select(&mut self, sel: &ast::SelectStmt) -> Result<QueryResult> {
        let (chunk, names, types, counters) = {
            let txn = self.txn.as_ref().expect("txn");
            let view = TxnView { tables: &txn.tables, views: &txn.views };
            let stats = opt::ModedStats { inner: &view, mode: self.stats_mode };
            let plan = Binder::new(&view).bind_select(sel)?;
            let plan = opt::optimize(plan, self.opt_flags, &stats, &view)?;
            // The store's paging manager supplies the memory budget when
            // ExecOptions leaves it unset: operator state competes with
            // resident columns for the same byte budget, and pipeline
            // breakers spill once it is exceeded.
            let ctx = ExecContext::new(&view, self.exec_opts)
                .with_vmem(self.store.vmem().clone())
                .with_interrupt(self.interrupt.clone());
            let chunk = exec::execute(&plan, &ctx)?;
            let names: Vec<String> = plan.schema().iter().map(|c| c.name.clone()).collect();
            let types: Vec<LogicalType> = plan.schema().iter().map(|c| c.ty).collect();
            // The counter estimate reads only *cached* statistics: a
            // joinless query whose planning never consulted stats must
            // not pay a full column scan for a diagnostic.
            let cached = CachedTxnStats(&view);
            let counter_stats = opt::ModedStats { inner: &cached, mode: self.stats_mode };
            let mut counters = ctx.counters.snapshot();
            counters.estimated_rows = opt::estimate_rows(&plan, &counter_stats).round() as u64;
            (chunk, names, types, counters)
        };
        self.last_counters = Some(counters);
        Ok(QueryResult { names, types, cols: chunk.cols, rows: chunk.rows, rows_affected: 0 })
    }

    /// Cache-key component covering everything besides the statement and
    /// the data: optimizer flags, statistics mode, execution options and
    /// the view catalog's epoch. Any change moves the key, so stale
    /// entries are simply never looked up again (the LRU ages them out).
    fn cache_fingerprint(&self, views_epoch: u64) -> String {
        format!("{:?}|{:?}|{:?}|v{views_epoch}", self.opt_flags, self.stats_mode, self.exec_opts)
    }

    /// SELECT through the caching tier (paper §1/§4.2: an embedded
    /// workload re-issues many small, often identical or merely
    /// re-parameterized queries, so per-query overheads dominate):
    /// 1. result-cache hit → return the stored columns, no execution;
    /// 2. plan-cache hit → substitute fresh literals into the stored
    ///    template, skipping bind + optimize;
    /// 3. miss → bind the parameterized statement, optimize once, store
    ///    the template, then execute.
    ///
    /// Consulting and populating the caches requires a transaction with
    /// no uncommitted writes and only committed input tables; everything
    /// else takes the plain `run_select` path.
    fn run_select_cached(&mut self, memo: &StmtMemo) -> Result<QueryResult> {
        let started = Instant::now();
        let use_plan = self.exec_opts.use_plan_cache;
        let use_result = self.exec_opts.use_result_cache;
        let (result, counters, store_result) = {
            let txn = self.txn.as_ref().expect("txn");
            let cacheable = txn.writes.is_empty();
            let fp = self.cache_fingerprint(txn.views_epoch);
            let rkey = format!("{}\u{1}{}", memo.result_key, fp);

            // 1. Result cache: a hit skips execution entirely, but must
            // still behave like a real statement — honour a pending
            // interrupt and the per-query timeout, and publish counters.
            if use_result && cacheable {
                if let Some(entry) = self.result_cache.get_valid(&rkey, &txn.tables) {
                    if self.interrupt.load(std::sync::atomic::Ordering::SeqCst) {
                        return Err(MlError::Interrupted);
                    }
                    if let Some(limit) = self.exec_opts.timeout {
                        if started.elapsed() >= limit {
                            return Err(MlError::Timeout {
                                elapsed_ms: started.elapsed().as_millis() as u64,
                                limit_ms: limit.as_millis() as u64,
                            });
                        }
                    }
                    self.result_cache.hits.fetch_add(1, Ordering::Relaxed);
                    self.last_counters = Some(exec::CountersSnapshot {
                        result_cache_hits: 1,
                        estimated_rows: entry.estimated_rows,
                        ..Default::default()
                    });
                    return Ok(QueryResult {
                        names: entry.names.clone(),
                        types: entry.types.clone(),
                        cols: entry.cols.clone(),
                        rows: entry.rows,
                        rows_affected: 0,
                    });
                }
                self.result_cache.misses.fetch_add(1, Ordering::Relaxed);
            }

            let view = TxnView { tables: &txn.tables, views: &txn.views };
            let stats = opt::ModedStats { inner: &view, mode: self.stats_mode };
            let pkey = format!("{}\u{1}{}", memo.plan_key, fp);

            // 2. Plan cache: reuse the optimized template, re-binding the
            // statement's literals into its parameter slots.
            let mut plan_hit = false;
            let mut plan: Option<plan::Plan> = None;
            if use_plan && cacheable {
                if let Some(entry) = self.plan_cache.get_valid(&pkey, &txn.tables) {
                    if let Some(p) = plan_cache::substitute_params(&entry.plan, &memo.params) {
                        plan_hit = true;
                        plan = Some(p);
                    }
                    // A failed coercion (literal cannot take the
                    // template's type) falls through to a full replan.
                }
            }
            let plan = match plan {
                Some(p) => p,
                None if use_plan => {
                    // 3. Miss: bind + optimize the *parameterized*
                    // statement so the resulting plan is a reusable
                    // template, store it, then substitute this
                    // statement's own literals back in.
                    self.plan_cache.misses.fetch_add(1, Ordering::Relaxed);
                    let template = Binder::with_params(&view, memo.params.clone())
                        .bind_select(&memo.template_stmt)?;
                    let template = opt::optimize(template, self.opt_flags, &stats, &view)?;
                    let substituted = plan_cache::substitute_params(&template, &memo.params)
                        .unwrap_or_else(|| template.clone());
                    if cacheable {
                        if let Some(deps) = plan_cache::collect_deps(&template, &txn.tables) {
                            self.plan_cache.put(
                                pkey,
                                PlanEntry { plan: template, deps },
                                self.exec_opts.plan_cache_bytes,
                            );
                        }
                    }
                    substituted
                }
                None => {
                    // Plan cache disabled (result cache only): plain
                    // bind + optimize of the original statement.
                    let p = Binder::new(&view).bind_select(&memo.original_stmt)?;
                    opt::optimize(p, self.opt_flags, &stats, &view)?
                }
            };
            // Re-fold now that parameter slots are concrete literals, so
            // every literal-driven execution fast path (zonemap probes,
            // dictionary predicate compilation, imprints) sees the same
            // shapes as an uncached plan.
            let plan = opt::fold_constants(plan)?;

            let ctx = ExecContext::new(&view, self.exec_opts)
                .with_vmem(self.store.vmem().clone())
                .with_interrupt(self.interrupt.clone());
            let chunk = exec::execute(&plan, &ctx)?;
            let names: Vec<String> = plan.schema().iter().map(|c| c.name.clone()).collect();
            let types: Vec<LogicalType> = plan.schema().iter().map(|c| c.ty).collect();
            let cached = CachedTxnStats(&view);
            let counter_stats = opt::ModedStats { inner: &cached, mode: self.stats_mode };
            let mut counters = ctx.counters.snapshot();
            counters.estimated_rows = opt::estimate_rows(&plan, &counter_stats).round() as u64;
            if plan_hit {
                counters.plan_cache_hits = 1;
                self.plan_cache.hits.fetch_add(1, Ordering::Relaxed);
            }
            let result =
                QueryResult { names, types, cols: chunk.cols, rows: chunk.rows, rows_affected: 0 };
            // Populate the result cache from this execution.
            let store_result = (use_result && cacheable)
                .then(|| plan_cache::collect_deps(&plan, &txn.tables))
                .flatten()
                .map(|deps| (rkey, deps, counters.estimated_rows));
            (result, counters, store_result)
        };
        self.last_counters = Some(counters);
        if let Some((rkey, deps, estimated_rows)) = store_result {
            self.result_cache.put(
                rkey,
                ResultEntry {
                    names: result.names.clone(),
                    types: result.types.clone(),
                    cols: result.cols.clone(),
                    rows: result.rows,
                    estimated_rows,
                    deps,
                },
                self.exec_opts.result_cache_bytes,
            );
        }
        Ok(result)
    }

    fn run_explain(&mut self, stmt: ast::Statement) -> Result<QueryResult> {
        let ast::Statement::Select(sel) = stmt else {
            return Err(MlError::Unsupported("EXPLAIN is only supported for SELECT".into()));
        };
        let txn = self.txn.as_ref().expect("txn");
        let view = TxnView { tables: &txn.tables, views: &txn.views };
        let stats = opt::ModedStats { inner: &view, mode: self.stats_mode };
        let plan = Binder::new(&view).bind_select(&sel)?;
        let plan = opt::optimize(plan, self.opt_flags, &stats, &view)?;
        let mut text = mal::explain(&plan, &self.exec_opts, Some(&stats));
        // Cache status for the explained statement: tags appear only when
        // a valid cached artifact exists right now (EXPLAIN itself never
        // consults or populates the caches).
        if (self.exec_opts.use_plan_cache || self.exec_opts.use_result_cache)
            && txn.writes.is_empty()
        {
            let memo = StmtMemo::build(&sel);
            let fp = self.cache_fingerprint(txn.views_epoch);
            let plan_cached = self.exec_opts.use_plan_cache
                && self
                    .plan_cache
                    .get_valid(&format!("{}\u{1}{}", memo.plan_key, fp), &txn.tables)
                    .is_some();
            let result_cached = self.exec_opts.use_result_cache
                && self
                    .result_cache
                    .get_valid(&format!("{}\u{1}{}", memo.result_key, fp), &txn.tables)
                    .is_some();
            text.push_str(&mal::cache_tags(plan_cached, result_cached));
        }
        let lines: Vec<Option<String>> = text.lines().map(|l| Some(l.to_string())).collect();
        let rows = lines.len();
        Ok(QueryResult {
            names: vec!["mal".into()],
            types: vec![LogicalType::Varchar],
            cols: vec![Arc::new(Bat::from_buffer(&ColumnBuffer::Varchar(lines)))],
            rows,
            rows_affected: 0,
        })
    }

    fn run_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<ast::Expr>],
    ) -> Result<QueryResult> {
        let lname = table.to_ascii_lowercase();
        let schema = {
            let txn = self.txn.as_ref().expect("txn");
            TxnView { tables: &txn.tables, views: &txn.views }.table_schema(&lname)?
        };
        // Map provided columns to schema positions.
        let positions: Vec<usize> = match columns {
            None => (0..schema.len()).collect(),
            Some(cols) => cols
                .iter()
                .map(|c| {
                    schema
                        .index_of(c)
                        .ok_or_else(|| MlError::Catalog(format!("unknown column '{c}'")))
                })
                .collect::<Result<_>>()?,
        };
        let mut bats: Vec<Bat> = schema.fields().iter().map(|f| Bat::new(f.ty)).collect();
        let binder_scope = bind::Scope::default();
        let view_catalog = EmptyCatalog;
        let binder = Binder::new(&view_catalog);
        for row in rows {
            if row.len() != positions.len() {
                return Err(MlError::Execution(format!(
                    "INSERT expects {} values, got {}",
                    positions.len(),
                    row.len()
                )));
            }
            let mut provided: HashMap<usize, Value> = HashMap::new();
            for (expr, &pos) in row.iter().zip(&positions) {
                let bound = binder.bind_expr(expr, &binder_scope)?;
                if !bound.is_const() {
                    return Err(MlError::Execution(
                        "INSERT values must be constant expressions".into(),
                    ));
                }
                let out = kernels::eval(&bound, &[], 1)?;
                provided.insert(pos, out.get(0));
            }
            for (i, f) in schema.fields().iter().enumerate() {
                let v = provided.remove(&i).unwrap_or(Value::Null);
                if v.is_null() && !f.nullable {
                    return Err(MlError::Execution(format!(
                        "NULL in NOT NULL column '{}'",
                        f.name
                    )));
                }
                let v = coerce_value(v, f.ty)?;
                bats[i].push(&v)?;
            }
        }
        let n = rows.len() as u64;
        self.apply_write(WalRecord::Append { table: lname, cols: bats })?;
        Ok(QueryResult::empty(n))
    }

    /// Physical ids of visible rows matching `filter`.
    fn matching_rows(&self, meta: &TableMeta, filter: Option<&ast::Expr>) -> Result<Vec<u32>> {
        let txn = self.txn.as_ref().expect("txn");
        let view = TxnView { tables: &txn.tables, views: &txn.views };
        let deleted = meta.data.deleted.as_deref();
        let visible = |r: u32| deleted.is_none_or(|d| !d[r as usize]);
        match filter {
            None => Ok((0..meta.data.rows as u32).filter(|&r| visible(r)).collect()),
            Some(f) => {
                let binder = Binder::new(&view);
                let (pred, _) = binder.bind_table_expr(&meta.name, f)?;
                let cols: Vec<Arc<Bat>> =
                    meta.data.cols.iter().map(|c| c.entry()?.bat()).collect::<Result<_>>()?;
                let mask = kernels::eval(&pred, &cols, meta.data.rows)?;
                let sel = kernels::bool_to_sel(&mask)?;
                Ok(sel.into_iter().filter(|&r| visible(r)).collect())
            }
        }
    }

    fn run_delete(&mut self, table: &str, filter: Option<&ast::Expr>) -> Result<QueryResult> {
        let lname = table.to_ascii_lowercase();
        let meta = {
            let txn = self.txn.as_ref().expect("txn");
            TxnView { tables: &txn.tables, views: &txn.views }.table_meta(&lname)?
        };
        let rows = self.matching_rows(&meta, filter)?;
        let n = rows.len() as u64;
        if n > 0 {
            self.apply_write(WalRecord::Delete { table: lname, rows })?;
        }
        Ok(QueryResult::empty(n))
    }

    fn run_update(
        &mut self,
        table: &str,
        sets: &[(String, ast::Expr)],
        filter: Option<&ast::Expr>,
    ) -> Result<QueryResult> {
        // UPDATE = DELETE + APPEND of the updated rows (MonetDB's
        // delta-based update model).
        let lname = table.to_ascii_lowercase();
        let meta = {
            let txn = self.txn.as_ref().expect("txn");
            TxnView { tables: &txn.tables, views: &txn.views }.table_meta(&lname)?
        };
        let rows = self.matching_rows(&meta, filter)?;
        if rows.is_empty() {
            return Ok(QueryResult::empty(0));
        }
        // Bind assignment expressions over the full table scope.
        let mut set_exprs: HashMap<usize, expr::BExpr> = HashMap::new();
        {
            let txn = self.txn.as_ref().expect("txn");
            let view = TxnView { tables: &txn.tables, views: &txn.views };
            let binder = Binder::new(&view);
            for (col, e) in sets {
                let idx = meta
                    .schema
                    .index_of(col)
                    .ok_or_else(|| MlError::Catalog(format!("unknown column '{col}'")))?;
                let (bound, _) = binder.bind_table_expr(&meta.name, e)?;
                let coerced = bind::cast_to(bound, meta.schema.field_at(idx).ty)?;
                set_exprs.insert(idx, coerced);
            }
        }
        // Gather the selected rows and compute new column values.
        let full_cols: Vec<Arc<Bat>> =
            meta.data.cols.iter().map(|c| c.entry()?.bat()).collect::<Result<_>>()?;
        let gathered: Vec<Arc<Bat>> = full_cols.iter().map(|c| Arc::new(c.take(&rows))).collect();
        let mut new_cols: Vec<Bat> = Vec::with_capacity(meta.schema.len());
        for (i, f) in meta.schema.fields().iter().enumerate() {
            match set_exprs.get(&i) {
                Some(e) => {
                    let b = kernels::eval(e, &gathered, rows.len())?;
                    if !f.nullable && b.null_count() > 0 {
                        return Err(MlError::Execution(format!(
                            "NULL in NOT NULL column '{}'",
                            f.name
                        )));
                    }
                    new_cols.push(b);
                }
                None => new_cols.push((*gathered[i]).clone()),
            }
        }
        let n = rows.len() as u64;
        self.apply_write(WalRecord::Delete { table: lname.clone(), rows })?;
        self.apply_write(WalRecord::Append { table: lname, cols: new_cols })?;
        Ok(QueryResult::empty(n))
    }
}

/// Catalog with no tables (INSERT literal binding).
struct EmptyCatalog;

impl CatalogAccess for EmptyCatalog {
    fn table_schema(&self, name: &str) -> Result<Schema> {
        Err(MlError::Catalog(format!("unknown table '{name}'")))
    }
}

/// Coerce a literal value to a column type (INSERT path).
fn coerce_value(v: Value, ty: LogicalType) -> Result<Value> {
    use LogicalType as T;
    Ok(match (&v, ty) {
        (Value::Null, _) => Value::Null,
        (Value::Int(_), T::Int)
        | (Value::Bigint(_), T::Bigint)
        | (Value::Double(_), T::Double)
        | (Value::Str(_), T::Varchar)
        | (Value::Bool(_), T::Bool)
        | (Value::Date(_), T::Date)
        | (Value::Decimal(_), T::Decimal { .. }) => match (v, ty) {
            (Value::Decimal(d), T::Decimal { scale, .. }) => Value::Decimal(d.rescale(scale)?),
            (v, _) => v,
        },
        (Value::Int(x), T::Bigint) => Value::Bigint(*x as i64),
        (Value::Int(x), T::Double) => Value::Double(*x as f64),
        (Value::Int(x), T::Decimal { scale, .. }) => {
            Value::Decimal(monetlite_types::Decimal::new(*x as i64, 0).rescale(scale)?)
        }
        (Value::Bigint(x), T::Double) => Value::Double(*x as f64),
        (Value::Decimal(d), T::Double) => Value::Double(d.to_f64()),
        (Value::Str(s), T::Date) => Value::Date(monetlite_types::Date::parse(s)?),
        (v, ty) => return Err(MlError::TypeMismatch(format!("cannot store {v:?} in {ty} column"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_t() -> (Database, Connection) {
        let db = Database::open_in_memory();
        let mut conn = db.connect();
        conn.execute("CREATE TABLE t (a INT NOT NULL, b VARCHAR(20), p DECIMAL(10,2))").unwrap();
        conn.execute("INSERT INTO t VALUES (1, 'one', 1.50), (2, 'two', 2.50), (3, NULL, 3.00)")
            .unwrap();
        (db, conn)
    }

    #[test]
    fn end_to_end_select() {
        let (_db, mut conn) = db_with_t();
        let r = conn.query("SELECT a, b FROM t WHERE a >= 2 ORDER BY a DESC").unwrap();
        assert_eq!(r.nrows(), 2);
        assert_eq!(r.value(0, 0), Value::Int(3));
        assert_eq!(r.value(1, 1), Value::Str("two".into()));
        assert_eq!(r.names(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn aggregates_end_to_end() {
        let (_db, mut conn) = db_with_t();
        let r = conn.query("SELECT count(*) AS c, sum(p) AS s, avg(a) AS m FROM t").unwrap();
        assert_eq!(r.value(0, 0), Value::Bigint(3));
        assert_eq!(r.value(0, 1), Value::Decimal(monetlite_types::Decimal::new(700, 2)));
        assert_eq!(r.value(0, 2), Value::Double(2.0));
    }

    #[test]
    fn group_by_end_to_end() {
        let (_db, mut conn) = db_with_t();
        conn.execute("INSERT INTO t VALUES (4, 'one', 0.50)").unwrap();
        let r = conn.query("SELECT b, count(*) AS c FROM t GROUP BY b ORDER BY c DESC, b").unwrap();
        assert_eq!(r.nrows(), 3); // 'one' x2, 'two', NULL
        assert_eq!(r.value(0, 1), Value::Bigint(2));
        assert_eq!(r.value(0, 0), Value::Str("one".into()));
    }

    #[test]
    fn delete_and_update() {
        let (_db, mut conn) = db_with_t();
        assert_eq!(conn.execute("DELETE FROM t WHERE a = 2").unwrap(), 1);
        let r = conn.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(r.value(0, 0), Value::Bigint(2));
        assert_eq!(conn.execute("UPDATE t SET p = p * 2 WHERE a = 1").unwrap(), 1);
        let r = conn.query("SELECT p FROM t WHERE a = 1").unwrap();
        assert_eq!(r.value(0, 0).to_string(), "3.00");
    }

    #[test]
    fn not_null_enforced() {
        let (_db, mut conn) = db_with_t();
        assert!(conn.execute("INSERT INTO t VALUES (NULL, 'x', 1.0)").is_err());
        // Failed autocommit statement leaves no residue.
        let r = conn.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(r.value(0, 0), Value::Bigint(3));
    }

    #[test]
    fn explicit_transaction_rollback() {
        let (_db, mut conn) = db_with_t();
        conn.execute("BEGIN").unwrap();
        conn.execute("DELETE FROM t").unwrap();
        let r = conn.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(r.value(0, 0), Value::Bigint(0), "txn sees its own deletes");
        conn.execute("ROLLBACK").unwrap();
        let r = conn.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(r.value(0, 0), Value::Bigint(3), "rollback discards");
    }

    #[test]
    fn two_connections_conflict() {
        let (db, mut c1) = db_with_t();
        let mut c2 = db.connect();
        c1.execute("BEGIN").unwrap();
        c2.execute("BEGIN").unwrap();
        c1.execute("DELETE FROM t WHERE a = 1").unwrap();
        c2.execute("DELETE FROM t WHERE a = 3").unwrap();
        c1.commit().unwrap();
        match c2.commit() {
            Err(MlError::TransactionConflict(_)) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_isolation_between_connections() {
        let (db, mut c1) = db_with_t();
        let mut c2 = db.connect();
        c2.execute("BEGIN").unwrap();
        let before = c2.query("SELECT count(*) FROM t").unwrap();
        c1.execute("INSERT INTO t VALUES (9, 'nine', 9.00)").unwrap();
        let after = c2.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(before.value(0, 0), after.value(0, 0), "snapshot must not move");
        c2.commit().unwrap();
        let now = c2.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(now.value(0, 0), Value::Bigint(4));
    }

    #[test]
    fn explain_produces_mal() {
        let (_db, mut conn) = db_with_t();
        let r = conn.query("EXPLAIN SELECT a FROM t WHERE a > 1").unwrap();
        let text: Vec<String> = (0..r.nrows()).map(|i| r.value(i, 0).to_string()).collect();
        let joined = text.join("\n");
        assert!(joined.contains("function user.main():void;"), "{joined}");
        assert!(joined.contains("sql.bind"), "{joined}");
    }

    #[test]
    fn zero_copy_shared_fetch() {
        let (_db, mut conn) = db_with_t();
        let r = conn.query("SELECT a FROM t").unwrap();
        let c1 = r.col_shared(0);
        let c2 = r.col_shared(0);
        assert!(Arc::ptr_eq(&c1, &c2));
    }

    #[test]
    fn append_api_bulk() {
        let (_db, mut conn) = db_with_t();
        conn.append(
            "t",
            vec![
                ColumnBuffer::Int(vec![10, 11]),
                ColumnBuffer::Varchar(vec![Some("x".into()), None]),
                ColumnBuffer::Decimal { data: vec![100, 200], scale: 2 },
            ],
        )
        .unwrap();
        let r = conn.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(r.value(0, 0), Value::Bigint(5));
        // NOT NULL violation rejected.
        let e = conn.append(
            "t",
            vec![
                ColumnBuffer::Int(vec![monetlite_types::nulls::NULL_I32]),
                ColumnBuffer::Varchar(vec![None]),
                ColumnBuffer::Decimal { data: vec![0], scale: 2 },
            ],
        );
        assert!(e.is_err());
    }

    #[test]
    fn persistent_database_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        {
            let db = Database::open(dir.path()).unwrap();
            let mut conn = db.connect();
            conn.execute("CREATE TABLE p (x INT, y VARCHAR(5))").unwrap();
            conn.execute("INSERT INTO p VALUES (1, 'a'), (2, 'b')").unwrap();
            db.checkpoint().unwrap();
        }
        let db = Database::open(dir.path()).unwrap();
        let mut conn = db.connect();
        let r = conn.query("SELECT y FROM p WHERE x = 2").unwrap();
        assert_eq!(r.value(0, 0), Value::Str("b".into()));
    }

    #[test]
    fn create_order_index_and_query() {
        let (_db, mut conn) = db_with_t();
        conn.execute("CREATE ORDER INDEX oi ON t (a)").unwrap();
        let r = conn.query("SELECT b FROM t WHERE a = 2").unwrap();
        assert_eq!(r.value(0, 0), Value::Str("two".into()));
    }

    #[test]
    fn multiple_databases_same_process() {
        // The paper lists one-database-per-process as a limitation (§5);
        // the Rust design removes it.
        let db1 = Database::open_in_memory();
        let db2 = Database::open_in_memory();
        let mut c1 = db1.connect();
        let mut c2 = db2.connect();
        c1.execute("CREATE TABLE only1 (a INT)").unwrap();
        assert!(c2.query("SELECT * FROM only1").is_err());
    }

    #[test]
    fn tpch_like_join_query() {
        let db = Database::open_in_memory();
        let mut conn = db.connect();
        conn.run_script(
            "CREATE TABLE nation (n_key INT, n_name VARCHAR(25));
             CREATE TABLE customer (c_key INT, c_nation INT, c_acctbal DECIMAL(12,2));
             INSERT INTO nation VALUES (1, 'FRANCE'), (2, 'GERMANY');
             INSERT INTO customer VALUES (10, 1, 100.00), (11, 1, 50.00), (12, 2, 75.00);",
        )
        .unwrap();
        let r = conn
            .query(
                "SELECT n_name, sum(c_acctbal) AS total FROM customer, nation \
                 WHERE c_nation = n_key GROUP BY n_name ORDER BY total DESC",
            )
            .unwrap();
        assert_eq!(r.nrows(), 2);
        assert_eq!(r.value(0, 0), Value::Str("FRANCE".into()));
        assert_eq!(r.value(0, 1).to_string(), "150.00");
    }
}
