//! Out-of-core execution benches: pipeline breakers under a constrained
//! memory budget versus the unbounded in-memory path.
//!
//! * `spill_agg` — grouped aggregation with ~100k distinct groups, run
//!   unbounded and with budgets that force one and two levels of
//!   partitioned spilling.
//! * `spill_join` — a hash join whose transient build side exceeds the
//!   budget (grace join: both sides partitioned to disk).
//! * `spill_sort` — ORDER BY over a wide value range (external merge
//!   sort: sorted runs + k-way merge).
//!
//! Run with `MONETLITE_BENCH_JSON=BENCH_spill.json cargo bench --bench
//! spill` to record results.

use criterion::{criterion_group, criterion_main, Criterion};
use monetlite::exec::ExecOptions;
use monetlite_types::ColumnBuffer;

const UNBOUNDED: usize = usize::MAX;

fn opts(budget: usize) -> ExecOptions {
    ExecOptions {
        threads: 1,
        vector_size: 16 * 1024,
        memory_budget: budget,
        ..monetlite_bench::uncached_opts()
    }
}

fn budget_label(budget: usize) -> String {
    if budget == UNBOUNDED {
        "unbounded".into()
    } else {
        format!("{}kB", budget / 1024)
    }
}

fn bench_spill_agg(c: &mut Criterion) {
    let n: i32 = 1_000_000;
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE facts (g INTEGER NOT NULL, v INTEGER NOT NULL)").unwrap();
    conn.append(
        "facts",
        vec![
            ColumnBuffer::Int((0..n).map(|x| x % 100_000).collect()),
            ColumnBuffer::Int((0..n).collect()),
        ],
    )
    .unwrap();
    let sql = "SELECT g, count(*), sum(v) FROM facts GROUP BY g ORDER BY g LIMIT 5";
    let mut grp = c.benchmark_group("spill_agg");
    grp.sample_size(10);
    for budget in [UNBOUNDED, 4 << 20, 512 << 10] {
        conn.set_exec_options(opts(budget));
        grp.bench_function(format!("groupby_100k_groups_{}", budget_label(budget)), |b| {
            b.iter(|| conn.query(sql).unwrap())
        });
    }
    grp.finish();
}

fn bench_spill_join(c: &mut Criterion) {
    let nprobe: i32 = 1_000_000;
    let nbuild: i32 = 200_000;
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE probe (k INTEGER NOT NULL)").unwrap();
    conn.execute("CREATE TABLE build (k INTEGER NOT NULL, v INTEGER NOT NULL)").unwrap();
    conn.append("probe", vec![ColumnBuffer::Int((0..nprobe).map(|x| x % 400_000).collect())])
        .unwrap();
    conn.append(
        "build",
        vec![
            ColumnBuffer::Int((0..nbuild).collect()),
            ColumnBuffer::Int((0..nbuild).map(|x| x * 3).collect()),
        ],
    )
    .unwrap();
    // The build-side filter keeps the build transient (no automatic hash
    // index), which is the spillable shape.
    let sql = "SELECT count(*), sum(b.v) FROM probe p, build b WHERE p.k = b.k AND b.v >= 0";
    let mut grp = c.benchmark_group("spill_join");
    grp.sample_size(10);
    for budget in [UNBOUNDED, 1 << 20] {
        conn.set_exec_options(opts(budget));
        grp.bench_function(format!("hash_join_200k_build_{}", budget_label(budget)), |b| {
            b.iter(|| conn.query(sql).unwrap())
        });
    }
    grp.finish();
}

fn bench_spill_sort(c: &mut Criterion) {
    let n: i32 = 1_000_000;
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE seq (a INTEGER NOT NULL, b INTEGER NOT NULL)").unwrap();
    conn.append(
        "seq",
        vec![
            ColumnBuffer::Int(
                (0..n)
                    .map(|x| (x.wrapping_mul(0x9E37_79B9u32 as i32)).rem_euclid(1_000_000))
                    .collect(),
            ),
            ColumnBuffer::Int((0..n).collect()),
        ],
    )
    .unwrap();
    // No LIMIT: ORDER BY + LIMIT fuses into top-n (per-morsel compaction
    // already bounds its memory); the full sort is the spillable breaker.
    let sql = "SELECT a, b FROM seq ORDER BY a";
    let mut grp = c.benchmark_group("spill_sort");
    grp.sample_size(10);
    for budget in [UNBOUNDED, 2 << 20] {
        conn.set_exec_options(opts(budget));
        grp.bench_function(format!("order_by_1m_rows_{}", budget_label(budget)), |b| {
            b.iter(|| conn.query(sql).unwrap())
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_spill_agg, bench_spill_join, bench_spill_sort);
criterion_main!(benches);
