//! Dynamically-typed scalar values.
//!
//! `Value` is the row-at-a-time currency used by the SQL AST (literals),
//! the volcano row-store baseline, result spot-checks and the wire
//! protocol. The columnar engines never materialise `Value`s on hot paths.

use crate::date::Date;
use crate::decimal::Decimal;
use crate::error::{MlError, Result};
use crate::logical::LogicalType;
use std::cmp::Ordering;
use std::fmt;

/// A single scalar SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// BOOLEAN.
    Bool(bool),
    /// INTEGER.
    Int(i32),
    /// BIGINT.
    Bigint(i64),
    /// DOUBLE.
    Double(f64),
    /// DECIMAL.
    Decimal(Decimal),
    /// VARCHAR.
    Str(String),
    /// DATE.
    Date(Date),
}

impl Value {
    /// The logical type of this value, or `None` for NULL.
    pub fn logical_type(&self) -> Option<LogicalType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(LogicalType::Bool),
            Value::Int(_) => Some(LogicalType::Int),
            Value::Bigint(_) => Some(LogicalType::Bigint),
            Value::Double(_) => Some(LogicalType::Double),
            Value::Decimal(d) => Some(LogicalType::Decimal { width: 18, scale: d.scale }),
            Value::Str(_) => Some(LogicalType::Varchar),
            Value::Date(_) => Some(LogicalType::Date),
        }
    }

    /// True iff NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as f64 (NULL and non-numerics are errors).
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(v) => Ok(*v as f64),
            Value::Bigint(v) => Ok(*v as f64),
            Value::Double(v) => Ok(*v),
            Value::Decimal(d) => Ok(d.to_f64()),
            other => Err(MlError::TypeMismatch(format!("{other:?} is not numeric"))),
        }
    }

    /// Integer view (widening casts allowed, truncation is an error).
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v as i64),
            Value::Bigint(v) => Ok(*v),
            other => Err(MlError::TypeMismatch(format!("{other:?} is not an integer"))),
        }
    }

    /// String view.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(MlError::TypeMismatch(format!("{other:?} is not a string"))),
        }
    }

    /// SQL comparison: NULL compares as the smallest value (used only for
    /// ORDER BY; predicate kernels treat NULL as unknown separately).
    pub fn cmp_sql(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Decimal(a), Decimal(b)) => a.cmp_scaled(*b),
            // Mixed numerics compare through f64; exact enough for test and
            // ORDER BY use. Engines compare natively per column.
            (a, b) => {
                let (x, y) = (a.as_f64().unwrap_or(f64::NAN), b.as_f64().unwrap_or(f64::NAN));
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
        }
    }
}

/// `Display` writes values in wire-protocol / CSV form.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "true" } else { "false" }),
            Value::Int(v) => write!(f, "{v}"),
            Value::Bigint(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Decimal(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_of_values() {
        assert_eq!(Value::Int(1).logical_type(), Some(LogicalType::Int));
        assert_eq!(Value::Null.logical_type(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(3).as_f64().unwrap(), 3.0);
        assert_eq!(Value::Decimal(Decimal::new(150, 2)).as_f64().unwrap(), 1.5);
        assert!(Value::Str("x".into()).as_f64().is_err());
        assert_eq!(Value::Bigint(9).as_i64().unwrap(), 9);
        assert!(Value::Double(1.5).as_i64().is_err());
    }

    #[test]
    fn sql_ordering_null_first() {
        assert_eq!(Value::Null.cmp_sql(&Value::Int(1)), Ordering::Less);
        assert_eq!(Value::Int(1).cmp_sql(&Value::Null), Ordering::Greater);
        assert_eq!(Value::Null.cmp_sql(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn mixed_numeric_ordering() {
        assert_eq!(Value::Int(2).cmp_sql(&Value::Double(2.5)), Ordering::Less);
        assert_eq!(Value::Decimal(Decimal::new(250, 2)).cmp_sql(&Value::Int(2)), Ordering::Greater);
    }

    #[test]
    fn display_round() {
        assert_eq!(Value::Str("abc".into()).to_string(), "abc");
        assert_eq!(Value::Date(Date::parse("1995-03-15").unwrap()).to_string(), "1995-03-15");
        assert_eq!(Value::Decimal(Decimal::new(-105, 2)).to_string(), "-1.05");
    }
}
