//! Immutable catalog snapshots and column handles.
//!
//! Following MonetDB's optimistic model (paper §3.1 *Concurrency
//! Control*), "individual transactions operate on a snapshot of the
//! database". A [`CatalogSnapshot`] is an immutable map of table metadata;
//! connections hold an `Arc` to the snapshot current at transaction start
//! and never observe later commits.
//!
//! Columns are held through [`ColumnEntry`] handles that combine the
//! (possibly off-loaded) BAT with its attached secondary-index caches, and
//! through [`SegColumn`] — a persistent (structurally shared) chain of
//! appended segments that makes commit-time appends O(1) while reads see a
//! consolidated contiguous array.

use crate::bat::Bat;
use crate::dict::StrDict;
use crate::index::{bat_keys, HashIndex, Imprints, OrderIndex, Zonemap};
use crate::persist;
use crate::stats::ColumnStats;
use crate::vmem::{ResidentSlot, Vmem};
use monetlite_types::{LogicalType, MlError, Result, Schema};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Global column-id allocator (ids are unique per process; persisted ids
/// are namespaced by file name so uniqueness per store is what matters).
static NEXT_COLUMN_ID: AtomicU64 = AtomicU64::new(1);

fn next_column_id() -> u64 {
    NEXT_COLUMN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Secondary indexes attached to a column (paper §3.1 *Automatic
/// Indexing*). All three are caches: they can be dropped at any time
/// without affecting correctness.
#[derive(Default)]
pub struct IdxCache {
    /// Column imprints — built on first range select, destroyed on any
    /// modification of the column.
    pub imprints: Option<Arc<Imprints>>,
    /// Hash table — built on first group-by / equi-join use, *updated* on
    /// appends, destroyed on updates and deletes.
    pub hash: Option<Arc<HashIndex>>,
    /// Order index — only ever created via `CREATE ORDER INDEX`.
    pub order: Option<Arc<OrderIndex>>,
    /// Per-zone min/max summary — built on the first zonemap-eligible
    /// scan (or loaded from the checkpoint's `.zm` sidecar), used to skip
    /// whole vectors before any kernel runs.
    pub zonemap: Option<Arc<Zonemap>>,
    /// Column statistics (row/null counts, NDV sketch, min/max) — built
    /// on first optimizer use (or loaded from the checkpoint's `.st`
    /// sidecar), merged forward across appends at consolidation.
    pub stats: Option<Arc<ColumnStats>>,
    /// Sorted string dictionary (VARCHAR only) — built on first
    /// dictionary-eligible scan (or loaded from the checkpoint's `.dict`
    /// sidecar), extended forward across appends at consolidation.
    pub dict: Option<Arc<StrDict>>,
}

/// A handle to one physical column: its data (resident or off-loaded to a
/// backing file under vmem control) plus attached index caches.
pub struct ColumnEntry {
    /// Unique id (keys the vmem registry).
    pub id: u64,
    ty: LogicalType,
    len: usize,
    slot: Arc<ResidentSlot>,
    backing: Mutex<Option<PathBuf>>,
    vmem: Mutex<Option<Arc<Vmem>>>,
    idx: Mutex<IdxCache>,
}

impl std::fmt::Debug for ColumnEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnEntry")
            .field("id", &self.id)
            .field("ty", &self.ty)
            .field("len", &self.len)
            .finish()
    }
}

impl ColumnEntry {
    /// Wrap an in-memory BAT (fresh table data or consolidation result).
    pub fn from_bat(bat: Bat) -> ColumnEntry {
        ColumnEntry {
            id: next_column_id(),
            ty: bat.logical_type(),
            len: bat.len(),
            slot: Arc::new(Mutex::new(Some(Arc::new(bat)))),
            backing: Mutex::new(None),
            vmem: Mutex::new(None),
            idx: Mutex::new(IdxCache::default()),
        }
    }

    /// Create a handle to a persisted column that starts off-loaded; the
    /// data loads on first touch (startup never reads cold columns — the
    /// "near-instantaneous" open of the paper's embedded startup).
    pub fn from_file(path: PathBuf, ty: LogicalType, len: usize, vmem: Arc<Vmem>) -> ColumnEntry {
        ColumnEntry {
            id: next_column_id(),
            ty,
            len,
            slot: Arc::new(Mutex::new(None)),
            backing: Mutex::new(Some(path)),
            vmem: Mutex::new(Some(vmem)),
            idx: Mutex::new(IdxCache::default()),
        }
    }

    /// Logical type.
    pub fn ty(&self) -> LogicalType {
        self.ty
    }

    /// Row count (known without touching the data).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Get the column data, transparently reloading from the backing file
    /// when it was evicted, and informing the vmem clock of the touch.
    pub fn bat(&self) -> Result<Arc<Bat>> {
        // Fast path: resident. The slot lock is dropped before vmem is
        // touched — slot locks and the vmem registry lock are never held
        // together on this path (the evictor holds them in the opposite
        // order).
        let resident = self.slot.lock().clone();
        if let Some(bat) = resident {
            if let Some(vm) = self.vmem.lock().clone() {
                vm.touch(self.id, &self.slot, bat.size_bytes(), false);
            }
            return Ok(bat);
        }
        let path = self
            .backing
            .lock()
            .clone()
            .ok_or_else(|| MlError::Corrupt("column evicted without backing file".into()))?;
        let bat = Arc::new(persist::read_column_file(&path)?);
        if bat.len() != self.len {
            return Err(MlError::Corrupt(format!(
                "{}: expected {} rows, found {}",
                path.display(),
                self.len,
                bat.len()
            )));
        }
        *self.slot.lock() = Some(bat.clone());
        if let Some(vm) = self.vmem.lock().clone() {
            vm.touch(self.id, &self.slot, bat.size_bytes(), true);
        }
        Ok(bat)
    }

    /// Attach a backing file after checkpointing this column, placing it
    /// under vmem eviction control.
    pub fn attach_backing(&self, path: PathBuf, vmem: Arc<Vmem>) {
        *self.backing.lock() = Some(path);
        let bytes = self.slot.lock().as_ref().map(|b| b.size_bytes());
        *self.vmem.lock() = Some(vmem.clone());
        if let Some(bytes) = bytes {
            vmem.touch(self.id, &self.slot, bytes, false);
        }
    }

    /// Whether a backing file exists (the column survives restart).
    pub fn is_backed(&self) -> bool {
        self.backing.lock().is_some()
    }

    /// The backing file path, if any.
    pub fn backing_path(&self) -> Option<PathBuf> {
        self.backing.lock().clone()
    }

    /// Get or build the hash index for this column.
    pub fn hash_index(&self) -> Result<Arc<HashIndex>> {
        if let Some(h) = &self.idx.lock().hash {
            return Ok(h.clone());
        }
        let bat = self.bat()?;
        let built = Arc::new(HashIndex::build(&bat_keys(&bat)));
        let mut g = self.idx.lock();
        // Another thread may have raced us; keep whichever is present.
        Ok(g.hash.get_or_insert(built).clone())
    }

    /// Get or build column imprints (only meaningful for orderable types;
    /// callers check [`crate::index::orderable`]).
    pub fn imprints(&self) -> Result<Arc<Imprints>> {
        if let Some(im) = &self.idx.lock().imprints {
            return Ok(im.clone());
        }
        let bat = self.bat()?;
        let built = Arc::new(Imprints::build(&bat_keys(&bat)));
        let mut g = self.idx.lock();
        Ok(g.imprints.get_or_insert(built).clone())
    }

    /// Get or build the column's zonemap. Resolution order: in-memory
    /// cache, then the checkpoint's `.zm` sidecar (so a cold column can
    /// be skipped without faulting its data in), then a one-pass build
    /// from the column. Sidecar validation failures are cache misses, not
    /// errors.
    pub fn zonemap(&self) -> Result<Arc<Zonemap>> {
        if let Some(z) = &self.idx.lock().zonemap {
            return Ok(z.clone());
        }
        if let Some(p) = self.backing_path() {
            let zp = crate::persist::zonemap_sidecar(&p);
            if zp.exists() {
                if let Ok(zm) = crate::persist::read_zonemap_file(&zp) {
                    if zm.rows() == self.len {
                        let mut g = self.idx.lock();
                        return Ok(g.zonemap.get_or_insert(Arc::new(zm)).clone());
                    }
                }
            }
        }
        let bat = self.bat()?;
        let built = Arc::new(Zonemap::build(&bat));
        let mut g = self.idx.lock();
        Ok(g.zonemap.get_or_insert(built).clone())
    }

    /// Install a pre-built zonemap (checkpoint writes the sidecar from
    /// the freshly consolidated column and caches it here).
    pub fn install_zonemap(&self, z: Arc<Zonemap>) {
        self.idx.lock().zonemap = Some(z);
    }

    /// Get or build the column's statistics. Resolution order: in-memory
    /// cache, then the checkpoint's `.st` sidecar (so the optimizer can
    /// cost a cold column without faulting its data in), then a one-pass
    /// build from the column. Sidecar validation failures are cache
    /// misses, not errors.
    pub fn stats(&self) -> Result<Arc<ColumnStats>> {
        if let Some(s) = &self.idx.lock().stats {
            return Ok(s.clone());
        }
        if let Some(p) = self.backing_path() {
            let sp = crate::persist::stats_sidecar(&p);
            if sp.exists() {
                if let Ok(st) = crate::persist::read_stats_file(&sp) {
                    if st.rows == self.len {
                        let mut g = self.idx.lock();
                        return Ok(g.stats.get_or_insert(Arc::new(st)).clone());
                    }
                }
            }
        }
        let bat = self.bat()?;
        let built = Arc::new(ColumnStats::build(&bat));
        let mut g = self.idx.lock();
        Ok(g.stats.get_or_insert(built).clone())
    }

    /// Peek at existing statistics without building them.
    pub fn stats_opt(&self) -> Option<Arc<ColumnStats>> {
        self.idx.lock().stats.clone()
    }

    /// Install pre-built statistics (consolidation merges the base
    /// segment's cached stats with the appended segments'; checkpoint
    /// caches what it writes to the sidecar).
    pub fn install_stats(&self, s: Arc<ColumnStats>) {
        self.idx.lock().stats = Some(s);
    }

    /// Peek at an existing zonemap without building one.
    pub fn zonemap_opt(&self) -> Option<Arc<Zonemap>> {
        self.idx.lock().zonemap.clone()
    }

    /// Get or build the column's string dictionary (VARCHAR only; other
    /// types error — callers check the type first). Resolution order:
    /// in-memory cache, then the checkpoint's `.dict` sidecar (validated
    /// against the row count — corruption or staleness is a cache miss),
    /// then a sort-and-encode pass over the column.
    pub fn dict(&self) -> Result<Arc<StrDict>> {
        if let Some(d) = &self.idx.lock().dict {
            return Ok(d.clone());
        }
        if let Some(p) = self.backing_path() {
            let dp = crate::persist::dict_sidecar(&p);
            if dp.exists() {
                if let Ok(d) = crate::persist::read_dict_file(&dp) {
                    if d.rows() == self.len {
                        let mut g = self.idx.lock();
                        return Ok(g.dict.get_or_insert(Arc::new(d)).clone());
                    }
                }
            }
        }
        let bat = self.bat()?;
        let built = StrDict::build(&bat)
            .ok_or_else(|| MlError::Execution("dictionary over non-VARCHAR column".into()))?;
        let mut g = self.idx.lock();
        Ok(g.dict.get_or_insert(Arc::new(built)).clone())
    }

    /// Peek at an existing dictionary without building one.
    pub fn dict_opt(&self) -> Option<Arc<StrDict>> {
        self.idx.lock().dict.clone()
    }

    /// Install a pre-built dictionary (consolidation extends the base
    /// segment's dictionary; checkpoint caches what it writes to the
    /// sidecar).
    pub fn install_dict(&self, d: Arc<StrDict>) {
        self.idx.lock().dict = Some(d);
    }

    /// Get or build the order index (CREATE ORDER INDEX and its users).
    pub fn order_index(&self) -> Result<Arc<OrderIndex>> {
        if let Some(o) = &self.idx.lock().order {
            return Ok(o.clone());
        }
        let bat = self.bat()?;
        let built = Arc::new(OrderIndex::build(&bat_keys(&bat)));
        let mut g = self.idx.lock();
        Ok(g.order.get_or_insert(built).clone())
    }

    /// Peek at an existing order index without building one.
    pub fn order_index_opt(&self) -> Option<Arc<OrderIndex>> {
        self.idx.lock().order.clone()
    }

    /// Peek at an existing hash index without building one.
    pub fn hash_index_opt(&self) -> Option<Arc<HashIndex>> {
        self.idx.lock().hash.clone()
    }

    /// Install a pre-built hash index (used when consolidation carries an
    /// index forward across an append, per the paper's "hash tables ...
    /// are updated on appends").
    pub fn install_hash(&self, h: Arc<HashIndex>) {
        self.idx.lock().hash = Some(h);
    }

    /// Install a pre-built order index.
    pub fn install_order(&self, o: Arc<OrderIndex>) {
        self.idx.lock().order = Some(o);
    }
}

// ---------------------------------------------------------------------------
// Segmented columns: O(1) append with structural sharing
// ---------------------------------------------------------------------------

/// A node in the append chain. `prev` points at the state before this
/// segment was appended.
pub struct SegNode {
    entry: Arc<ColumnEntry>,
    prev: Option<Arc<SegNode>>,
    total_rows: usize,
    depth: usize,
    /// Rows of the deepest (base) segment — kept here so the commit-time
    /// consolidation policy is O(1) instead of walking the chain (which
    /// made single-row INSERT streams quadratic).
    base_rows: usize,
}

impl Drop for SegNode {
    fn drop(&mut self) {
        // Iterative drop: a long append chain must not recurse.
        let mut prev = self.prev.take();
        while let Some(node) = prev {
            match Arc::try_unwrap(node) {
                Ok(mut n) => prev = n.prev.take(),
                Err(_) => break,
            }
        }
    }
}

/// One logical column of a table: a chain of appended segments with a
/// cached consolidated view.
pub struct SegColumn {
    head: Arc<SegNode>,
    consolidated: Mutex<Option<Arc<ColumnEntry>>>,
}

impl std::fmt::Debug for SegColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegColumn")
            .field("rows", &self.rows())
            .field("depth", &self.depth())
            .finish()
    }
}

impl Clone for SegColumn {
    fn clone(&self) -> Self {
        SegColumn {
            head: self.head.clone(),
            consolidated: Mutex::new(self.consolidated.lock().clone()),
        }
    }
}

impl SegColumn {
    /// Single-segment column.
    pub fn from_entry(entry: Arc<ColumnEntry>) -> SegColumn {
        let total_rows = entry.len();
        SegColumn {
            head: Arc::new(SegNode {
                entry,
                prev: None,
                total_rows,
                depth: 1,
                base_rows: total_rows,
            }),
            consolidated: Mutex::new(None),
        }
    }

    /// Total rows across all segments.
    pub fn rows(&self) -> usize {
        self.head.total_rows
    }

    /// Chain length.
    pub fn depth(&self) -> usize {
        self.head.depth
    }

    /// Logical type.
    pub fn ty(&self) -> LogicalType {
        self.head.entry.ty()
    }

    /// O(1) append: a new chain sharing every existing segment.
    pub fn appended(&self, bat: Bat) -> SegColumn {
        let rows = bat.len();
        SegColumn {
            head: Arc::new(SegNode {
                entry: Arc::new(ColumnEntry::from_bat(bat)),
                prev: Some(self.head.clone()),
                total_rows: self.head.total_rows + rows,
                depth: self.head.depth + 1,
                base_rows: self.head.base_rows,
            }),
            consolidated: Mutex::new(None),
        }
    }

    /// Whether the commit path should consolidate this column now: either
    /// the appended tail has grown to the size of the base segment
    /// (amortised-doubling) or the chain is getting long.
    pub fn wants_consolidation(&self) -> bool {
        if self.head.depth <= 1 {
            return false;
        }
        if self.head.depth >= 4096 {
            return true;
        }
        let base_rows = self.head.base_rows;
        let tail_rows = self.head.total_rows - base_rows;
        tail_rows >= base_rows.max(1024)
    }

    /// The contiguous view of this column. Single-segment columns return
    /// their entry directly; multi-segment columns consolidate once and
    /// cache the result. Consolidation carries the base segment's hash
    /// index forward by appending the new keys (paper: hash indexes are
    /// updated on appends; imprints and order indexes are destroyed).
    pub fn entry(&self) -> Result<Arc<ColumnEntry>> {
        if self.head.depth == 1 {
            return Ok(self.head.entry.clone());
        }
        if let Some(c) = &*self.consolidated.lock() {
            return Ok(c.clone());
        }
        let consolidated = self.consolidate()?;
        let mut g = self.consolidated.lock();
        Ok(g.get_or_insert(consolidated).clone())
    }

    /// Collapse the chain into a fresh single [`ColumnEntry`].
    pub fn consolidate(&self) -> Result<Arc<ColumnEntry>> {
        // Collect segments oldest-first.
        let mut segs = Vec::with_capacity(self.head.depth);
        let mut node = Some(&self.head);
        while let Some(n) = node {
            segs.push(n.entry.clone());
            node = n.prev.as_ref();
        }
        segs.reverse();
        let base = &segs[0];
        let mut bat = (*base.bat()?).clone();
        for seg in &segs[1..] {
            bat.append_bat(&seg.bat()?.as_ref().clone())?;
        }
        // Carry the hash index forward across the append.
        let carried_hash = match base.hash_index_opt() {
            Some(h) => {
                let mut h2 = (*h).clone();
                let mut at = base.len() as u32;
                for seg in &segs[1..] {
                    h2.append(&bat_keys(seg.bat()?.as_ref()), at);
                    at += seg.len() as u32;
                }
                Some(Arc::new(h2))
            }
            None => None,
        };
        // Carry column statistics forward: merge the base's cached stats
        // with one-pass stats of each (small) appended segment instead of
        // rescanning the whole column.
        let carried_stats = match base.stats_opt() {
            Some(s) => {
                let mut acc = (*s).clone();
                for seg in &segs[1..] {
                    acc = acc.merge(&ColumnStats::build(seg.bat()?.as_ref()));
                }
                Some(Arc::new(acc))
            }
            None => None,
        };
        // Carry the string dictionary forward: a sorted merge of the new
        // segments' distinct values plus a code remap — never a rescan of
        // the base rows' strings.
        let carried_dict = match base.dict_opt() {
            Some(d) => {
                let tails: Vec<Arc<Bat>> =
                    segs[1..].iter().map(|s| s.bat()).collect::<Result<_>>()?;
                let refs: Vec<&Bat> = tails.iter().map(|b| b.as_ref()).collect();
                d.extended(&refs).map(Arc::new)
            }
            None => None,
        };
        let entry = Arc::new(ColumnEntry::from_bat(bat));
        if let Some(h) = carried_hash {
            entry.install_hash(h);
        }
        if let Some(s) = carried_stats {
            entry.install_stats(s);
        }
        if let Some(d) = carried_dict {
            entry.install_dict(d);
        }
        Ok(entry)
    }
}

// ---------------------------------------------------------------------------
// Tables and snapshots
// ---------------------------------------------------------------------------

/// The data of one table version: segmented columns plus a deletion mask.
#[derive(Debug, Clone)]
pub struct TableData {
    /// One segmented column per schema field.
    pub cols: Vec<SegColumn>,
    /// Deletion bitmap over physical rows (`None` = nothing deleted).
    pub deleted: Option<Arc<Vec<bool>>>,
    /// Physical rows (including deleted ones).
    pub rows: usize,
    /// Number of deleted rows.
    pub deleted_count: usize,
}

impl TableData {
    /// Empty table data for a schema.
    pub fn empty(schema: &Schema) -> TableData {
        TableData {
            cols: schema
                .fields()
                .iter()
                .map(|f| SegColumn::from_entry(Arc::new(ColumnEntry::from_bat(Bat::new(f.ty)))))
                .collect(),
            deleted: None,
            rows: 0,
            deleted_count: 0,
        }
    }

    /// Rows visible to scans.
    pub fn visible_rows(&self) -> usize {
        self.rows - self.deleted_count
    }

    /// New version with `bats` appended column-wise (O(1) in existing
    /// data; consolidation happens per policy).
    pub fn appended(&self, bats: Vec<Bat>) -> Result<TableData> {
        if bats.len() != self.cols.len() {
            return Err(MlError::Execution(format!(
                "append expects {} columns, got {}",
                self.cols.len(),
                bats.len()
            )));
        }
        let added = bats.first().map_or(0, |b| b.len());
        if bats.iter().any(|b| b.len() != added) {
            return Err(MlError::Execution("append columns have unequal lengths".into()));
        }
        let mut cols = Vec::with_capacity(self.cols.len());
        for (sc, bat) in self.cols.iter().zip(bats) {
            let appended = sc.appended(bat);
            if appended.wants_consolidation() {
                cols.push(SegColumn::from_entry(appended.consolidate()?));
            } else {
                cols.push(appended);
            }
        }
        let deleted = match &self.deleted {
            None => None,
            Some(d) => {
                let mut d2 = (**d).clone();
                d2.resize(self.rows + added, false);
                Some(Arc::new(d2))
            }
        };
        Ok(TableData { cols, deleted, rows: self.rows + added, deleted_count: self.deleted_count })
    }

    /// New version with additional rows marked deleted.
    pub fn with_deleted(&self, rows_to_delete: &[u32]) -> TableData {
        let mut d = match &self.deleted {
            Some(d) => (**d).clone(),
            None => vec![false; self.rows],
        };
        let mut newly = 0;
        for &r in rows_to_delete {
            let r = r as usize;
            if r < d.len() && !d[r] {
                d[r] = true;
                newly += 1;
            }
        }
        TableData {
            cols: self.cols.clone(),
            deleted: Some(Arc::new(d)),
            rows: self.rows,
            deleted_count: self.deleted_count + newly,
        }
    }
}

/// Metadata + data for one table version.
#[derive(Debug)]
pub struct TableMeta {
    /// Stable table id.
    pub id: u64,
    /// Lower-cased table name.
    pub name: String,
    /// Column definitions.
    pub schema: Schema,
    /// Current data version.
    pub data: TableData,
    /// Version counter, bumped by every committed write; the optimistic
    /// commit protocol validates it (write-write conflict detection).
    pub version: u64,
    /// Column positions carrying a user-created ORDER INDEX (re-built
    /// lazily after restart or append).
    pub ordered_cols: Vec<usize>,
}

/// An immutable snapshot of the whole catalog.
#[derive(Debug, Default)]
pub struct CatalogSnapshot {
    /// Tables by lower-cased name.
    pub tables: HashMap<String, Arc<TableMeta>>,
}

impl CatalogSnapshot {
    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Arc<TableMeta>> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| MlError::Catalog(format!("unknown table '{name}'")))
    }

    /// Table names in sorted order (for stable catalog listings).
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_types::{ColumnBuffer, Field};

    fn int_entry(vals: Vec<i32>) -> Arc<ColumnEntry> {
        Arc::new(ColumnEntry::from_bat(Bat::Int(vals)))
    }

    #[test]
    fn entry_roundtrips_bat() {
        let e = int_entry(vec![1, 2, 3]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.bat().unwrap().get(1), monetlite_types::Value::Int(2));
        assert!(!e.is_backed());
    }

    #[test]
    fn seg_column_append_is_structural() {
        let c0 = SegColumn::from_entry(int_entry(vec![1, 2]));
        let c1 = c0.appended(Bat::Int(vec![3]));
        let c2 = c1.appended(Bat::Int(vec![4, 5]));
        assert_eq!(c0.rows(), 2);
        assert_eq!(c1.rows(), 3);
        assert_eq!(c2.rows(), 5);
        assert_eq!(c2.depth(), 3);
        // Consolidated view sees everything in order.
        let e = c2.entry().unwrap();
        let bat = e.bat().unwrap();
        assert_eq!(bat.to_buffer(None), ColumnBuffer::Int(vec![1, 2, 3, 4, 5]));
        // Older version unaffected.
        assert_eq!(c1.entry().unwrap().bat().unwrap().len(), 3);
    }

    #[test]
    fn consolidation_carries_hash_index() {
        let base = int_entry(vec![10, 20, 10]);
        let _ = base.hash_index().unwrap(); // build on base
        let col = SegColumn::from_entry(base).appended(Bat::Int(vec![20]));
        let e = col.entry().unwrap();
        let h = e.hash_index_opt().expect("hash index carried across append");
        assert_eq!(h.lookup(10), &[0, 2]);
        assert_eq!(h.lookup(20), &[1, 3]);
    }

    #[test]
    fn consolidation_drops_imprints_and_order() {
        let base = int_entry(vec![3, 1, 2]);
        let _ = base.imprints().unwrap();
        let _ = base.order_index().unwrap();
        let col = SegColumn::from_entry(base).appended(Bat::Int(vec![0]));
        let e = col.entry().unwrap();
        assert!(e.order_index_opt().is_none(), "order index must not survive appends");
        assert!(e.idx.lock().imprints.is_none(), "imprints must not survive appends");
        assert!(e.zonemap_opt().is_none(), "zonemaps must not survive appends");
    }

    #[test]
    fn zonemap_cached_and_dropped_on_consolidation() {
        let base = int_entry((0..100).collect());
        let z1 = base.zonemap().unwrap();
        assert_eq!(z1.rows(), 100);
        assert!(Arc::ptr_eq(&z1, &base.zonemap().unwrap()), "second call hits the cache");
        let _ = base.zonemap_opt().expect("cached");
        // Consolidation produces a fresh entry with no stale zonemap.
        let col = SegColumn::from_entry(base).appended(Bat::Int(vec![7]));
        let e = col.entry().unwrap();
        assert!(e.zonemap_opt().is_none());
        assert_eq!(e.zonemap().unwrap().rows(), 101, "rebuilt over the consolidated data");
    }

    #[test]
    fn stats_cached_and_merged_across_consolidation() {
        let base = int_entry(vec![1, 2, 2, i32::MIN]);
        let s1 = base.stats().unwrap();
        assert_eq!((s1.rows, s1.nulls), (4, 1));
        assert!(Arc::ptr_eq(&s1, &base.stats().unwrap()), "second call hits the cache");
        // Consolidation merges instead of rescanning; the result must
        // equal a fresh build over the concatenated data.
        let col = SegColumn::from_entry(base).appended(Bat::Int(vec![9, i32::MIN]));
        let e = col.entry().unwrap();
        let carried = e.stats_opt().expect("stats carried across append");
        let rebuilt = ColumnStats::build(&e.bat().unwrap());
        assert_eq!((carried.rows, carried.nulls), (rebuilt.rows, rebuilt.nulls));
        assert_eq!((carried.min_key, carried.max_key), (rebuilt.min_key, rebuilt.max_key));
        assert_eq!(carried.sketch, rebuilt.sketch, "HLL merge is order-insensitive");
    }

    #[test]
    fn dict_cached_and_extended_across_consolidation() {
        let vc = |vals: Vec<Option<&str>>| {
            Bat::from_buffer(&ColumnBuffer::Varchar(
                vals.into_iter().map(|s| s.map(String::from)).collect(),
            ))
        };
        let base = Arc::new(ColumnEntry::from_bat(vc(vec![Some("m"), Some("c"), None])));
        let d1 = base.dict().unwrap();
        assert_eq!(d1.len(), 2);
        assert!(Arc::ptr_eq(&d1, &base.dict().unwrap()), "second call hits the cache");
        // Consolidation extends instead of rebuilding from strings; the
        // result must equal a fresh build over the concatenated data.
        let col = SegColumn::from_entry(base).appended(vc(vec![Some("a"), Some("m")]));
        let e = col.entry().unwrap();
        let carried = e.dict_opt().expect("dictionary carried across append");
        let rebuilt = crate::dict::StrDict::build(&e.bat().unwrap()).unwrap();
        assert_eq!(*carried, rebuilt, "extend must equal rebuild");
        assert_eq!(carried.codes().len(), 5);
        // Without a prior dictionary touch, consolidation must not pay
        // the sort-and-encode pass.
        let col2 = SegColumn::from_entry(Arc::new(ColumnEntry::from_bat(vc(vec![Some("x")]))))
            .appended(vc(vec![Some("y")]));
        assert!(col2.entry().unwrap().dict_opt().is_none());
        // dict() on a non-VARCHAR column is an error, not a panic.
        assert!(int_entry(vec![1]).dict().is_err());
    }

    #[test]
    fn stats_not_built_eagerly_on_consolidation() {
        // Without a prior optimizer touch, consolidation must not pay a
        // stats pass; the next stats() call builds over the consolidated
        // column.
        let col = SegColumn::from_entry(int_entry(vec![1, 2])).appended(Bat::Int(vec![3]));
        let e = col.entry().unwrap();
        assert!(e.stats_opt().is_none());
        let s = e.stats().unwrap();
        assert_eq!(s.rows, 3);
        assert_eq!((s.min_key, s.max_key), (1, 3));
    }

    #[test]
    fn deep_chain_drop_does_not_overflow() {
        let mut col = SegColumn::from_entry(int_entry(vec![0]));
        for i in 0..20_000 {
            col = col.appended(Bat::Int(vec![i]));
        }
        assert_eq!(col.depth(), 20_001);
        drop(col); // must not blow the stack
    }

    #[test]
    fn wants_consolidation_doubling() {
        let mut col = SegColumn::from_entry(int_entry((0..2048).collect()));
        col = col.appended(Bat::Int(vec![1]));
        assert!(!col.wants_consolidation());
        col = col.appended(Bat::Int((0..3000).collect()));
        assert!(col.wants_consolidation(), "tail >= base triggers consolidation");
    }

    #[test]
    fn table_data_append_and_delete() {
        let schema = Schema::new(vec![
            Field::new("a", LogicalType::Int),
            Field::new("b", LogicalType::Varchar),
        ])
        .unwrap();
        let t0 = TableData::empty(&schema);
        let t1 = t0
            .appended(vec![
                Bat::Int(vec![1, 2, 3]),
                Bat::from_buffer(&ColumnBuffer::Varchar(vec![
                    Some("x".into()),
                    Some("y".into()),
                    None,
                ])),
            ])
            .unwrap();
        assert_eq!(t1.visible_rows(), 3);
        let t2 = t1.with_deleted(&[1]);
        assert_eq!(t2.visible_rows(), 2);
        assert_eq!(t1.visible_rows(), 3, "snapshot isolation: old version untouched");
        // Deleting the same row twice is idempotent.
        let t3 = t2.with_deleted(&[1]);
        assert_eq!(t3.visible_rows(), 2);
        // Append after delete keeps the mask consistent.
        let t4 = t2
            .appended(vec![Bat::Int(vec![9]), Bat::from_buffer(&ColumnBuffer::Varchar(vec![None]))])
            .unwrap();
        assert_eq!(t4.rows, 4);
        assert_eq!(t4.visible_rows(), 3);
    }

    #[test]
    fn append_arity_and_length_checked() {
        let schema = Schema::new(vec![Field::new("a", LogicalType::Int)]).unwrap();
        let t0 = TableData::empty(&schema);
        assert!(t0.appended(vec![]).is_err());
        let schema2 =
            Schema::new(vec![Field::new("a", LogicalType::Int), Field::new("b", LogicalType::Int)])
                .unwrap();
        let t0 = TableData::empty(&schema2);
        assert!(t0.appended(vec![Bat::Int(vec![1]), Bat::Int(vec![1, 2])]).is_err());
    }

    #[test]
    fn snapshot_lookup() {
        let mut snap = CatalogSnapshot::default();
        let schema = Schema::new(vec![Field::new("a", LogicalType::Int)]).unwrap();
        snap.tables.insert(
            "t".into(),
            Arc::new(TableMeta {
                id: 1,
                name: "t".into(),
                schema: schema.clone(),
                data: TableData::empty(&schema),
                version: 0,
                ordered_cols: vec![],
            }),
        );
        assert!(snap.table("T").is_ok(), "case-insensitive lookup");
        assert!(snap.table("missing").is_err());
        assert_eq!(snap.table_names(), vec!["t"]);
    }
}
