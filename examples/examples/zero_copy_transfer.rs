//! The three result-transfer modes of §3.3 side by side: zero-copy with
//! copy-on-write, eager conversion, and lazy conversion.
//!
//! ```sh
//! cargo run --release -p monetlite-examples --example zero_copy_transfer
//! ```

use monetlite::host::{HostColumn, HostFrame, TransferMode};
use monetlite::Database;
use monetlite_types::ColumnBuffer;
use std::time::Instant;

fn main() -> monetlite::types::Result<()> {
    let n = 2_000_000;
    let db = Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE big (a INTEGER NOT NULL, b DOUBLE, c VARCHAR(20))")?;
    conn.append(
        "big",
        vec![
            ColumnBuffer::Int((0..n).collect()),
            ColumnBuffer::Double((0..n).map(|x| x as f64 / 3.0).collect()),
            ColumnBuffer::Varchar((0..n).map(|x| Some(format!("s{}", x % 100))).collect()),
        ],
    )?;
    let r = conn.query("SELECT * FROM big")?;

    for mode in [TransferMode::ZeroCopy, TransferMode::Eager, TransferMode::Lazy] {
        let t0 = Instant::now();
        let frame = HostFrame::import(&r, mode);
        println!(
            "{mode:?}: {:?} (shared {} / converted {} / deferred {}, {} bytes copied)",
            t0.elapsed(),
            frame.stats.zero_copied,
            frame.stats.converted,
            frame.stats.deferred,
            frame.stats.bytes_copied
        );
    }

    // Copy-on-write: the host may mutate its view; the database data is
    // never touched (the paper used mprotect — here the type system).
    let mut frame = HostFrame::import(&r, TransferMode::ZeroCopy);
    if let HostColumn::Shared(s) = frame.col_mut(0) {
        println!("before write: shared={}", s.is_shared());
        if let monetlite::storage::Bat::Int(v) = s.make_mut() {
            v[0] = -1;
        }
        println!("after write:  shared={}", s.is_shared());
    }
    println!("host sees {:?}, database still has {:?}", frame.cols[0].get(0), r.value(0, 0));

    // Lazy conversion: pay only for the columns actually touched.
    let frame = HostFrame::import(&r, TransferMode::Lazy);
    let t0 = Instant::now();
    let _ = frame.cols[0].get(123);
    println!(
        "lazy touch of one column: {:?}, conversions performed: {}",
        t0.elapsed(),
        frame.lazy_conversions()
    );
    Ok(())
}
