//! Workspace invariant linter.
//!
//! `cargo run -p xlint` enforces the engine disciplines that `rustc` and
//! clippy cannot see because they live *across* files and layers:
//!
//! 1. **Kernel twins** — every dense kernel in `kernels.rs` that has a
//!    `_sel` (candidate-list) twin must be reachable from `eval`, its twin
//!    from `eval_sel`, and a parity proptest must pit the two entry points
//!    against each other. A kernel added on one side only silently decays
//!    the candidate-list path back to materialization (or worse, diverges).
//! 2. **Checksum discipline** — every `read_*_file` sidecar reader in
//!    `persist.rs` must validate an fnv1a checksum and report failures as
//!    `MlError::Corrupt` before constructing a value from the bytes.
//! 3. **Counter liveness** — every `ExecCounters` field must be bumped
//!    somewhere in the engine and surfaced through `CountersSnapshot`;
//!    dead counters rot into misleading EXPLAIN/bench output.
//! 4. **Env-var registry** — every `MONETLITE_*` environment variable read
//!    anywhere in the workspace (or set by CI) must appear in the options
//!    table in `ARCHITECTURE.md`, and every documented row must still have
//!    a reader. Undocumented knobs are how ablation flags get lost.
//! 5. **No-panic hot path** — `unwrap`/`expect`/`panic!`-family macros are
//!    banned in the non-test code of the six hot-path files; a worker
//!    thread that panics should never have been able to. The escape hatch
//!    is `// xlint: allow(panic, <reason>)` on the same or preceding line,
//!    and the report counts every use of it.
//! 6. **Shim conformance** — the vendored dependency shims under `vendor/`
//!    may only export names the real crates export, so the workspace keeps
//!    compiling the day the shims are replaced by the genuine articles.
//!    Shim-internal helpers need `// xlint: allow(shim-export, <reason>)`.
//! 7. **Failpoint coverage** — non-test code in `crates/storage` and
//!    `core/spill.rs` must route file I/O through the
//!    `monetlite_storage::fault` wrappers: raw `File::`/`std::fs::`/
//!    `.write_all(`/`.sync_all(` calls are banned (else the fault-injection
//!    sweep silently loses coverage of that site). The escape hatch is
//!    `// xlint: allow(raw-io, <reason>)`, and the report counts its uses.
//!
//! Each rule is a standalone `check_*` function taking the workspace root,
//! so the meta-tests can seed one violation into a synthetic tree and
//! prove the rule still fires. All analysis is textual: a
//! length-preserving pass blanks comments and string literals so token
//! scans and brace matching cannot be fooled by either, and everything
//! from the first `#[cfg(test)]` onward is ignored (the repo convention
//! keeps the test module last in each file).

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One broken invariant, pointing at the offending file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (e.g. `no-panic`).
    pub rule: &'static str,
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line, or 0 when the finding is file-scoped.
    pub line: usize,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "[{}] {}: {}", self.rule, self.file, self.msg)
        } else {
            write!(f, "[{}] {}:{}: {}", self.rule, self.file, self.line, self.msg)
        }
    }
}

/// Output of one rule: hard failures plus informational notes
/// (annotation counts, advisory tallies) for the report.
#[derive(Debug, Default)]
pub struct RuleResult {
    /// Failures that flip the exit code.
    pub violations: Vec<Violation>,
    /// Informational lines for the report.
    pub notes: Vec<String>,
}

impl RuleResult {
    fn fail(&mut self, rule: &'static str, file: &str, line: usize, msg: impl Into<String>) {
        self.violations.push(Violation { rule, file: file.to_string(), line, msg: msg.into() });
    }
}

/// Aggregate outcome of a full lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations across rules.
    pub violations: Vec<Violation>,
    /// All notes across rules.
    pub notes: Vec<String>,
}

impl Report {
    /// True when no rule found a violation.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render the report as printable text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for n in &self.notes {
            out.push_str("note: ");
            out.push_str(n);
            out.push('\n');
        }
        for v in &self.violations {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        if self.is_clean() {
            out.push_str("xlint: all invariants hold\n");
        } else {
            out.push_str(&format!("xlint: {} violation(s)\n", self.violations.len()));
        }
        out
    }
}

/// Run every rule against the workspace rooted at `root`.
pub fn run(root: &Path) -> Report {
    let mut report = Report::default();
    for part in [
        check_kernel_twins(root),
        check_checksum_discipline(root),
        check_counter_liveness(root),
        check_env_registry(root),
        check_no_panic(root),
        check_shim_exports(root),
        check_raw_io(root),
    ] {
        report.violations.extend(part.violations);
        report.notes.extend(part.notes);
    }
    report
}

// ---------------------------------------------------------------------------
// Source-text utilities
// ---------------------------------------------------------------------------

/// Blank out comments, string literals and char literals, preserving the
/// byte length and every newline so offsets and line numbers stay valid.
/// Handles nested block comments, raw strings with hashes, and avoids
/// mistaking lifetimes for char literals.
pub fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = src.as_bytes().to_vec();
    let n = b.len();
    let mut i = 0;
    let blank = |out: &mut Vec<u8>, from: usize, to: usize| {
        for slot in &mut out[from..to] {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    };
    while i < n {
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let end = src[i..].find('\n').map(|p| i + p).unwrap_or(n);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                let (hashes, body_start) = raw_string_open(b, i);
                let closer: Vec<u8> =
                    std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
                let end = find_bytes(b, body_start, &closer).map(|p| p + closer.len()).unwrap_or(n);
                blank(&mut out, i, end);
                i = end;
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < n {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'"' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i.min(n));
            }
            b'\'' => {
                // Char literal iff it closes within a few bytes; otherwise a
                // lifetime like `&'a str`, left alone.
                if let Some(end) = char_literal_end(b, i) {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // r"..."  r#"..."#  br"..."  b"..." is handled by the '"' arm.
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return false;
    }
    // Reject identifiers ending in r (e.g. `var"` cannot happen, but `for`
    // followed by a quote could in macros): require a non-ident char before.
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

fn raw_string_open(b: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    j += 1; // the 'r'
    let mut hashes = 0;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    (hashes, j + 1) // past the opening quote
}

fn find_bytes(hay: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    hay[from..].windows(needle.len()).position(|w| w == needle).map(|p| p + from)
}

fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    let n = b.len();
    if i + 2 < n && b[i + 1] == b'\\' {
        // '\n', '\'', '\u{1F600}' — scan to the closing quote.
        let mut j = i + 2;
        while j < n && j < i + 12 {
            if b[j] == b'\'' {
                return Some(j + 1);
            }
            j += 1;
        }
        None
    } else if i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
        Some(i + 3)
    } else {
        None
    }
}

/// Byte offset where the trailing test module begins (repo convention:
/// the `#[cfg(test)]` module is the last item), or the full length.
fn non_test_len(src: &str) -> usize {
    src.find("#[cfg(test)]").unwrap_or(src.len())
}

fn line_of(src: &str, byte: usize) -> usize {
    src[..byte.min(src.len())].bytes().filter(|&b| b == b'\n').count() + 1
}

/// Does `hay` contain a call `name(` where `name` is not a suffix of a
/// longer identifier?
fn contains_call(hay: &str, name: &str) -> bool {
    let pat = format!("{name}(");
    let mut from = 0;
    while let Some(p) = hay[from..].find(&pat) {
        let at = from + p;
        let prev = hay[..at].bytes().last();
        if !matches!(prev, Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Body (inside the outermost braces) of `fn name(` in stripped source,
/// with its starting byte offset.
fn fn_body<'a>(stripped: &'a str, name: &str) -> Option<(usize, &'a str)> {
    let pat = format!("fn {name}(");
    let mut from = 0;
    let at = loop {
        let p = stripped[from..].find(&pat)? + from;
        let prev = stripped[..p].bytes().last();
        if !matches!(prev, Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            break p;
        }
        from = p + 1;
    };
    let open = at + stripped[at..].find('{')?;
    let mut depth = 0usize;
    for (off, ch) in stripped[open..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open + 1, &stripped[open + 1..open + off]));
                }
            }
            _ => {}
        }
    }
    None
}

/// Names of `fn` items whose declarations sit at brace depth 0, with the
/// byte offset of each declaration.
fn top_level_fns(stripped: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let bytes = stripped.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => depth = depth.saturating_sub(1),
            b'f' if depth == 0 && stripped[i..].starts_with("fn ") => {
                let prev = stripped[..i].bytes().last();
                if !matches!(prev, Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                    let rest = &stripped[i + 3..];
                    let name: String = rest
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() {
                        out.push((name, i));
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// `pub NAME: TY` field names inside `struct {name}`.
fn struct_fields(stripped: &str, name: &str, ty: &str) -> Vec<String> {
    let Some((_, body)) = fn_body_like(stripped, &format!("struct {name}")) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in body.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("pub ") {
            if let Some((field, fty)) = rest.split_once(':') {
                if fty.trim().trim_end_matches(',') == ty {
                    out.push(field.trim().to_string());
                }
            }
        }
    }
    out
}

/// Like [`fn_body`] but anchored on an arbitrary `pat` rather than `fn name(`.
fn fn_body_like<'a>(stripped: &'a str, pat: &str) -> Option<(usize, &'a str)> {
    let at = stripped.find(pat)?;
    let open = at + stripped[at..].find('{')?;
    let mut depth = 0usize;
    for (off, ch) in stripped[open..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open + 1, &stripped[open + 1..open + off]));
                }
            }
            _ => {}
        }
    }
    None
}

fn rust_files_under(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else { continue };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if name != "target" && name != ".git" {
                    stack.push(p);
                }
            } else if p.extension().and_then(|x| x.to_str()) == Some("rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root).unwrap_or(p).display().to_string()
}

// ---------------------------------------------------------------------------
// Rule 1: kernel twins
// ---------------------------------------------------------------------------

/// Every dense kernel with a `_sel` twin must be wired into `eval`, the
/// twin into `eval_sel`, and a parity proptest must exercise both entry
/// points against each other.
pub fn check_kernel_twins(root: &Path) -> RuleResult {
    const RULE: &str = "kernel-twins";
    let mut res = RuleResult::default();
    let file = "crates/core/src/kernels.rs";
    let Ok(src) = fs::read_to_string(root.join(file)) else {
        res.fail(RULE, file, 0, "file missing — kernel layer moved without updating xlint");
        return res;
    };
    let stripped = strip_comments_and_strings(&src);
    let cut = non_test_len(&src);
    let code = &stripped[..cut];
    let fns = top_level_fns(code);
    let names: BTreeSet<&str> = fns.iter().map(|(n, _)| n.as_str()).collect();

    let mut pairs = Vec::new();
    for (n, at) in &fns {
        if let Some(base) = n.strip_suffix("_sel") {
            // `eval`/`eval_sel` are the entry points themselves and
            // `bool_to_sel` converts masks to candidate lists — only real
            // kernel twins (base also defined) are paired.
            if base != "eval" && names.contains(base) {
                pairs.push((base.to_string(), n.clone(), *at));
            }
        }
    }
    if pairs.is_empty() {
        res.fail(RULE, file, 0, "no (kernel, kernel_sel) pairs found — rule anchor lost");
        return res;
    }

    let eval_body = fn_body(code, "eval").map(|(_, b)| b).unwrap_or("");
    let eval_sel_body = fn_body(code, "eval_sel").map(|(_, b)| b).unwrap_or("");
    for (base, seln, at) in &pairs {
        if !contains_call(eval_body, base) {
            res.fail(
                RULE,
                file,
                line_of(&src, *at),
                format!("dense kernel `{base}` has twin `{seln}` but is not reachable from eval()"),
            );
        }
        if !contains_call(eval_sel_body, seln) {
            res.fail(
                RULE,
                file,
                line_of(&src, *at),
                format!("sel kernel `{seln}` is not reachable from eval_sel()"),
            );
        }
    }

    let tests = &stripped[cut..];
    if !(src[cut..].contains("proptest!")
        && contains_call(tests, "eval")
        && contains_call(tests, "eval_sel"))
    {
        res.fail(
            RULE,
            file,
            line_of(&src, cut),
            "test module lacks a parity proptest calling both eval() and eval_sel()",
        );
    }
    res.notes
        .push(format!("kernel-twins: {} twin pair(s) wired into both entry points", pairs.len()));
    res
}

// ---------------------------------------------------------------------------
// Rule 2: sidecar checksum discipline
// ---------------------------------------------------------------------------

/// Every `read_*_file` sidecar reader in persist.rs must verify an fnv1a
/// checksum and surface failures as `MlError::Corrupt`.
pub fn check_checksum_discipline(root: &Path) -> RuleResult {
    const RULE: &str = "checksum-discipline";
    let mut res = RuleResult::default();
    let file = "crates/storage/src/persist.rs";
    let Ok(src) = fs::read_to_string(root.join(file)) else {
        res.fail(RULE, file, 0, "file missing — persistence layer moved without updating xlint");
        return res;
    };
    let stripped = strip_comments_and_strings(&src);
    let cut = non_test_len(&src);
    let code = &stripped[..cut];
    let readers: Vec<(String, usize)> = top_level_fns(code)
        .into_iter()
        .filter(|(n, _)| n.starts_with("read_") && n.ends_with("_file"))
        .collect();
    if readers.is_empty() {
        res.fail(RULE, file, 0, "no read_*_file sidecar readers found — rule anchor lost");
        return res;
    }
    for (name, at) in &readers {
        let body = fn_body(code, name).map(|(_, b)| b).unwrap_or("");
        if !contains_call(body, "fnv1a") {
            res.fail(
                RULE,
                file,
                line_of(&src, *at),
                format!("sidecar reader `{name}` does not validate an fnv1a checksum"),
            );
        }
        if !body.contains("MlError::Corrupt") {
            res.fail(
                RULE,
                file,
                line_of(&src, *at),
                format!("sidecar reader `{name}` never reports MlError::Corrupt"),
            );
        }
    }
    res.notes.push(format!("checksum-discipline: {} sidecar reader(s) validated", readers.len()));
    res
}

// ---------------------------------------------------------------------------
// Rule 3: counter liveness
// ---------------------------------------------------------------------------

/// Every `ExecCounters` field must be bumped somewhere in the engine and
/// mirrored into `CountersSnapshot` by `snapshot()`.
pub fn check_counter_liveness(root: &Path) -> RuleResult {
    const RULE: &str = "counter-liveness";
    let mut res = RuleResult::default();
    let file = "crates/core/src/exec.rs";
    let Ok(src) = fs::read_to_string(root.join(file)) else {
        res.fail(RULE, file, 0, "file missing — executor moved without updating xlint");
        return res;
    };
    let stripped = strip_comments_and_strings(&src);
    let fields = struct_fields(&stripped, "ExecCounters", "AtomicU64");
    if fields.is_empty() {
        res.fail(RULE, file, 0, "ExecCounters has no AtomicU64 fields — rule anchor lost");
        return res;
    }
    let snap_fields: BTreeSet<String> =
        struct_fields(&stripped, "CountersSnapshot", "u64").into_iter().collect();
    let snapshot_body = fn_body(&stripped, "snapshot").map(|(_, b)| b).unwrap_or("");

    // Bump sites: any non-test line in crates/core/src mentioning
    // `counters` and `.{field}` that is not the field declaration itself.
    let mut live: BTreeSet<String> = BTreeSet::new();
    for path in rust_files_under(&root.join("crates/core/src")) {
        let Ok(fsrc) = fs::read_to_string(&path) else { continue };
        let fstripped = strip_comments_and_strings(&fsrc);
        let fcut = non_test_len(&fsrc);
        for line in fstripped[..fcut].lines() {
            if !line.contains("counters") {
                continue;
            }
            for f in &fields {
                if !live.contains(f) && line.contains(&format!(".{f}")) {
                    live.insert(f.clone());
                }
            }
        }
    }

    for f in &fields {
        if !live.contains(f) {
            res.fail(RULE, file, 0, format!("counter `{f}` is never incremented by the engine"));
        }
        if !snap_fields.contains(f) {
            res.fail(RULE, file, 0, format!("counter `{f}` has no CountersSnapshot mirror"));
        }
        if !snapshot_body.contains(&format!(".{f}")) {
            res.fail(RULE, file, 0, format!("counter `{f}` is not copied by snapshot()"));
        }
    }
    res.notes.push(format!("counter-liveness: {} counter(s) live and surfaced", fields.len()));
    res
}

// ---------------------------------------------------------------------------
// Rule 4: env-var registry
// ---------------------------------------------------------------------------

fn collect_env_vars(text: &str, into: &mut BTreeSet<String>) {
    let mut from = 0;
    while let Some(p) = text[from..].find("MONETLITE_") {
        let at = from + p;
        let tail = &text[at..];
        let name: String = tail
            .chars()
            .take_while(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_')
            .collect();
        if name.len() > "MONETLITE_".len() {
            into.insert(name.trim_end_matches('_').to_string());
        }
        from = at + "MONETLITE_".len();
    }
}

/// Every `MONETLITE_*` variable referenced in the workspace (sources and
/// CI) must appear in the ARCHITECTURE.md options table and vice versa.
pub fn check_env_registry(root: &Path) -> RuleResult {
    const RULE: &str = "env-registry";
    let mut res = RuleResult::default();

    let mut used: BTreeSet<String> = BTreeSet::new();
    let mut use_site: std::collections::BTreeMap<String, String> = Default::default();
    let mut scan = |path: &Path, root: &Path| {
        let Ok(text) = fs::read_to_string(path) else { return };
        let mut here = BTreeSet::new();
        collect_env_vars(&text, &mut here);
        for v in here {
            use_site.entry(v.clone()).or_insert_with(|| rel(root, path));
            used.insert(v);
        }
    };
    for dir in ["crates", "tests", "examples"] {
        for path in rust_files_under(&root.join(dir)) {
            // xlint's own sources (rule text, allowlists, meta-tests)
            // mention variables without reading them.
            if path.starts_with(root.join("crates/xlint")) {
                continue;
            }
            scan(&path, root);
        }
    }
    if let Ok(entries) = fs::read_dir(root.join(".github/workflows")) {
        for e in entries.flatten() {
            let p = e.path();
            if p.extension().and_then(|x| x.to_str()).map(|x| x == "yml" || x == "yaml")
                == Some(true)
            {
                scan(&p, root);
            }
        }
    }

    let arch = "ARCHITECTURE.md";
    let Ok(doc) = fs::read_to_string(root.join(arch)) else {
        res.fail(RULE, arch, 0, "ARCHITECTURE.md missing — the env-var registry lives there");
        return res;
    };
    let mut documented: BTreeSet<String> = BTreeSet::new();
    for line in doc.lines() {
        if line.trim_start().starts_with('|') {
            collect_env_vars(line, &mut documented);
        }
    }

    for v in &used {
        if !documented.contains(v) {
            let site = use_site.get(v).cloned().unwrap_or_default();
            res.fail(
                RULE,
                arch,
                0,
                format!("`{v}` is read (first seen in {site}) but missing from the registry table"),
            );
        }
    }
    for v in &documented {
        if !used.contains(v) {
            res.fail(RULE, arch, 0, format!("`{v}` is documented but nothing reads it any more"));
        }
    }
    res.notes.push(format!(
        "env-registry: {} variable(s) in use, {} documented",
        used.len(),
        documented.len()
    ));
    res
}

// ---------------------------------------------------------------------------
// Rule 5: no-panic hot path
// ---------------------------------------------------------------------------

/// Files where a panic would unwind a worker thread or corrupt a spill —
/// the engine's hot path.
pub const HOT_PATH: &[&str] = &[
    "crates/core/src/kernels.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/exec.rs",
    "crates/core/src/join.rs",
    "crates/core/src/agg.rs",
    "crates/core/src/spill.rs",
];

const PANIC_TOKENS: &[&str] =
    &[".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];

/// Ban the panic family from non-test hot-path code. Escape hatch:
/// `// xlint: allow(panic, <reason>)` on the same or preceding line.
pub fn check_no_panic(root: &Path) -> RuleResult {
    const RULE: &str = "no-panic";
    let mut res = RuleResult::default();
    let mut allows = 0usize;
    let mut index_sites = 0usize;
    for file in HOT_PATH {
        let Ok(src) = fs::read_to_string(root.join(file)) else {
            res.fail(RULE, file, 0, "hot-path file missing — update xlint's HOT_PATH list");
            continue;
        };
        let raw_lines: Vec<&str> = src.lines().collect();
        let allow_line =
            |idx: usize| raw_lines.get(idx).is_some_and(|l| l.contains("xlint: allow(panic"));
        let stripped = strip_comments_and_strings(&src);
        let cut = non_test_len(&src);
        for (idx, line) in stripped[..cut].lines().enumerate() {
            for tok in PANIC_TOKENS {
                if line.contains(tok) {
                    if allow_line(idx) || (idx > 0 && allow_line(idx - 1)) {
                        allows += 1;
                    } else {
                        res.fail(
                            RULE,
                            file,
                            idx + 1,
                            format!("`{tok}` in hot-path code (annotate with xlint: allow(panic, ...) if provably unreachable)"),
                        );
                    }
                }
            }
            // Advisory only: direct subscripts can panic too, but most are
            // loop-bounded; counted so drift is visible, not failing.
            let b = line.as_bytes();
            index_sites += b
                .windows(2)
                .filter(|w| (w[0].is_ascii_alphanumeric() || w[0] == b'_') && w[1] == b'[')
                .count();
        }
    }
    res.notes.push(format!(
        "no-panic: {allows} annotated allow(panic) site(s); {index_sites} direct-subscript site(s) (advisory)"
    ));
    res
}

// ---------------------------------------------------------------------------
// Rule 6: vendored-shim export conformance
// ---------------------------------------------------------------------------

/// Names each real crate actually exports (including well-known modules),
/// so a shim can only grow surface that will survive un-vendoring.
const SHIM_SURFACES: &[(&str, &[&str])] = &[
    ("bytes", &["Bytes", "BytesMut", "Buf", "BufMut", "buf"]),
    (
        "criterion",
        &[
            "Criterion",
            "Bencher",
            "BenchmarkGroup",
            "BenchmarkId",
            "Throughput",
            "Measurement",
            "black_box",
            "measurement",
            "criterion_group",
            "criterion_main",
        ],
    ),
    (
        "parking_lot",
        &[
            "Mutex",
            "MutexGuard",
            "RwLock",
            "RwLockReadGuard",
            "RwLockWriteGuard",
            "Condvar",
            "Once",
        ],
    ),
    (
        "proptest",
        &[
            "Arbitrary",
            "Strategy",
            "ProptestConfig",
            "TestRng",
            "any",
            "arbitrary",
            "collection",
            "option",
            "prelude",
            "sample",
            "strategy",
            "string",
            "test_runner",
            "num",
            "prop_assert",
            "prop_assert_eq",
            "prop_assert_ne",
            "prop_compose",
            "prop_oneof",
            "proptest",
        ],
    ),
    (
        "rand",
        &[
            "Rng",
            "RngCore",
            "CryptoRng",
            "SeedableRng",
            "StdRng",
            "SampleRange",
            "Fill",
            "random",
            "thread_rng",
            "rngs",
            "seq",
            "distributions",
        ],
    ),
    (
        "tempfile",
        &[
            "TempDir",
            "TempPath",
            "NamedTempFile",
            "SpooledTempFile",
            "Builder",
            "tempdir",
            "tempfile",
        ],
    ),
];

fn top_level_exports(stripped: &str, raw: &str) -> Vec<(String, usize, bool)> {
    // (name, byte offset, allowed-by-annotation)
    let raw_lines: Vec<&str> = raw.lines().collect();
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut offset = 0usize;
    for line in stripped.lines() {
        let start_depth = depth;
        for b in line.bytes() {
            match b {
                b'{' => depth += 1,
                b'}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        if start_depth == 0 {
            let t = line.trim_start();
            let idx = line_of(stripped, offset) - 1;
            let annotated = (idx.saturating_sub(3)..=idx)
                .any(|i| raw_lines.get(i).is_some_and(|l| l.contains("xlint: allow(shim-export")));
            let mut push = |name: &str| {
                let name = name.trim();
                if !name.is_empty() {
                    out.push((name.to_string(), offset, annotated));
                }
            };
            for kw in ["struct", "enum", "trait", "fn", "mod", "type", "const", "static", "union"] {
                let pat = format!("pub {kw} ");
                if let Some(rest) = t.strip_prefix(&pat) {
                    let name: String = rest
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    push(&name);
                }
            }
            if let Some(rest) = t.strip_prefix("pub use ") {
                let rest = rest.trim_end_matches(';');
                let leaf = rest.rsplit("::").next().unwrap_or(rest);
                for part in leaf.trim_matches(|c| c == '{' || c == '}').split(',') {
                    let p = part.trim().rsplit("::").next().unwrap_or("").trim();
                    if p != "self" && p != "*" {
                        push(p);
                    }
                }
            }
            if let Some(rest) = t.strip_prefix("macro_rules! ") {
                let exported = (idx.saturating_sub(3)..idx)
                    .any(|i| raw_lines.get(i).is_some_and(|l| l.contains("#[macro_export]")));
                if exported {
                    let name: String = rest
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    push(&name);
                }
            }
        }
        offset += line.len() + 1;
    }
    out
}

/// Vendored shims may only export names the real crate exports, unless a
/// helper is explicitly annotated `xlint: allow(shim-export, <reason>)`.
pub fn check_shim_exports(root: &Path) -> RuleResult {
    const RULE: &str = "shim-exports";
    let mut res = RuleResult::default();
    let vendor = root.join("vendor");
    let Ok(entries) = fs::read_dir(&vendor) else {
        res.notes.push("shim-exports: no vendor/ directory".into());
        return res;
    };
    let mut crates: Vec<PathBuf> =
        entries.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect();
    crates.sort();
    let mut checked = 0usize;
    let mut annotated = 0usize;
    for dir in crates {
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
        let lib = dir.join("src/lib.rs");
        let relname = rel(root, &lib);
        let Ok(src) = fs::read_to_string(&lib) else { continue };
        let Some((_, surface)) = SHIM_SURFACES.iter().find(|(c, _)| *c == name) else {
            res.fail(
                RULE,
                &relname,
                0,
                format!("vendored crate `{name}` has no curated export surface in xlint"),
            );
            continue;
        };
        let stripped = strip_comments_and_strings(&src);
        let cut = non_test_len(&src);
        for (export, at, allowed) in top_level_exports(&stripped[..cut], &src) {
            checked += 1;
            if surface.contains(&export.as_str()) {
                continue;
            }
            if allowed {
                annotated += 1;
                continue;
            }
            res.fail(
                RULE,
                &relname,
                line_of(&src, at),
                format!("shim exports `{export}`, which the real `{name}` crate does not"),
            );
        }
    }
    res.notes.push(format!(
        "shim-exports: {checked} export(s) checked, {annotated} annotated shim-internal helper(s)"
    ));
    res
}

// ---------------------------------------------------------------------------
// Rule 7: failpoint coverage (no raw file I/O)
// ---------------------------------------------------------------------------

/// Raw file-I/O call shapes that bypass the `fault` wrappers. The leading
/// dot keeps `fault::write_all(...)` itself from matching.
const RAW_IO_TOKENS: &[&str] = &["File::", "std::fs::", ".write_all(", ".sync_all("];

/// Every filesystem call in the storage crate and in the executor's spill
/// layer must go through `monetlite_storage::fault`, or the deterministic
/// fault-injection sweep silently loses that site. Escape hatch:
/// `// xlint: allow(raw-io, <reason>)` on the same or preceding line.
pub fn check_raw_io(root: &Path) -> RuleResult {
    const RULE: &str = "raw-io";
    let mut res = RuleResult::default();
    let mut files: Vec<PathBuf> = rust_files_under(&root.join("crates/storage/src"))
        .into_iter()
        // The wrapper module is the one legitimate home of raw calls.
        .filter(|p| p.file_name().and_then(|n| n.to_str()) != Some("fault.rs"))
        .collect();
    files.push(root.join("crates/core/src/spill.rs"));

    let mut allows = 0usize;
    let mut scanned = 0usize;
    for path in files {
        let relname = rel(root, &path);
        let Ok(src) = fs::read_to_string(&path) else {
            res.fail(
                RULE,
                &relname,
                0,
                "failpoint-scope file missing — update xlint's raw-io scope",
            );
            continue;
        };
        scanned += 1;
        let raw_lines: Vec<&str> = src.lines().collect();
        let allow_line =
            |idx: usize| raw_lines.get(idx).is_some_and(|l| l.contains("xlint: allow(raw-io"));
        let stripped = strip_comments_and_strings(&src);
        let cut = non_test_len(&src);
        for (idx, line) in stripped[..cut].lines().enumerate() {
            // Imports name types (`std::fs::File`), not calls.
            let t = line.trim_start();
            if t.starts_with("use ") || t.starts_with("pub use ") {
                continue;
            }
            for tok in RAW_IO_TOKENS {
                if line.contains(tok) {
                    if allow_line(idx) || (idx > 0 && allow_line(idx - 1)) {
                        allows += 1;
                    } else {
                        res.fail(
                            RULE,
                            &relname,
                            idx + 1,
                            format!(
                                "`{tok}` bypasses the fault-injection wrappers (route through monetlite_storage::fault, or annotate xlint: allow(raw-io, ...))"
                            ),
                        );
                    }
                }
            }
        }
    }
    res.notes.push(format!(
        "raw-io: {scanned} failpoint-scope file(s) scanned, {allows} annotated allow(raw-io) site(s)"
    ));
    res
}
