//! The client side: a DBI-style interface over the socket.

use crate::protocol::{decode_value, escape_line, parse_type, sql_literal};
use monetlite_types::{ColumnBuffer, LogicalType, MlError, Result, Schema, Value};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

/// A remote database connection (the `DBI` handle of the paper's R
/// scripts).
pub struct RemoteClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Bytes received over the socket (transfer accounting for Figure 6).
    pub bytes_received: u64,
    /// Bytes sent over the socket (transfer accounting for Figure 5).
    pub bytes_sent: u64,
}

/// A parsed remote result set.
#[derive(Debug, Clone)]
pub struct RemoteResult {
    /// Column names.
    pub names: Vec<String>,
    /// Column types.
    pub types: Vec<LogicalType>,
    /// Rows (values re-parsed from text — the client-side conversion
    /// cost).
    pub rows: Vec<Vec<Value>>,
    /// Rows affected for DML.
    pub rows_affected: u64,
}

impl RemoteClient {
    /// Connect to a server on localhost.
    pub fn connect(port: u16) -> Result<RemoteClient> {
        let stream = TcpStream::connect(("127.0.0.1", port))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(RemoteClient { reader, writer, bytes_received: 0, bytes_sent: 0 })
    }

    /// Issue one SQL statement and read its full response.
    pub fn query(&mut self, sql: &str) -> Result<RemoteResult> {
        self.send(sql)?;
        self.receive()
    }

    /// DML convenience.
    pub fn execute(&mut self, sql: &str) -> Result<u64> {
        Ok(self.query(sql)?.rows_affected)
    }

    fn send(&mut self, sql: &str) -> Result<()> {
        let line = format!("Q {}\n", escape_line(sql));
        self.bytes_sent += line.len() as u64;
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    fn receive(&mut self) -> Result<RemoteResult> {
        let mut line = String::new();
        self.read_line(&mut line)?;
        let head = line.trim_end();
        if let Some(msg) = head.strip_prefix("E ") {
            return Err(MlError::Protocol(format!("server error: {msg}")));
        }
        if let Some(n) = head.strip_prefix("A ") {
            let affected = n.parse().map_err(|_| MlError::Protocol("bad affected count".into()))?;
            return Ok(RemoteResult {
                names: vec![],
                types: vec![],
                rows: vec![],
                rows_affected: affected,
            });
        }
        let ncols: usize = head
            .strip_prefix("R ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| MlError::Protocol(format!("unexpected response '{head}'")))?;
        self.read_line(&mut line)?;
        let names: Vec<String> = line
            .trim_end()
            .strip_prefix("N ")
            .ok_or_else(|| MlError::Protocol("missing names".into()))?
            .split('\t')
            .map(|s| s.to_string())
            .collect();
        self.read_line(&mut line)?;
        let types: Vec<LogicalType> = line
            .trim_end()
            .strip_prefix("T ")
            .ok_or_else(|| MlError::Protocol("missing types".into()))?
            .split('\t')
            .map(parse_type)
            .collect::<Result<_>>()?;
        if names.len() != ncols || types.len() != ncols {
            return Err(MlError::Protocol("header arity mismatch".into()));
        }
        let mut rows = Vec::new();
        loop {
            self.read_line(&mut line)?;
            let l = line.trim_end_matches(['\r', '\n']);
            if l == "." {
                break;
            }
            let data = l
                .strip_prefix("D ")
                .ok_or_else(|| MlError::Protocol(format!("unexpected line '{l}'")))?;
            // Value-by-value text parsing: the client conversion cost.
            let mut row = Vec::with_capacity(ncols);
            for (field, &ty) in data.split('\t').zip(&types) {
                row.push(decode_value(field, ty)?);
            }
            if row.len() != ncols {
                return Err(MlError::Protocol("row arity mismatch".into()));
            }
            rows.push(row);
        }
        Ok(RemoteResult { names, types, rows, rows_affected: 0 })
    }

    fn read_line(&mut self, line: &mut String) -> Result<()> {
        line.clear();
        let n = self.reader.read_line(line)?;
        if n == 0 {
            return Err(MlError::Protocol("server closed the connection".into()));
        }
        self.bytes_received += n as u64;
        Ok(())
    }

    /// `dbReadTable`: fetch a whole table into host buffers (column-major
    /// conversion from the row-wise wire format — SQLite's Figure 6
    /// penalty, paid by every socket client).
    pub fn read_table(&mut self, table: &str) -> Result<(Schema, Vec<ColumnBuffer>)> {
        let r = self.query(&format!("SELECT * FROM {table}"))?;
        let fields: Vec<monetlite_types::Field> = r
            .names
            .iter()
            .zip(&r.types)
            .map(|(n, &t)| monetlite_types::Field::new(n.as_str(), t))
            .collect();
        let schema = Schema::new(fields)?;
        let mut cols: Vec<ColumnBuffer> =
            r.types.iter().map(|&t| ColumnBuffer::with_capacity(t, r.rows.len())).collect();
        for row in &r.rows {
            for (c, v) in cols.iter_mut().zip(row) {
                c.push(v)?;
            }
        }
        Ok((schema, cols))
    }

    /// `dbWriteTable`: create the table and load host buffers through the
    /// generic protocol — a stream of single-row INSERT statements, one
    /// round trip each (no specialised bulk path; Figure 5's overhead).
    pub fn write_table(
        &mut self,
        table: &str,
        schema: &Schema,
        cols: &[ColumnBuffer],
    ) -> Result<()> {
        let coldefs: Vec<String> = schema
            .fields()
            .iter()
            .map(|f| {
                format!(
                    "{} {}{}",
                    f.name,
                    sql_type(f.ty),
                    if f.nullable { "" } else { " NOT NULL" }
                )
            })
            .collect();
        self.execute(&format!("CREATE TABLE {table} ({})", coldefs.join(", ")))?;
        let rows = cols.first().map_or(0, |c| c.len());
        let mut stmt = String::with_capacity(256);
        for r in 0..rows {
            stmt.clear();
            stmt.push_str("INSERT INTO ");
            stmt.push_str(table);
            stmt.push_str(" VALUES (");
            for (i, c) in cols.iter().enumerate() {
                if i > 0 {
                    stmt.push_str(", ");
                }
                stmt.push_str(&sql_literal(&c.get(r)));
            }
            stmt.push(')');
            self.execute(&stmt)?;
        }
        Ok(())
    }

    /// Close politely.
    pub fn close(mut self) {
        let _ = self.writer.write_all(b"X\n");
        let _ = self.writer.flush();
    }
}

fn sql_type(ty: LogicalType) -> String {
    match ty {
        LogicalType::Bool => "BOOLEAN".into(),
        LogicalType::Int => "INTEGER".into(),
        LogicalType::Bigint => "BIGINT".into(),
        LogicalType::Double => "DOUBLE".into(),
        LogicalType::Decimal { width, scale } => format!("DECIMAL({width},{scale})"),
        LogicalType::Varchar => "VARCHAR(255)".into(),
        LogicalType::Date => "DATE".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerEngine};
    use monetlite::Database;
    use monetlite_rowstore::RowDb;
    use monetlite_types::Field;

    fn monet_server() -> Server {
        let db = Database::open_in_memory();
        Server::start(ServerEngine::Monet(db)).unwrap()
    }

    #[test]
    fn query_roundtrip_over_socket() {
        let server = monet_server();
        let mut client = RemoteClient::connect(server.port()).unwrap();
        client.execute("CREATE TABLE t (a INT, b VARCHAR(10))").unwrap();
        client.execute("INSERT INTO t VALUES (1, 'x'), (2, NULL)").unwrap();
        let r = client.query("SELECT a, b FROM t ORDER BY a").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0], vec![Value::Int(1), Value::Str("x".into())]);
        assert_eq!(r.rows[1], vec![Value::Int(2), Value::Null]);
        assert!(client.bytes_received > 0);
        client.close();
    }

    #[test]
    fn errors_cross_the_wire() {
        let server = monet_server();
        let mut client = RemoteClient::connect(server.port()).unwrap();
        let e = client.query("SELECT * FROM missing");
        assert!(matches!(e, Err(MlError::Protocol(msg)) if msg.contains("unknown table")));
        // Connection still usable after an error.
        client.execute("CREATE TABLE ok (x INT)").unwrap();
        client.close();
    }

    #[test]
    fn write_and_read_table() {
        let server = monet_server();
        let mut client = RemoteClient::connect(server.port()).unwrap();
        let schema = Schema::new(vec![
            Field::not_null("id", LogicalType::Int),
            Field::new("name", LogicalType::Varchar),
        ])
        .unwrap();
        let cols = vec![
            ColumnBuffer::Int(vec![1, 2, 3]),
            ColumnBuffer::Varchar(vec![Some("a".into()), None, Some("c'c".into())]),
        ];
        client.write_table("people", &schema, &cols).unwrap();
        let (schema2, cols2) = client.read_table("people").unwrap();
        assert_eq!(schema2.len(), 2);
        assert_eq!(cols2[0], cols[0]);
        assert_eq!(cols2[1], cols[1]);
        client.close();
    }

    #[test]
    fn rowstore_behind_socket() {
        let server = Server::start(ServerEngine::Row(RowDb::in_memory())).unwrap();
        let mut client = RemoteClient::connect(server.port()).unwrap();
        client.execute("CREATE TABLE t (a INT, p DECIMAL(8,2))").unwrap();
        client.execute("INSERT INTO t VALUES (1, 5.25), (2, 1.75)").unwrap();
        let r = client.query("SELECT sum(p) FROM t").unwrap();
        assert_eq!(r.rows[0][0].to_string(), "7.00");
        client.close();
    }

    #[test]
    fn two_clients_one_server() {
        let server = monet_server();
        let mut c1 = RemoteClient::connect(server.port()).unwrap();
        let mut c2 = RemoteClient::connect(server.port()).unwrap();
        c1.execute("CREATE TABLE shared (x INT)").unwrap();
        c1.execute("INSERT INTO shared VALUES (5)").unwrap();
        let r = c2.query("SELECT x FROM shared").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(5));
        c1.close();
        c2.close();
    }
}
