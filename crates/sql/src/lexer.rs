//! SQL tokenizer.
//!
//! Produces a flat token stream with byte offsets for error reporting.
//! Keywords are recognised case-insensitively; identifiers fold to lower
//! case unless double-quoted; string literals use single quotes with `''`
//! escaping (the SQL standard).

use monetlite_types::{MlError, Result};

/// One lexical token plus its starting byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source (for error messages).
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (lower-cased).
    Ident(String),
    /// Double-quoted identifier (case preserved).
    QuotedIdent(String),
    /// String literal.
    Str(String),
    /// Integer literal (may exceed i32; binder decides width).
    Int(i64),
    /// Decimal literal kept textually exact (e.g. `0.05`).
    Number(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// End of input.
    Eof,
}

/// Tokenize a SQL string.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(MlError::parse("unterminated block comment", start));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(MlError::parse("unterminated string literal", start));
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Strings may contain multi-byte UTF-8; copy bytes
                        // and validate at the end of the literal.
                        let ch_len = utf8_len(bytes[i]);
                        let end = (i + ch_len).min(bytes.len());
                        s.push_str(
                            std::str::from_utf8(&bytes[i..end])
                                .map_err(|_| MlError::parse("invalid utf-8 in literal", i))?,
                        );
                        i = end;
                    }
                }
                out.push(Token { kind: TokenKind::Str(s), offset: start });
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                while i < bytes.len() && bytes[i] != b'"' {
                    s.push(bytes[i] as char);
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(MlError::parse("unterminated quoted identifier", start));
                }
                i += 1;
                out.push(Token { kind: TokenKind::QuotedIdent(s), offset: start });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let is_decimal = i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit());
                if is_decimal {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    out.push(Token {
                        kind: TokenKind::Number(src[start..i].to_string()),
                        offset: start,
                    });
                } else {
                    let text = &src[start..i];
                    let v: i64 = text.parse().map_err(|_| {
                        MlError::parse(format!("integer '{text}' too large"), start)
                    })?;
                    out.push(Token { kind: TokenKind::Int(v), offset: start });
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_ascii_lowercase()),
                    offset: start,
                });
            }
            _ => {
                let start = i;
                let (kind, advance) = match c {
                    b',' => (TokenKind::Comma, 1),
                    b'(' => (TokenKind::LParen, 1),
                    b')' => (TokenKind::RParen, 1),
                    b';' => (TokenKind::Semicolon, 1),
                    b'.' => (TokenKind::Dot, 1),
                    b'*' => (TokenKind::Star, 1),
                    b'+' => (TokenKind::Plus, 1),
                    b'-' => (TokenKind::Minus, 1),
                    b'/' => (TokenKind::Slash, 1),
                    b'%' => (TokenKind::Percent, 1),
                    b'=' => (TokenKind::Eq, 1),
                    b'!' if bytes.get(i + 1) == Some(&b'=') => (TokenKind::NotEq, 2),
                    b'<' if bytes.get(i + 1) == Some(&b'>') => (TokenKind::NotEq, 2),
                    b'<' if bytes.get(i + 1) == Some(&b'=') => (TokenKind::LtEq, 2),
                    b'<' => (TokenKind::Lt, 1),
                    b'>' if bytes.get(i + 1) == Some(&b'=') => (TokenKind::GtEq, 2),
                    b'>' => (TokenKind::Gt, 1),
                    other => {
                        return Err(MlError::parse(
                            format!("unexpected character '{}'", other as char),
                            start,
                        ))
                    }
                };
                out.push(Token { kind, offset: start });
                i += advance;
            }
        }
    }
    out.push(Token { kind: TokenKind::Eof, offset: src.len() });
    Ok(out)
}

#[inline]
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_fold_to_lowercase() {
        assert_eq!(
            kinds("SELECT a FROM T"),
            vec![
                Ident("select".into()),
                Ident("a".into()),
                Ident("from".into()),
                Ident("t".into()),
                Eof
            ]
        );
    }

    #[test]
    fn numbers_int_and_decimal() {
        assert_eq!(
            kinds("42 0.05 1.1"),
            vec![Int(42), Number("0.05".into()), Number("1.1".into()), Eof]
        );
        // `1.` followed by non-digit is Int + Dot (qualified names like t.c).
        assert_eq!(kinds("t.c"), vec![Ident("t".into()), Dot, Ident("c".into()), Eof]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'it''s'"), vec![Str("it's".into()), Eof]);
        assert_eq!(kinds("'ASIA'"), vec![Str("ASIA".into()), Eof]);
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a <= b <> c >= d != e"),
            vec![
                Ident("a".into()),
                LtEq,
                Ident("b".into()),
                NotEq,
                Ident("c".into()),
                GtEq,
                Ident("d".into()),
                NotEq,
                Ident("e".into()),
                Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("select -- hi\n 1 /* block\nmore */ 2"),
            vec![Ident("select".into()), Int(1), Int(2), Eof]
        );
        assert!(tokenize("/* unterminated").is_err());
    }

    #[test]
    fn quoted_identifiers_preserve_case() {
        assert_eq!(kinds("\"MyCol\""), vec![QuotedIdent("MyCol".into()), Eof]);
    }

    #[test]
    fn offsets_reported() {
        let toks = tokenize("select x").unwrap();
        assert_eq!(toks[1].offset, 7);
    }

    #[test]
    fn unexpected_char_is_error() {
        assert!(tokenize("select ^").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds("'héllo — ok'"), vec![Str("héllo — ok".into()), Eof]);
    }
}
