//! Grouped aggregation kernels.
//!
//! Grouping hashes composite keys (NULLs group together, SQL semantics),
//! assigning each row a dense group id; the per-function accumulators then
//! run column-at-a-time over the group-id vector. MEDIAN is the blocking
//! aggregate of the paper's Figure 2: it buffers all values per group, so
//! mitosis must pack chunks before it runs; SUM/COUNT/MIN/MAX/AVG expose
//! partial/merge forms used by the parallel executor.

use crate::expr::PAggFunc;
use crate::rows::{col_eq, row_hash, rows_eq};
use monetlite_storage::Bat;
use monetlite_types::nulls::{NULL_I32, NULL_I64};
use monetlite_types::{LogicalType, MlError, Result, Value};
use std::collections::{HashMap, HashSet};

/// Result of hashing group keys: per-row dense group ids plus one
/// representative row per group.
#[derive(Debug)]
pub struct Grouping {
    /// Dense group id per input row.
    pub group_ids: Vec<u32>,
    /// Representative input row per group (for key materialisation).
    pub repr_rows: Vec<u32>,
}

/// Hash rows into dense groups over the key columns.
pub fn hash_group(keys: &[&Bat]) -> Grouping {
    let rows = keys.first().map_or(0, |k| k.len());
    let mut table: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut group_ids = Vec::with_capacity(rows);
    let mut repr_rows: Vec<u32> = Vec::new();
    for row in 0..rows {
        let h = row_hash(keys, row);
        let bucket = table.entry(h).or_default();
        let mut gid = None;
        for &g in bucket.iter() {
            if rows_eq(keys, row, keys, repr_rows[g as usize] as usize, true) {
                gid = Some(g);
                break;
            }
        }
        let gid = match gid {
            Some(g) => g,
            None => {
                let g = repr_rows.len() as u32;
                repr_rows.push(row as u32);
                bucket.push(g);
                g
            }
        };
        group_ids.push(gid);
    }
    Grouping { group_ids, repr_rows }
}

/// Candidate-list twin of [`hash_group`]: group only the `sel` positions
/// of the key columns, reading the base arrays in place (no gather). The
/// returned `group_ids`/`repr_rows` are indexed in the *logical*
/// (selection) domain — `repr_rows[g] == i` names physical row
/// `sel[i]` — so callers gather representatives with the selection-aware
/// `Chunk::take`, touching only the survivors.
pub fn hash_group_at(keys: &[&Bat], sel: &[u32]) -> Grouping {
    let mut table: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut group_ids = Vec::with_capacity(sel.len());
    let mut repr_rows: Vec<u32> = Vec::new();
    for (li, &pi) in sel.iter().enumerate() {
        let h = row_hash(keys, pi as usize);
        let bucket = table.entry(h).or_default();
        let mut gid = None;
        for &g in bucket.iter() {
            let repr_phys = sel[repr_rows[g as usize] as usize] as usize;
            if rows_eq(keys, pi as usize, keys, repr_phys, true) {
                gid = Some(g);
                break;
            }
        }
        let gid = match gid {
            Some(g) => g,
            None => {
                let g = repr_rows.len() as u32;
                repr_rows.push(li as u32);
                bucket.push(g);
                g
            }
        };
        group_ids.push(gid);
    }
    Grouping { group_ids, repr_rows }
}

/// An incremental grouping table for the streaming engine: group keys are
/// interned vector-at-a-time into dense ids, with representative key
/// values accumulated as they are first seen (NULLs group together, SQL
/// semantics). Unlike [`hash_group`], which needs the whole input
/// materialised, this grows as vectors arrive — the per-thread state of
/// morsel-parallel partial aggregation.
#[derive(Debug)]
pub struct GroupTable {
    /// Representative key values, one row per group, in first-seen order.
    keys: Vec<Bat>,
    /// Key hash → candidate group ids.
    buckets: HashMap<u64, Vec<u32>>,
}

impl GroupTable {
    /// Empty table for the given key column types.
    pub fn new(key_types: &[LogicalType]) -> GroupTable {
        GroupTable {
            keys: key_types.iter().map(|&t| Bat::new(t)).collect(),
            buckets: HashMap::new(),
        }
    }

    /// Number of distinct groups seen so far.
    pub fn n_groups(&self) -> usize {
        self.keys.first().map_or(0, |k| k.len())
    }

    /// The accumulated representative key columns.
    pub fn keys(&self) -> &[Bat] {
        &self.keys
    }

    /// Consume the table, returning the representative key columns (the
    /// group-by output columns, in first-seen order).
    pub fn into_keys(self) -> Vec<Bat> {
        self.keys
    }

    /// Approximate resident bytes (representative keys + bucket map) —
    /// the quantity the spill budget checks against.
    pub fn mem_bytes(&self) -> usize {
        let keys: usize = self.keys.iter().map(|k| k.mem_bytes()).sum();
        // Bucket map: hash key + Vec header + ~one group id per entry.
        keys + self.buckets.len() * (8 + 24 + 8)
    }

    /// Intern a block of key rows, returning each row's dense group id.
    pub fn intern_block(&mut self, block: &[&Bat], rows: usize) -> Result<Vec<u32>> {
        debug_assert_eq!(block.len(), self.keys.len());
        let mut gids = Vec::with_capacity(rows);
        for row in 0..rows {
            let h = row_hash(block, row);
            let mut found = None;
            if let Some(bucket) = self.buckets.get(&h) {
                for &g in bucket {
                    let eq = self
                        .keys
                        .iter()
                        .zip(block)
                        .all(|(k, b)| col_eq(b, row, k, g as usize, true));
                    if eq {
                        found = Some(g);
                        break;
                    }
                }
            }
            let gid = match found {
                Some(g) => g,
                None => {
                    let g = self.n_groups() as u32;
                    for (k, b) in self.keys.iter_mut().zip(block) {
                        k.push(&b.get(row))?;
                    }
                    self.buckets.entry(h).or_default().push(g);
                    g
                }
            };
            gids.push(gid);
        }
        Ok(gids)
    }
}

/// One aggregate's state across groups; supports partial merge for the
/// decomposable functions.
#[derive(Debug, Clone)]
pub enum AggState {
    /// COUNT: per-group counts.
    Count(Vec<i64>),
    /// SUM over integers (i128 to detect overflow at the end).
    SumInt(Vec<i128>, Vec<bool>),
    /// SUM over doubles.
    SumF64(Vec<f64>, Vec<bool>),
    /// SUM over decimals (scale carried).
    SumDec(Vec<i128>, Vec<bool>, u8),
    /// AVG: sum + count.
    Avg(Vec<f64>, Vec<i64>),
    /// MIN/MAX keep the best value per group.
    Best(Vec<Value>, bool /* is_max */),
    /// MEDIAN buffers all non-null values (blocking).
    Median(Vec<Vec<f64>>),
    /// COUNT(DISTINCT x): per-group set of value images.
    CountDistinct(Vec<HashSet<String>>),
}

impl AggState {
    /// Initial state for `func` over `n` groups.
    pub fn new(
        func: PAggFunc,
        input_ty: Option<LogicalType>,
        distinct: bool,
        n: usize,
    ) -> Result<AggState> {
        if distinct && func != PAggFunc::Count {
            return Err(MlError::Unsupported("DISTINCT is only supported with COUNT".into()));
        }
        Ok(match func {
            PAggFunc::Count if distinct => AggState::CountDistinct(vec![HashSet::new(); n]),
            PAggFunc::Count => AggState::Count(vec![0; n]),
            PAggFunc::Sum => match input_ty {
                Some(LogicalType::Int) | Some(LogicalType::Bigint) => {
                    AggState::SumInt(vec![0; n], vec![false; n])
                }
                Some(LogicalType::Decimal { scale, .. }) => {
                    AggState::SumDec(vec![0; n], vec![false; n], scale)
                }
                _ => AggState::SumF64(vec![0.0; n], vec![false; n]),
            },
            PAggFunc::Avg => AggState::Avg(vec![0.0; n], vec![0; n]),
            PAggFunc::Min => AggState::Best(vec![Value::Null; n], false),
            PAggFunc::Max => AggState::Best(vec![Value::Null; n], true),
            PAggFunc::Median => AggState::Median(vec![Vec::new(); n]),
        })
    }

    /// Accumulate a column (aligned with `group_ids`).
    pub fn update(&mut self, arg: Option<&Bat>, group_ids: &[u32]) -> Result<()> {
        match self {
            AggState::Count(c) => match arg {
                None => {
                    for &g in group_ids {
                        c[g as usize] += 1;
                    }
                }
                Some(b) => {
                    for (row, &g) in group_ids.iter().enumerate() {
                        if !b.is_null_at(row) {
                            c[g as usize] += 1;
                        }
                    }
                }
            },
            AggState::CountDistinct(sets) => {
                let b = arg.ok_or_else(|| {
                    MlError::Execution("COUNT(DISTINCT) needs an argument".into())
                })?;
                for (row, &g) in group_ids.iter().enumerate() {
                    if !b.is_null_at(row) {
                        sets[g as usize].insert(b.get(row).to_string());
                    }
                }
            }
            AggState::SumInt(sums, seen) => {
                let b = arg.ok_or_else(|| MlError::Execution("SUM needs an argument".into()))?;
                match b {
                    Bat::Int(v) => {
                        for (row, &g) in group_ids.iter().enumerate() {
                            if v[row] != NULL_I32 {
                                sums[g as usize] += v[row] as i128;
                                seen[g as usize] = true;
                            }
                        }
                    }
                    Bat::Bigint(v) => {
                        for (row, &g) in group_ids.iter().enumerate() {
                            if v[row] != NULL_I64 {
                                sums[g as usize] += v[row] as i128;
                                seen[g as usize] = true;
                            }
                        }
                    }
                    other => {
                        return Err(MlError::Execution(format!(
                            "integer SUM over {}",
                            other.logical_type()
                        )))
                    }
                }
            }
            AggState::SumDec(sums, seen, _) => {
                let b = arg.ok_or_else(|| MlError::Execution("SUM needs an argument".into()))?;
                match b {
                    Bat::Decimal { data, .. } => {
                        for (row, &g) in group_ids.iter().enumerate() {
                            if data[row] != NULL_I64 {
                                sums[g as usize] += data[row] as i128;
                                seen[g as usize] = true;
                            }
                        }
                    }
                    other => {
                        return Err(MlError::Execution(format!(
                            "decimal SUM over {}",
                            other.logical_type()
                        )))
                    }
                }
            }
            AggState::SumF64(sums, seen) => {
                let b = arg.ok_or_else(|| MlError::Execution("SUM needs an argument".into()))?;
                match b {
                    Bat::Double(v) => {
                        for (row, &g) in group_ids.iter().enumerate() {
                            if !v[row].is_nan() {
                                sums[g as usize] += v[row];
                                seen[g as usize] = true;
                            }
                        }
                    }
                    other => {
                        return Err(MlError::Execution(format!(
                            "SUM over {}",
                            other.logical_type()
                        )))
                    }
                }
            }
            AggState::Avg(sums, counts) => {
                let b = arg.ok_or_else(|| MlError::Execution("AVG needs an argument".into()))?;
                for (row, &g) in group_ids.iter().enumerate() {
                    if !b.is_null_at(row) {
                        sums[g as usize] += numeric_f64(b, row)?;
                        counts[g as usize] += 1;
                    }
                }
            }
            AggState::Best(best, is_max) => {
                let b = arg.ok_or_else(|| MlError::Execution("MIN/MAX need an argument".into()))?;
                for (row, &g) in group_ids.iter().enumerate() {
                    if b.is_null_at(row) {
                        continue;
                    }
                    let v = b.get(row);
                    let cur = &best[g as usize];
                    let replace = match cur {
                        Value::Null => true,
                        c => {
                            let ord = v.cmp_sql(c);
                            if *is_max {
                                ord == std::cmp::Ordering::Greater
                            } else {
                                ord == std::cmp::Ordering::Less
                            }
                        }
                    };
                    if replace {
                        best[g as usize] = v;
                    }
                }
            }
            AggState::Median(bufs) => {
                let b = arg.ok_or_else(|| MlError::Execution("MEDIAN needs an argument".into()))?;
                for (row, &g) in group_ids.iter().enumerate() {
                    if !b.is_null_at(row) {
                        bufs[g as usize].push(numeric_f64(b, row)?);
                    }
                }
            }
        }
        Ok(())
    }

    /// Merge a partial state computed over a disjoint chunk (same group
    /// mapping). Only decomposable states support this; MEDIAN merges by
    /// concatenating buffers (it still sorts once at the end, so the sort
    /// is the blocking step — exactly Figure 2's structure).
    pub fn merge(&mut self, other: AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            }
            (AggState::SumInt(a, sa), AggState::SumInt(b, sb)) => {
                for ((x, y), (s1, s2)) in a.iter_mut().zip(b).zip(sa.iter_mut().zip(sb)) {
                    *x += y;
                    *s1 = *s1 || s2;
                }
            }
            (AggState::SumF64(a, sa), AggState::SumF64(b, sb)) => {
                for ((x, y), (s1, s2)) in a.iter_mut().zip(b).zip(sa.iter_mut().zip(sb)) {
                    *x += y;
                    *s1 = *s1 || s2;
                }
            }
            (AggState::SumDec(a, sa, _), AggState::SumDec(b, sb, _)) => {
                for ((x, y), (s1, s2)) in a.iter_mut().zip(b).zip(sa.iter_mut().zip(sb)) {
                    *x += y;
                    *s1 = *s1 || s2;
                }
            }
            (AggState::Avg(a, ca), AggState::Avg(b, cb)) => {
                for ((x, y), (c1, c2)) in a.iter_mut().zip(b).zip(ca.iter_mut().zip(cb)) {
                    *x += y;
                    *c1 += c2;
                }
            }
            (AggState::Best(a, is_max), AggState::Best(b, _)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    let replace = match (&x, &y) {
                        (_, Value::Null) => false,
                        (Value::Null, _) => true,
                        (cur, new) => {
                            let ord = new.cmp_sql(cur);
                            if *is_max {
                                ord == std::cmp::Ordering::Greater
                            } else {
                                ord == std::cmp::Ordering::Less
                            }
                        }
                    };
                    if replace {
                        *x = y;
                    }
                }
            }
            (AggState::Median(a), AggState::Median(b)) => {
                for (x, mut y) in a.iter_mut().zip(b) {
                    x.append(&mut y);
                }
            }
            (AggState::CountDistinct(a), AggState::CountDistinct(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    x.extend(y);
                }
            }
            _ => return Err(MlError::Execution("mismatched aggregate states".into())),
        }
        Ok(())
    }

    /// Grow the state to cover `n` groups (new groups start empty). The
    /// streaming engine's group tables grow as vectors arrive, so states
    /// must be resizable — the batch constructor fixes `n` up front.
    pub fn ensure_groups(&mut self, n: usize) {
        match self {
            AggState::Count(c) => c.resize(n, 0),
            AggState::SumInt(s, seen) | AggState::SumDec(s, seen, _) => {
                s.resize(n, 0);
                seen.resize(n, false);
            }
            AggState::SumF64(s, seen) => {
                s.resize(n, 0.0);
                seen.resize(n, false);
            }
            AggState::Avg(s, c) => {
                s.resize(n, 0.0);
                c.resize(n, 0);
            }
            AggState::Best(b, _) => b.resize(n, Value::Null),
            AggState::Median(b) => b.resize(n, Vec::new()),
            AggState::CountDistinct(s) => s.resize(n, HashSet::new()),
        }
    }

    /// Approximate resident bytes of the accumulator — drives the
    /// spill-or-not decision of the streaming engine's partial hash
    /// aggregation. Holistic states (MEDIAN buffers, COUNT(DISTINCT)
    /// sets) grow with input, not group count, so they are measured by
    /// content.
    pub fn mem_bytes(&self) -> usize {
        fn value_bytes(v: &Value) -> usize {
            16 + match v {
                Value::Str(s) => s.len(),
                _ => 8,
            }
        }
        match self {
            AggState::Count(c) => c.len() * 8,
            AggState::SumInt(s, seen) | AggState::SumDec(s, seen, _) => s.len() * 16 + seen.len(),
            AggState::SumF64(s, seen) => s.len() * 8 + seen.len(),
            AggState::Avg(s, c) => s.len() * 8 + c.len() * 8,
            AggState::Best(b, _) => b.iter().map(value_bytes).sum(),
            AggState::Median(bufs) => bufs.iter().map(|b| 24 + b.len() * 8).sum(),
            AggState::CountDistinct(sets) => {
                sets.iter().map(|s| 48 + s.iter().map(|x| 48 + x.len()).sum::<usize>()).sum()
            }
        }
    }

    /// Current group capacity.
    pub fn n_groups(&self) -> usize {
        match self {
            AggState::Count(c) => c.len(),
            AggState::SumInt(s, _) | AggState::SumDec(s, _, _) => s.len(),
            AggState::SumF64(s, _) => s.len(),
            AggState::Avg(s, _) => s.len(),
            AggState::Best(b, _) => b.len(),
            AggState::Median(b) => b.len(),
            AggState::CountDistinct(s) => s.len(),
        }
    }

    /// Merge a partial state whose group ids map through `gid_map`
    /// (`other`'s group `g` corresponds to `self`'s group `gid_map[g]`).
    /// This is the cross-thread merge of morsel-parallel grouped
    /// aggregation, where each worker interned groups independently.
    pub fn merge_mapped(&mut self, other: AggState, gid_map: &[u32]) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => {
                for (g, y) in b.into_iter().enumerate() {
                    a[gid_map[g] as usize] += y;
                }
            }
            (AggState::SumInt(a, sa), AggState::SumInt(b, sb))
            | (AggState::SumDec(a, sa, _), AggState::SumDec(b, sb, _)) => {
                for (g, (y, s2)) in b.into_iter().zip(sb).enumerate() {
                    let t = gid_map[g] as usize;
                    a[t] += y;
                    sa[t] = sa[t] || s2;
                }
            }
            (AggState::SumF64(a, sa), AggState::SumF64(b, sb)) => {
                for (g, (y, s2)) in b.into_iter().zip(sb).enumerate() {
                    let t = gid_map[g] as usize;
                    a[t] += y;
                    sa[t] = sa[t] || s2;
                }
            }
            (AggState::Avg(a, ca), AggState::Avg(b, cb)) => {
                for (g, (y, c2)) in b.into_iter().zip(cb).enumerate() {
                    let t = gid_map[g] as usize;
                    a[t] += y;
                    ca[t] += c2;
                }
            }
            (AggState::Best(a, is_max), AggState::Best(b, _)) => {
                let is_max = *is_max;
                for (g, y) in b.into_iter().enumerate() {
                    let t = gid_map[g] as usize;
                    let replace = match (&a[t], &y) {
                        (_, Value::Null) => false,
                        (Value::Null, _) => true,
                        (cur, new) => {
                            let ord = new.cmp_sql(cur);
                            if is_max {
                                ord == std::cmp::Ordering::Greater
                            } else {
                                ord == std::cmp::Ordering::Less
                            }
                        }
                    };
                    if replace {
                        a[t] = y;
                    }
                }
            }
            (AggState::Median(a), AggState::Median(b)) => {
                for (g, mut y) in b.into_iter().enumerate() {
                    a[gid_map[g] as usize].append(&mut y);
                }
            }
            (AggState::CountDistinct(a), AggState::CountDistinct(b)) => {
                for (g, y) in b.into_iter().enumerate() {
                    a[gid_map[g] as usize].extend(y);
                }
            }
            _ => return Err(MlError::Execution("mismatched aggregate states".into())),
        }
        Ok(())
    }

    /// Finalise into an output column of `out_ty`.
    pub fn finish(self, out_ty: LogicalType) -> Result<Bat> {
        Ok(match self {
            AggState::Count(c) => Bat::Bigint(c),
            AggState::CountDistinct(sets) => {
                Bat::Bigint(sets.into_iter().map(|s| s.len() as i64).collect())
            }
            AggState::SumInt(sums, seen) => {
                let mut out = Vec::with_capacity(sums.len());
                for (s, ok) in sums.into_iter().zip(seen) {
                    if !ok {
                        out.push(NULL_I64);
                    } else if s > i64::MAX as i128 || s < (i64::MIN + 1) as i128 {
                        return Err(MlError::Execution("SUM overflow".into()));
                    } else {
                        out.push(s as i64);
                    }
                }
                Bat::Bigint(out)
            }
            AggState::SumDec(sums, seen, scale) => {
                let mut out = Vec::with_capacity(sums.len());
                for (s, ok) in sums.into_iter().zip(seen) {
                    if !ok {
                        out.push(NULL_I64);
                    } else if s > i64::MAX as i128 || s < (i64::MIN + 1) as i128 {
                        return Err(MlError::Execution("SUM overflow".into()));
                    } else {
                        out.push(s as i64);
                    }
                }
                Bat::Decimal { data: out, scale }
            }
            AggState::SumF64(sums, seen) => Bat::Double(
                sums.into_iter().zip(seen).map(|(s, ok)| if ok { s } else { f64::NAN }).collect(),
            ),
            AggState::Avg(sums, counts) => Bat::Double(
                sums.into_iter()
                    .zip(counts)
                    .map(|(s, c)| if c == 0 { f64::NAN } else { s / c as f64 })
                    .collect(),
            ),
            AggState::Best(best, _) => {
                let mut out = Bat::with_capacity(out_ty, best.len());
                for v in best {
                    out.push(&v)?;
                }
                out
            }
            AggState::Median(bufs) => Bat::Double(
                bufs.into_iter()
                    .map(|mut vals| {
                        if vals.is_empty() {
                            return f64::NAN;
                        }
                        // O(n) selection instead of a full sort: this is
                        // still the blocking step of Figure 2, just a
                        // cheaper one.
                        let n = vals.len();
                        let (lo, mid, _) =
                            vals.select_nth_unstable_by(n / 2, |a, b| a.total_cmp(b));
                        let upper = *mid;
                        if n % 2 == 1 {
                            upper
                        } else {
                            let lower = lo.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                            (lower + upper) / 2.0
                        }
                    })
                    .collect(),
            ),
        })
    }
}

fn numeric_f64(b: &Bat, row: usize) -> Result<f64> {
    Ok(match b {
        Bat::Int(v) => v[row] as f64,
        Bat::Bigint(v) => v[row] as f64,
        Bat::Double(v) => v[row],
        Bat::Decimal { data, scale } => {
            data[row] as f64 / monetlite_types::decimal::POW10[*scale as usize] as f64
        }
        Bat::Date(v) => v[row] as f64,
        other => {
            return Err(MlError::Execution(format!(
                "numeric aggregate over {}",
                other.logical_type()
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_types::{ColumnBuffer, Decimal};

    #[test]
    fn grouping_basic() {
        let keys = Bat::Int(vec![1, 2, 1, 3, 2]);
        let g = hash_group(&[&keys]);
        assert_eq!(g.repr_rows.len(), 3);
        assert_eq!(g.group_ids[0], g.group_ids[2]);
        assert_eq!(g.group_ids[1], g.group_ids[4]);
        assert_ne!(g.group_ids[0], g.group_ids[3]);
    }

    #[test]
    fn grouping_multi_key_with_nulls() {
        let a = Bat::Int(vec![1, 1, NULL_I32, NULL_I32]);
        let b = Bat::from_buffer(&ColumnBuffer::Varchar(vec![
            Some("x".into()),
            Some("x".into()),
            None,
            None,
        ]));
        let g = hash_group(&[&a, &b]);
        assert_eq!(g.repr_rows.len(), 2, "NULL keys group together");
    }

    #[test]
    fn count_and_count_star() {
        let gids = vec![0, 0, 1];
        let mut star = AggState::new(PAggFunc::Count, None, false, 2).unwrap();
        star.update(None, &gids).unwrap();
        assert_eq!(star.finish(LogicalType::Bigint).unwrap().get(0), Value::Bigint(2));
        let arg = Bat::Int(vec![1, NULL_I32, 5]);
        let mut cnt = AggState::new(PAggFunc::Count, Some(LogicalType::Int), false, 2).unwrap();
        cnt.update(Some(&arg), &gids).unwrap();
        let out = cnt.finish(LogicalType::Bigint).unwrap();
        assert_eq!(out.get(0), Value::Bigint(1), "NULL not counted");
        assert_eq!(out.get(1), Value::Bigint(1));
    }

    #[test]
    fn sum_decimal_keeps_scale() {
        let arg = Bat::Decimal { data: vec![150, 250, NULL_I64], scale: 2 };
        let gids = vec![0, 0, 0];
        let mut s = AggState::new(
            PAggFunc::Sum,
            Some(LogicalType::Decimal { width: 15, scale: 2 }),
            false,
            1,
        )
        .unwrap();
        s.update(Some(&arg), &gids).unwrap();
        let out = s.finish(LogicalType::Decimal { width: 18, scale: 2 }).unwrap();
        assert_eq!(out.get(0), Value::Decimal(Decimal::new(400, 2)));
    }

    #[test]
    fn sum_of_all_nulls_is_null() {
        let arg = Bat::Int(vec![NULL_I32]);
        let mut s = AggState::new(PAggFunc::Sum, Some(LogicalType::Int), false, 1).unwrap();
        s.update(Some(&arg), &[0]).unwrap();
        assert_eq!(s.finish(LogicalType::Bigint).unwrap().get(0), Value::Null);
    }

    #[test]
    fn avg_and_median() {
        let arg = Bat::Int(vec![1, 2, 3, 10]);
        let gids = vec![0, 0, 0, 1];
        let mut a = AggState::new(PAggFunc::Avg, Some(LogicalType::Int), false, 2).unwrap();
        a.update(Some(&arg), &gids).unwrap();
        let out = a.finish(LogicalType::Double).unwrap();
        assert_eq!(out.get(0), Value::Double(2.0));
        assert_eq!(out.get(1), Value::Double(10.0));
        let mut m = AggState::new(PAggFunc::Median, Some(LogicalType::Int), false, 2).unwrap();
        m.update(Some(&arg), &gids).unwrap();
        let out = m.finish(LogicalType::Double).unwrap();
        assert_eq!(out.get(0), Value::Double(2.0));
    }

    #[test]
    fn median_even_count_averages() {
        let arg = Bat::Int(vec![1, 2, 3, 4]);
        let mut m = AggState::new(PAggFunc::Median, Some(LogicalType::Int), false, 1).unwrap();
        m.update(Some(&arg), &[0, 0, 0, 0]).unwrap();
        assert_eq!(m.finish(LogicalType::Double).unwrap().get(0), Value::Double(2.5));
    }

    #[test]
    fn min_max_strings() {
        let arg = Bat::from_buffer(&ColumnBuffer::Varchar(vec![
            Some("pear".into()),
            Some("apple".into()),
            None,
        ]));
        let gids = vec![0, 0, 0];
        let mut mn = AggState::new(PAggFunc::Min, Some(LogicalType::Varchar), false, 1).unwrap();
        mn.update(Some(&arg), &gids).unwrap();
        assert_eq!(mn.finish(LogicalType::Varchar).unwrap().get(0), Value::Str("apple".into()));
        let mut mx = AggState::new(PAggFunc::Max, Some(LogicalType::Varchar), false, 1).unwrap();
        mx.update(Some(&arg), &gids).unwrap();
        assert_eq!(mx.finish(LogicalType::Varchar).unwrap().get(0), Value::Str("pear".into()));
    }

    #[test]
    fn partial_merge_equals_single_pass() {
        let arg = Bat::Int(vec![5, 7, 11, 13]);
        let gids = vec![0, 1, 0, 1];
        // Single pass.
        let mut whole = AggState::new(PAggFunc::Sum, Some(LogicalType::Int), false, 2).unwrap();
        whole.update(Some(&arg), &gids).unwrap();
        // Two chunks merged.
        let c1 = Bat::Int(vec![5, 7]);
        let c2 = Bat::Int(vec![11, 13]);
        let mut p1 = AggState::new(PAggFunc::Sum, Some(LogicalType::Int), false, 2).unwrap();
        p1.update(Some(&c1), &[0, 1]).unwrap();
        let mut p2 = AggState::new(PAggFunc::Sum, Some(LogicalType::Int), false, 2).unwrap();
        p2.update(Some(&c2), &[0, 1]).unwrap();
        p1.merge(p2).unwrap();
        let a = whole.finish(LogicalType::Bigint).unwrap();
        let b = p1.finish(LogicalType::Bigint).unwrap();
        assert_eq!(a.to_buffer(None), b.to_buffer(None));
    }

    // -----------------------------------------------------------------
    // Overflow audit: integer and decimal SUM must accumulate in i128 and
    // report "SUM overflow" at finish instead of silently wrapping —
    // exercised at i64::MAX-adjacent magnitudes, including the streaming
    // engine's partial-merge path.
    // -----------------------------------------------------------------

    #[test]
    fn bigint_sum_overflow_is_an_error_not_a_wrap() {
        let arg = Bat::Bigint(vec![i64::MAX, 1]);
        let mut s = AggState::new(PAggFunc::Sum, Some(LogicalType::Bigint), false, 1).unwrap();
        s.update(Some(&arg), &[0, 0]).unwrap();
        match s.finish(LogicalType::Bigint) {
            Err(MlError::Execution(m)) => assert!(m.contains("SUM overflow"), "{m}"),
            other => panic!("expected SUM overflow, got {other:?}"),
        }
    }

    #[test]
    fn decimal_sum_near_i64_max_is_exact() {
        // i64::MAX - 10 plus 10 lands exactly on i64::MAX: representable,
        // must not error and must not lose precision to a float path.
        let arg = Bat::Decimal { data: vec![i64::MAX - 10, 10], scale: 2 };
        let mut s = AggState::new(
            PAggFunc::Sum,
            Some(LogicalType::Decimal { width: 18, scale: 2 }),
            false,
            1,
        )
        .unwrap();
        s.update(Some(&arg), &[0, 0]).unwrap();
        let out = s.finish(LogicalType::Decimal { width: 18, scale: 2 }).unwrap();
        assert_eq!(out.get(0), Value::Decimal(Decimal::new(i64::MAX, 2)));
    }

    #[test]
    fn decimal_sum_overflow_is_an_error_not_a_wrap() {
        let arg = Bat::Decimal { data: vec![i64::MAX, 1], scale: 2 };
        let mut s = AggState::new(
            PAggFunc::Sum,
            Some(LogicalType::Decimal { width: 18, scale: 2 }),
            false,
            1,
        )
        .unwrap();
        s.update(Some(&arg), &[0, 0]).unwrap();
        match s.finish(LogicalType::Decimal { width: 18, scale: 2 }) {
            Err(MlError::Execution(m)) => assert!(m.contains("SUM overflow"), "{m}"),
            other => panic!("expected SUM overflow, got {other:?}"),
        }
    }

    #[test]
    fn decimal_sum_overflow_detected_across_partial_merge() {
        // Each partial is in range; only their merged total overflows —
        // the i128 widening must carry through merge() and merge_mapped().
        let dec_ty = LogicalType::Decimal { width: 18, scale: 0 };
        let mk = |raw: i64| -> AggState {
            let mut s = AggState::new(PAggFunc::Sum, Some(dec_ty), false, 1).unwrap();
            s.update(Some(&Bat::Decimal { data: vec![raw], scale: 0 }), &[0]).unwrap();
            s
        };
        let mut merged = mk(i64::MAX - 1);
        merged.merge(mk(i64::MAX - 1)).unwrap();
        assert!(merged.finish(dec_ty).is_err(), "merged overflow must surface");
        let mut mapped = mk(i64::MAX - 1);
        mapped.merge_mapped(mk(i64::MAX - 1), &[0]).unwrap();
        assert!(mapped.finish(dec_ty).is_err(), "mapped-merge overflow must surface");
    }

    #[test]
    fn decimal_sum_negative_overflow_and_null_sentinel_guard() {
        // The decimal NULL sentinel is i64::MIN: a sum landing exactly on
        // it must error rather than materialise as NULL.
        let dec_ty = LogicalType::Decimal { width: 18, scale: 0 };
        let mut s = AggState::new(PAggFunc::Sum, Some(dec_ty), false, 1).unwrap();
        s.update(Some(&Bat::Decimal { data: vec![i64::MIN + 1, -1], scale: 0 }), &[0, 0]).unwrap();
        assert!(s.finish(dec_ty).is_err(), "sum == NULL sentinel must not round-trip as NULL");
    }

    #[test]
    fn decimal_avg_near_i64_max_stays_finite() {
        // AVG finalises to DOUBLE; near-sentinel magnitudes must neither
        // wrap nor produce NULL/NaN for non-empty groups.
        let arg = Bat::Decimal { data: vec![i64::MAX - 1, i64::MAX - 1], scale: 2 };
        let mut a = AggState::new(
            PAggFunc::Avg,
            Some(LogicalType::Decimal { width: 18, scale: 2 }),
            false,
            1,
        )
        .unwrap();
        a.update(Some(&arg), &[0, 0]).unwrap();
        match a.finish(LogicalType::Double).unwrap().get(0) {
            Value::Double(v) => {
                let expect = (i64::MAX - 1) as f64 / 100.0;
                assert!(v.is_finite() && (v - expect).abs() <= 1e-3 * expect, "{v}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_distinct() {
        let arg = Bat::Int(vec![1, 1, 2, NULL_I32]);
        let mut s = AggState::new(PAggFunc::Count, Some(LogicalType::Int), true, 1).unwrap();
        s.update(Some(&arg), &[0, 0, 0, 0]).unwrap();
        assert_eq!(s.finish(LogicalType::Bigint).unwrap().get(0), Value::Bigint(2));
    }

    #[test]
    fn distinct_sum_unsupported() {
        assert!(AggState::new(PAggFunc::Sum, Some(LogicalType::Int), true, 1).is_err());
    }
}
