//! The paper-reproduction driver: regenerates every table and figure of
//! the evaluation section (see EXPERIMENTS.md).
//!
//! ```text
//! repro [--sf X] [--rows N] [--runs K] [--timeout SECS] <experiment...>
//! experiments: fig2 fig5 fig6 table1-sf1 table1-sf10 fig7 fig8 ablations all
//! ```

use monetlite_bench::*;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = BenchConfig::default();
    let mut experiments: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sf" => {
                cfg.sf = args[i + 1].parse().expect("--sf takes a float");
                i += 2;
            }
            "--rows" => {
                cfg.acs_rows = args[i + 1].parse().expect("--rows takes an int");
                i += 2;
            }
            "--runs" => {
                cfg.runs = args[i + 1].parse().expect("--runs takes an int");
                i += 2;
            }
            "--timeout" => {
                cfg.timeout =
                    Duration::from_secs(args[i + 1].parse().expect("--timeout takes seconds"));
                i += 2;
            }
            other => {
                experiments.push(other.to_string());
                i += 1;
            }
        }
    }
    if experiments.is_empty() {
        eprintln!(
            "usage: repro [--sf X] [--rows N] [--runs K] [--timeout SECS] \
             <fig2|fig5|fig6|table1-sf1|table1-sf10|fig7|fig8|ablations|all>"
        );
        std::process::exit(2);
    }
    if experiments.iter().any(|e| e == "all") {
        experiments =
            ["fig2", "fig5", "fig6", "table1-sf1", "table1-sf10", "fig7", "fig8", "ablations"]
                .iter()
                .map(|s| s.to_string())
                .collect();
    }
    println!(
        "monetlite repro  sf={} acs_rows={} runs={} timeout={:?}",
        cfg.sf, cfg.acs_rows, cfg.runs, cfg.timeout
    );
    for e in &experiments {
        match e.as_str() {
            "fig5" => print_figure(
                "Figure 5: writing lineitem from the host into the database (s)",
                &fig5_ingestion(&cfg),
            ),
            "fig6" => print_figure(
                "Figure 6: loading lineitem from the database into the host (s)",
                &fig6_export(&cfg),
            ),
            "table1-sf1" => {
                let (cols, rows) = table1(&cfg, false);
                print_matrix("Table 1 (SF1-equivalent): TPC-H Q1-Q10 (s)", &cols, &rows);
            }
            "table1-sf10" => {
                let (cols, rows) = table1(&cfg, true);
                print_matrix(
                    "Table 1 (SF10-equivalent, memory-bounded): TPC-H Q1-Q10 (s)",
                    &cols,
                    &rows,
                );
            }
            "fig2" => {
                let (cells, explain) = fig2_mitosis(2_000_000, &[1, 2, 4, 8]);
                print_figure("Figure 2: SELECT MEDIAN(SQRT(i*2)) FROM tbl (2M rows) (s)", &cells);
                println!("\n-- EXPLAIN (8 threads) --\n{explain}");
            }
            "fig7" => {
                print_figure("Figure 7: loading the 274-column ACS table (s)", &fig7_acs_load(&cfg))
            }
            "fig8" => print_figure("Figure 8: ACS survey statistics (s)", &fig8_acs_stats(&cfg)),
            "ablations" => ablations(&cfg),
            other => eprintln!("unknown experiment '{other}' (skipped)"),
        }
    }
}

/// Design-choice ablations called out in DESIGN.md §4.
fn ablations(cfg: &BenchConfig) {
    use monetlite::exec::ExecOptions;
    use monetlite::host::{HostFrame, TransferMode};
    use monetlite::Database;
    use monetlite_storage::heap::StringHeap;

    let data = monetlite_tpch::generate(cfg.sf, cfg.seed);
    let db = Database::open_in_memory();
    let mut conn = db.connect();
    monetlite_tpch::load_monet(&mut conn, &data).unwrap();

    // 1. Export mode: zero-copy vs eager vs lazy(1 column touched).
    let mut rows = Vec::new();
    let r = conn.query("SELECT * FROM lineitem").unwrap();
    rows.push((
        "export zero-copy".to_string(),
        measure(cfg.runs, || {
            let f = HostFrame::import(&r, TransferMode::ZeroCopy);
            std::hint::black_box(f.stats.zero_copied);
            Ok(())
        }),
    ));
    rows.push((
        "export eager".to_string(),
        measure(cfg.runs, || {
            let f = HostFrame::import(&r, TransferMode::Eager);
            std::hint::black_box(f.stats.bytes_copied);
            Ok(())
        }),
    ));
    rows.push((
        "export lazy (touch 1 col)".to_string(),
        measure(cfg.runs, || {
            let f = HostFrame::import(&r, TransferMode::Lazy);
            std::hint::black_box(f.cols[0].get(0));
            Ok(())
        }),
    ));
    print_figure("Ablation: result transfer modes (SELECT * FROM lineitem)", &rows);

    // 2. Imprints on/off for a selective range query.
    let q = "SELECT count(*) FROM lineitem WHERE l_shipdate >= date '1998-06-01'";
    let mut rows = Vec::new();
    for (label, on) in [("imprints on", true), ("imprints off", false)] {
        let mut opts =
            ExecOptions { use_imprints: on, use_order_index: false, ..Default::default() };
        opts.use_hash_index = true;
        conn.set_exec_options(opts);
        let _warm = conn.query(q).unwrap(); // builds the imprint once
        rows.push((
            label.to_string(),
            measure(cfg.runs, || {
                conn.query(q)?;
                Ok(())
            }),
        ));
    }
    print_figure("Ablation: column imprints (selective date range count)", &rows);

    // 3. Order index vs imprints for the same query.
    conn.execute("CREATE ORDER INDEX oi_ship ON lineitem (l_shipdate)").unwrap();
    conn.set_exec_options(ExecOptions::default());
    let _warm = conn.query(q).unwrap();
    let rows = vec![(
        "order index".to_string(),
        measure(cfg.runs, || {
            conn.query(q)?;
            Ok(())
        }),
    )];
    print_figure("Ablation: CREATE ORDER INDEX (same range count)", &rows);

    // 4. Automatic hash index on join keys on/off.
    let qj = "SELECT count(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey";
    let mut rows = Vec::new();
    for (label, on) in [("hash index on", true), ("hash index off", false)] {
        let opts = ExecOptions { use_hash_index: on, ..Default::default() };
        conn.set_exec_options(opts);
        let _warm = conn.query(qj).unwrap();
        rows.push((
            label.to_string(),
            measure(cfg.runs, || {
                conn.query(qj)?;
                Ok(())
            }),
        ));
    }
    print_figure("Ablation: automatic join hash index (lineitem ⋈ orders)", &rows);

    // 5. String-heap duplicate elimination on/off (build cost + size).
    let values: Vec<String> = (0..200_000).map(|i| format!("value-{}", i % 1000)).collect();
    let mut rows = Vec::new();
    for (label, limit) in [("heap dedup on", usize::MAX), ("heap dedup off", 0)] {
        let mut size = 0usize;
        let cell = measure(cfg.runs, || {
            let mut h = StringHeap::with_dedup_limit(limit);
            for v in &values {
                h.add(v);
            }
            size = h.size_bytes();
            Ok(())
        });
        rows.push((format!("{label} ({size} heap bytes)"), cell));
    }
    print_figure("Ablation: string heap duplicate elimination (200k strings, 1k distinct)", &rows);

    // 6. Mitosis thread scaling on the Figure 2 query.
    let (cells, _) = fig2_mitosis(1_000_000, &[1, 2, 4, 8]);
    print_figure("Ablation: mitosis thread scaling (1M-row median)", &cells);
}
