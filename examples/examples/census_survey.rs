//! The paper's §4.3 scenario: a 274-column census table stored in the
//! embedded database, analysed with replicate-weight survey statistics.
//!
//! ```sh
//! cargo run --release -p monetlite-examples --example census_survey
//! ```

use monetlite::host::{HostFrame, TransferMode};
use monetlite::Database;
use monetlite_acs::survey::{self, ColumnSource};
use monetlite_types::{ColumnBuffer, Result};
use std::time::Instant;

struct Conn<'a>(&'a mut monetlite::Connection);

impl ColumnSource for Conn<'_> {
    fn columns(&mut self, names: &[&str]) -> Result<Vec<ColumnBuffer>> {
        let r = self.0.query(&format!("SELECT {} FROM acs", names.join(", ")))?;
        let frame = HostFrame::import(&r, TransferMode::ZeroCopy);
        Ok(frame.cols.iter().map(|c| c.native()).collect())
    }
}

fn main() -> Result<()> {
    let rows = 30_000;
    println!("generating {rows} census person records (274 columns)...");
    let data = monetlite_acs::wrangle(monetlite_acs::generate(rows, 7))?;

    let db = Database::open_in_memory();
    let mut conn = db.connect();
    let t0 = Instant::now();
    conn.execute(&monetlite_acs::ddl(&data))?;
    conn.append("acs", data.cols.clone())?;
    println!("loaded into the database in {:?}", t0.elapsed());

    let t0 = Instant::now();
    let mut src = Conn(&mut conn);
    let stats = survey::analysis(&mut src)?;
    println!("survey statistics ({:?}):", t0.elapsed());
    for (label, est) in stats {
        println!("  {label:<22} {:>16.1} (SE {:.1})", est.value, est.se);
    }
    Ok(())
}
