//! Join kernels: hash join (inner/left/semi/anti), merge join over order
//! indexes, and cross products.
//!
//! The hash join "builds" on the right input. When the build side is a
//! bare persistent column, the executor passes its automatically
//! maintained [`HashIndex`] (paper §3.1: "Hash tables are also
//! automatically created for persistent columns when they are used in
//! groupings or as join keys in equi-joins") — the build phase then
//! disappears entirely. The order-index merge join implements the paper's
//! "For joins, the order index is used for a merge join."

use crate::plan::PJoinKind;
use crate::rows::{any_null, row_hash, rows_eq, NO_ROW};
use monetlite_storage::index::{key_at, HashIndex, OrderIndex};
use monetlite_storage::Bat;
use monetlite_types::{MlError, Result};
use std::collections::HashMap;

/// Row-id pairs produced by a join; `rsel` entries may be [`NO_ROW`]
/// (left outer). For semi/anti joins `rsel` is empty.
#[derive(Debug, Default)]
pub struct JoinSel {
    /// Left row ids.
    pub lsel: Vec<u32>,
    /// Right row ids (empty for semi/anti).
    pub rsel: Vec<u32>,
}

impl JoinSel {
    /// Rewrite probe-side row ids through a candidate list: each `lsel`
    /// entry was a *logical* position into the probe vector's selection
    /// (the probe keys were compacted through it); afterwards it is the
    /// physical row id in the underlying columns, so the output gather
    /// is the candidate chain's single materialisation.
    pub fn compose_lsel(&mut self, sel: &[u32]) {
        for l in &mut self.lsel {
            *l = sel[*l as usize];
        }
    }
}

/// Hash join over aligned key column sets: build then probe in one call
/// (the materialized engine's entry point). The streaming engine builds
/// once with [`build_hash_map`] and probes vector-at-a-time with
/// [`probe_hash`]/[`probe_index`].
pub fn hash_join(
    lkeys: &[&Bat],
    rkeys: &[&Bat],
    kind: PJoinKind,
    prebuilt: Option<&HashIndex>,
) -> Result<JoinSel> {
    if lkeys.len() != rkeys.len() || lkeys.is_empty() {
        return Err(MlError::Execution("hash join requires aligned non-empty keys".into()));
    }
    // Fast path: a single-key join probing a prebuilt per-column hash
    // index (candidates verified exactly, as MonetDB does).
    if let (Some(idx), 1) = (prebuilt, rkeys.len()) {
        return Ok(probe_index(lkeys, rkeys, idx, kind));
    }
    // General path: build a transient table on the right side.
    let table = build_hash_map(rkeys);
    Ok(probe_hash(lkeys, rkeys, &table, kind))
}

/// The hash-join build phase: bucket every non-NULL build row by its
/// composite key hash.
pub fn build_hash_map(rkeys: &[&Bat]) -> HashMap<u64, Vec<u32>> {
    let rrows = rkeys.first().map_or(0, |k| k.len());
    let mut table: HashMap<u64, Vec<u32>> = HashMap::with_capacity(rrows);
    for r in 0..rrows {
        if any_null(rkeys, r) {
            continue; // NULL keys never match
        }
        table.entry(row_hash(rkeys, r)).or_default().push(r as u32);
    }
    table
}

/// Probe a transient build table with a block of probe-side keys.
/// `lsel` entries index the probe block; `rsel` entries index the full
/// build side.
pub fn probe_hash(
    lkeys: &[&Bat],
    rkeys: &[&Bat],
    table: &HashMap<u64, Vec<u32>>,
    kind: PJoinKind,
) -> JoinSel {
    let lrows = lkeys.first().map_or(0, |k| k.len());
    let mut out = JoinSel::default();
    for l in 0..lrows {
        if any_null(lkeys, l) {
            finish_probe(&mut out, kind, l as u32, false);
            continue;
        }
        let mut matched = false;
        if let Some(bucket) = table.get(&row_hash(lkeys, l)) {
            for &r in bucket {
                if rows_eq(lkeys, l, rkeys, r as usize, false) {
                    matched = true;
                    match kind {
                        PJoinKind::Inner | PJoinKind::Left => {
                            out.lsel.push(l as u32);
                            out.rsel.push(r);
                        }
                        PJoinKind::Semi | PJoinKind::Anti => break,
                        // xlint: allow(panic, planner never routes cross joins through key probes)
                        PJoinKind::Cross => unreachable!(),
                    }
                }
            }
        }
        finish_probe(&mut out, kind, l as u32, matched);
    }
    out
}

/// Probe an automatically maintained per-column [`HashIndex`] (single-key
/// joins over bare persistent columns; the build phase disappears).
pub fn probe_index(lkeys: &[&Bat], rkeys: &[&Bat], idx: &HashIndex, kind: PJoinKind) -> JoinSel {
    let lrows = lkeys.first().map_or(0, |k| k.len());
    let mut out = JoinSel::default();
    for l in 0..lrows {
        if any_null(lkeys, l) {
            if kind == PJoinKind::Anti {
                out.lsel.push(l as u32);
            }
            if kind == PJoinKind::Left {
                out.lsel.push(l as u32);
                out.rsel.push(NO_ROW);
            }
            continue;
        }
        let key = key_at(lkeys[0], l);
        let mut matched = false;
        for &r in idx.lookup(key) {
            if rows_eq(lkeys, l, rkeys, r as usize, false) {
                matched = true;
                match kind {
                    PJoinKind::Inner | PJoinKind::Left => {
                        out.lsel.push(l as u32);
                        out.rsel.push(r);
                    }
                    PJoinKind::Semi => break,
                    PJoinKind::Anti => break,
                    // xlint: allow(panic, planner never routes cross joins through key probes)
                    PJoinKind::Cross => unreachable!(),
                }
            }
        }
        finish_probe(&mut out, kind, l as u32, matched);
    }
    out
}

#[inline]
fn finish_probe(out: &mut JoinSel, kind: PJoinKind, l: u32, matched: bool) {
    match kind {
        PJoinKind::Left if !matched => {
            out.lsel.push(l);
            out.rsel.push(NO_ROW);
        }
        PJoinKind::Semi if matched => out.lsel.push(l),
        PJoinKind::Anti if !matched => out.lsel.push(l),
        _ => {}
    }
}

/// Inner merge join over two order indexes (single equi-key). Produces
/// the same pairs as [`hash_join`], in key order.
pub fn merge_join(lkey: &Bat, lidx: &OrderIndex, rkey: &Bat, ridx: &OrderIndex) -> JoinSel {
    let lperm = lidx.perm();
    let rperm = ridx.perm();
    let mut out = JoinSel::default();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lperm.len() && j < rperm.len() {
        let li = lperm[i] as usize;
        let rj = rperm[j] as usize;
        if lkey.is_null_at(li) {
            i += 1;
            continue;
        }
        if rkey.is_null_at(rj) {
            j += 1;
            continue;
        }
        let lk = key_at(lkey, li);
        let rk = key_at(rkey, rj);
        match lk.cmp(&rk) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Emit the full cartesian block of equal keys.
                let mut jend = j;
                while jend < rperm.len() && key_at(rkey, rperm[jend] as usize) == rk {
                    jend += 1;
                }
                let mut iend = i;
                while iend < lperm.len() && key_at(lkey, lperm[iend] as usize) == lk {
                    iend += 1;
                }
                for &lr in &lperm[i..iend] {
                    for &rr in &rperm[j..jend] {
                        out.lsel.push(lr);
                        out.rsel.push(rr);
                    }
                }
                i = iend;
                j = jend;
            }
        }
    }
    out
}

/// Pairs of a **scalar join** — a key-less LEFT join as planned by the
/// binder for uncorrelated scalar subqueries: the right side must hold at
/// most one row; zero rows pad every probe row with NULL (SQL's empty
/// scalar subquery answer), more than one row is the SQL error.
pub fn scalar_left_pairs(lrows: usize, rrows: usize) -> Result<JoinSel> {
    if rrows > 1 {
        return Err(MlError::Execution(format!(
            "scalar subquery returned {rrows} rows (at most one expected)"
        )));
    }
    let rid = if rrows == 0 { NO_ROW } else { 0 };
    Ok(JoinSel { lsel: (0..lrows as u32).collect(), rsel: vec![rid; lrows] })
}

/// Cross product row-id pairs.
pub fn cross_join(lrows: usize, rrows: usize) -> JoinSel {
    let mut out = JoinSel {
        lsel: Vec::with_capacity(lrows * rrows),
        rsel: Vec::with_capacity(lrows * rrows),
    };
    for l in 0..lrows {
        for r in 0..rrows {
            out.lsel.push(l as u32);
            out.rsel.push(r as u32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_storage::index::OrderIndex;
    use monetlite_types::nulls::NULL_I32;

    fn pairs(sel: &JoinSel) -> Vec<(u32, u32)> {
        let mut v: Vec<(u32, u32)> =
            sel.lsel.iter().copied().zip(sel.rsel.iter().copied()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn inner_join_basic() {
        let l = Bat::Int(vec![1, 2, 3, 2]);
        let r = Bat::Int(vec![2, 4, 1]);
        let out = hash_join(&[&l], &[&r], PJoinKind::Inner, None).unwrap();
        assert_eq!(pairs(&out), vec![(0, 2), (1, 0), (3, 0)]);
    }

    #[test]
    fn left_join_pads() {
        let l = Bat::Int(vec![1, 9]);
        let r = Bat::Int(vec![1]);
        let out = hash_join(&[&l], &[&r], PJoinKind::Left, None).unwrap();
        assert_eq!(out.lsel, vec![0, 1]);
        assert_eq!(out.rsel, vec![0, NO_ROW]);
    }

    #[test]
    fn semi_and_anti() {
        let l = Bat::Int(vec![1, 2, 3]);
        let r = Bat::Int(vec![2, 2, 5]);
        let semi = hash_join(&[&l], &[&r], PJoinKind::Semi, None).unwrap();
        assert_eq!(semi.lsel, vec![1]);
        assert!(semi.rsel.is_empty());
        let anti = hash_join(&[&l], &[&r], PJoinKind::Anti, None).unwrap();
        assert_eq!(anti.lsel, vec![0, 2]);
    }

    #[test]
    fn null_keys_never_match() {
        let l = Bat::Int(vec![NULL_I32, 1]);
        let r = Bat::Int(vec![NULL_I32, 1]);
        let out = hash_join(&[&l], &[&r], PJoinKind::Inner, None).unwrap();
        assert_eq!(pairs(&out), vec![(1, 1)]);
        // Anti keeps NULL-keyed left rows (no match possible).
        let anti = hash_join(&[&l], &[&r], PJoinKind::Anti, None).unwrap();
        assert_eq!(anti.lsel, vec![0]);
        // Left join pads NULL-keyed rows.
        let left = hash_join(&[&l], &[&r], PJoinKind::Left, None).unwrap();
        assert_eq!(left.rsel, vec![NO_ROW, 1]);
    }

    #[test]
    fn multi_key_join() {
        let l1 = Bat::Int(vec![1, 1, 2]);
        let l2 = Bat::Int(vec![10, 20, 10]);
        let r1 = Bat::Int(vec![1, 2]);
        let r2 = Bat::Int(vec![20, 10]);
        let out = hash_join(&[&l1, &l2], &[&r1, &r2], PJoinKind::Inner, None).unwrap();
        assert_eq!(pairs(&out), vec![(1, 0), (2, 1)]);
    }

    #[test]
    fn prebuilt_index_path_matches_general_path() {
        let l = Bat::Int(vec![3, 1, 4, 1, 5]);
        let r = Bat::Int(vec![1, 5, 9, 1]);
        let idx = HashIndex::build(&(0..r.len()).map(|i| key_at(&r, i)).collect::<Vec<_>>());
        for kind in [PJoinKind::Inner, PJoinKind::Left, PJoinKind::Semi, PJoinKind::Anti] {
            let with_idx = hash_join(&[&l], &[&r], kind, Some(&idx)).unwrap();
            let without = hash_join(&[&l], &[&r], kind, None).unwrap();
            assert_eq!(pairs(&with_idx), pairs(&without), "{kind:?}");
            assert_eq!(with_idx.lsel.len(), without.lsel.len());
        }
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let l = Bat::Int(vec![5, 3, 1, 3]);
        let r = Bat::Int(vec![3, 5, 3, 7]);
        let lidx = OrderIndex::build(&(0..l.len()).map(|i| key_at(&l, i)).collect::<Vec<_>>());
        let ridx = OrderIndex::build(&(0..r.len()).map(|i| key_at(&r, i)).collect::<Vec<_>>());
        let merged = merge_join(&l, &lidx, &r, &ridx);
        let hashed = hash_join(&[&l], &[&r], PJoinKind::Inner, None).unwrap();
        assert_eq!(pairs(&merged), pairs(&hashed));
    }

    #[test]
    fn cross_join_counts() {
        let out = cross_join(3, 2);
        assert_eq!(out.lsel.len(), 6);
        assert_eq!(pairs(&out).len(), 6);
    }

    #[test]
    fn string_keys_join() {
        use monetlite_types::ColumnBuffer;
        let l = Bat::from_buffer(&ColumnBuffer::Varchar(vec![
            Some("FRANCE".into()),
            Some("GERMANY".into()),
            None,
        ]));
        let r = Bat::from_buffer(&ColumnBuffer::Varchar(vec![
            Some("GERMANY".into()),
            Some("FRANCE".into()),
        ]));
        let out = hash_join(&[&l], &[&r], PJoinKind::Inner, None).unwrap();
        assert_eq!(pairs(&out), vec![(0, 1), (1, 0)]);
    }
}
