//! Join-side bloom filters for sideways information passing.
//!
//! A hash-join build side summarises its key hashes into a small bitmap;
//! the planner pushes the filter into the probe-side scan, where it runs
//! as a per-morsel pre-filter *before* the join (composing with zonemap
//! skipping). Rows whose key hash is definitely absent from the build
//! side are dropped at the scan, so they never travel through the
//! pipeline only to miss in the hash table. False positives are fine —
//! the join still verifies candidates exactly; false negatives are
//! impossible, so results are unchanged.
//!
//! Keys enter as the executor's 64-bit composite row hashes
//! ([`crate::rows::row_hash`]), so the filter and the join table always
//! agree on the hash of a row.

/// A split-block style bloom filter over pre-hashed `u64` keys.
///
/// Sized at roughly 10 bits per distinct key (rounded up to a power of
/// two) with `k = 6` probes, for a ~1% false-positive rate at design
/// load.
#[derive(Debug, Clone)]
pub struct Bloom {
    /// Bitmap, always a power-of-two number of bits.
    bits: Vec<u64>,
    /// `bits_len - 1`, used to mask probe positions.
    mask: u64,
    /// Number of keys inserted (diagnostics only).
    keys: u64,
}

/// Probes per key.
const K: u32 = 6;

/// Bits budgeted per expected key.
const BITS_PER_KEY: usize = 10;

impl Bloom {
    /// A filter sized for `expected` keys (at least 1024 bits so tiny
    /// build sides do not saturate).
    pub fn with_capacity(expected: usize) -> Bloom {
        let nbits = (expected.saturating_mul(BITS_PER_KEY)).next_power_of_two().max(1024);
        Bloom { bits: vec![0u64; nbits / 64], mask: (nbits - 1) as u64, keys: 0 }
    }

    /// Derive the `i`-th probe position from a key hash. The multiplier
    /// re-mixes the hash so probes are decorrelated even though the
    /// executor's row hash is only lightly avalanched.
    #[inline]
    fn probe(&self, h: u64, i: u32) -> u64 {
        let mut z = h ^ (u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        (z ^ (z >> 27)) & self.mask
    }

    /// Insert one pre-hashed key.
    pub fn insert(&mut self, h: u64) {
        for i in 0..K {
            let p = self.probe(h, i);
            self.bits[(p / 64) as usize] |= 1u64 << (p % 64);
        }
        self.keys += 1;
    }

    /// Membership test: `false` means the key is definitely absent;
    /// `true` means it may be present.
    #[inline]
    pub fn contains(&self, h: u64) -> bool {
        (0..K).all(|i| {
            let p = self.probe(h, i);
            self.bits[(p / 64) as usize] & (1u64 << (p % 64)) != 0
        })
    }

    /// Number of inserted keys.
    pub fn keys(&self) -> u64 {
        self.keys
    }

    /// Bitmap size in bits.
    pub fn nbits(&self) -> usize {
        self.bits.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(x: u64) -> u64 {
        // splitmix64 finisher: independent from the filter's probe mixer.
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn no_false_negatives() {
        let mut b = Bloom::with_capacity(10_000);
        for i in 0..10_000u64 {
            b.insert(mix(i));
        }
        assert_eq!(b.keys(), 10_000);
        for i in 0..10_000u64 {
            assert!(b.contains(mix(i)), "inserted key {i} reported absent");
        }
    }

    #[test]
    fn false_positive_rate_at_design_load() {
        let mut b = Bloom::with_capacity(10_000);
        for i in 0..10_000u64 {
            b.insert(mix(i));
        }
        let fp = (10_000..110_000u64).filter(|&i| b.contains(mix(i))).count();
        // ~1% by design; allow generous slack for hash luck.
        assert!(fp < 5_000, "false-positive rate too high: {fp}/100000");
    }

    #[test]
    fn tiny_build_sides_get_floor_size() {
        let b = Bloom::with_capacity(0);
        assert!(b.nbits() >= 1024);
        let mut b = Bloom::with_capacity(3);
        b.insert(mix(7));
        assert!(b.contains(mix(7)));
        // With 1024+ bits and 3 keys, almost everything else misses.
        let fp = (100..1100u64).filter(|&i| b.contains(mix(i))).count();
        assert!(fp < 100, "{fp}");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let b = Bloom::with_capacity(100);
        assert!((0..1000u64).all(|i| !b.contains(mix(i))));
    }
}
