//! Plan/result cache hot-loop benchmarks: the query-as-a-service
//! pattern the caching tier targets — the same parameterized TPC-H
//! shapes issued over and over.
//!
//! Legs per shape:
//! * `cold` — both caches off: every iteration pays parse + bind +
//!   optimize + execute (the pre-cache behaviour).
//! * `plan_hit` — plan cache on, result cache off, a fresh date literal
//!   every iteration: the normalized template is replayed with new
//!   bindings, so only parse/bind/optimize are skipped and execution
//!   still runs.
//! * `hot` — both caches on, cycling a small set of parameter variants
//!   (Q5's region): steady state serves Arc-shared results without
//!   re-execution.
//!
//! Run with `MONETLITE_BENCH_JSON=BENCH_cache.json cargo bench --bench
//! cache` to record results; CI runs `cargo bench --bench cache --
//! --test` as a smoke check.

use criterion::{criterion_group, criterion_main, Criterion};
use monetlite::exec::ExecOptions;
use monetlite_tpch::{generate, load_monet, queries};

const REGIONS: [&str; 5] = ["ASIA", "AMERICA", "EUROPE", "AFRICA", "MIDDLE EAST"];

fn opts(plan: bool, result: bool) -> ExecOptions {
    ExecOptions {
        threads: 1,
        vector_size: 64 * 1024,
        use_plan_cache: plan,
        use_result_cache: result,
        ..Default::default()
    }
}

fn connect(db: &monetlite::Database, plan: bool, result: bool) -> monetlite::Connection {
    let mut conn = db.connect();
    conn.set_exec_options(opts(plan, result));
    conn
}

fn q5_region(region: &str) -> String {
    queries::sql(5).replace("'ASIA'", &format!("'{region}'"))
}

fn q5_date(i: usize) -> String {
    // 72 distinct dates: every iteration binds a literal the caches have
    // not seen, so the plan cache hits but the result cache cannot.
    let (y, m) = (1992 + i % 6, 1 + (i / 6) % 12);
    queries::sql(5).replace("1994-01-01", &format!("{y}-{m:02}-01"))
}

fn bench_cache(c: &mut Criterion) {
    let data = generate(0.05, 1);
    let db = monetlite::Database::open_in_memory();
    let mut load_conn = db.connect();
    load_monet(&mut load_conn, &data).unwrap();
    drop(load_conn);

    let mut g = c.benchmark_group("cache_hot_loop");
    g.sample_size(10);

    // Cold baseline: the identical variant cycle with caches disabled.
    let mut cold = connect(&db, false, false);
    let mut i = 0usize;
    g.bench_function("q5_variants_cold", |b| {
        b.iter(|| {
            let sql = q5_region(REGIONS[i % REGIONS.len()]);
            i += 1;
            cold.query(&sql).unwrap()
        })
    });

    // Plan-cache-only: fresh literals every iteration, execution runs.
    let mut plan_only = connect(&db, true, false);
    plan_only.query(&q5_date(0)).unwrap(); // prime the template
    plan_only.query(&q5_date(1)).unwrap();
    let counters = plan_only.last_exec_counters().unwrap();
    assert_eq!(counters.plan_cache_hits, 1, "leg must measure plan-cache hits");
    assert_eq!(counters.result_cache_hits, 0, "fresh literals must not hit the result cache");
    let mut i = 2usize;
    g.bench_function("q5_fresh_params_plan_hit", |b| {
        b.iter(|| {
            let sql = q5_date(i);
            i += 1;
            plan_only.query(&sql).unwrap()
        })
    });

    // Hot loop: both caches on, cycling the five region variants. After
    // one warm pass every iteration is a result hit.
    let mut hot = connect(&db, true, true);
    for r in REGIONS {
        hot.query(&q5_region(r)).unwrap();
    }
    hot.query(&q5_region(REGIONS[0])).unwrap();
    assert_eq!(
        hot.last_exec_counters().unwrap().result_cache_hits,
        1,
        "leg must measure result-cache hits"
    );
    let mut i = 1usize;
    g.bench_function("q5_variants_hot", |b| {
        b.iter(|| {
            let sql = q5_region(REGIONS[i % REGIONS.len()]);
            i += 1;
            hot.query(&sql).unwrap()
        })
    });

    // Tiny corpus: execution is nearly free, so the cold leg is
    // dominated by parse + bind + DPsize join ordering — the work a
    // plan-cache hit elides.
    let tiny_data = generate(0.001, 1);
    let tiny_db = monetlite::Database::open_in_memory();
    let mut tiny_load = tiny_db.connect();
    load_monet(&mut tiny_load, &tiny_data).unwrap();
    drop(tiny_load);
    let mut tiny_cold = connect(&tiny_db, false, false);
    let mut i = 0usize;
    g.bench_function("q5_tiny_cold", |b| {
        b.iter(|| {
            let sql = q5_date(i);
            i += 1;
            tiny_cold.query(&sql).unwrap()
        })
    });
    let mut tiny_plan = connect(&tiny_db, true, false);
    tiny_plan.query(&q5_date(0)).unwrap();
    let mut i = 1usize;
    g.bench_function("q5_tiny_plan_hit", |b| {
        b.iter(|| {
            let sql = q5_date(i);
            i += 1;
            tiny_plan.query(&sql).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
