//! # monetlite-acs
//!
//! The American Community Survey workload of the paper's §4.3: a synthetic
//! census PUMS dataset with the real one's shape — **274 columns** of
//! person records (weights, 80 replicate weights, demographic codes) for a
//! handful of states — plus the survey-package analysis pipeline:
//! weighted estimates whose standard errors come from successive
//! difference replication over the replicate weights.
//!
//! The paper's experiment measures (Fig 7) loading this wide table into
//! each database and (Fig 8) running statistics where "most of the actual
//! processing happens inside R rather than inside the database" — here,
//! the replicate-weight loop in [`survey`] — so engine differences stay
//! under 2×.

#![forbid(unsafe_code)]

pub mod survey;

use monetlite_types::{ColumnBuffer, Field, LogicalType, Result, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of replicate weights (the ACS publishes 80).
pub const N_REPLICATES: usize = 80;

/// Total column count (matches the paper's "274 columns").
pub const N_COLUMNS: usize = 274;

/// The synthetic census table.
pub struct AcsData {
    /// Column definitions (274 fields).
    pub schema: Schema,
    /// Column-major data.
    pub cols: Vec<ColumnBuffer>,
    /// Row count.
    pub rows: usize,
}

impl AcsData {
    /// Total bytes of the host representation.
    pub fn bytes(&self) -> usize {
        self.cols.iter().map(|c| c.size_bytes()).sum()
    }
}

/// State codes used (5 states, like the paper's 5-state subset).
pub const STATES: [i32; 5] = [6, 36, 48, 12, 17]; // CA, NY, TX, FL, IL

/// Generate `rows` person records, deterministic in `seed`.
pub fn generate(rows: usize, seed: u64) -> AcsData {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fields = Vec::with_capacity(N_COLUMNS);
    let mut cols: Vec<ColumnBuffer> = Vec::with_capacity(N_COLUMNS);

    // Identification + core demographics.
    fields.push(Field::not_null("serialno", LogicalType::Int));
    cols.push(ColumnBuffer::Int((0..rows as i32).collect()));
    fields.push(Field::not_null("st", LogicalType::Int));
    cols.push(ColumnBuffer::Int(
        (0..rows).map(|_| STATES[rng.random_range(0..STATES.len())]).collect(),
    ));
    fields.push(Field::not_null("agep", LogicalType::Int));
    cols.push(ColumnBuffer::Int((0..rows).map(|_| rng.random_range(0..=95)).collect()));
    fields.push(Field::not_null("sex", LogicalType::Int));
    cols.push(ColumnBuffer::Int((0..rows).map(|_| rng.random_range(1..=2)).collect()));
    // Income: zero for minors, right-skewed for adults (a few NULLs).
    fields.push(Field::new("pincp", LogicalType::Double));
    let ages = match &cols[2] {
        ColumnBuffer::Int(v) => v.clone(),
        _ => unreachable!(),
    };
    cols.push(ColumnBuffer::Double(
        (0..rows)
            .map(|i| {
                if ages[i] < 16 {
                    0.0
                } else if rng.random_ratio(1, 50) {
                    f64::NAN // missing response
                } else {
                    let base: f64 = rng.random_range(8.5..12.5);
                    base.exp().min(500_000.0)
                }
            })
            .collect(),
    ));
    fields.push(Field::new("wagp", LogicalType::Double));
    cols.push(ColumnBuffer::Double(
        (0..rows)
            .map(|i| if ages[i] < 16 { 0.0 } else { rng.random_range(0.0..150_000.0) })
            .collect(),
    ));

    // The person weight and 80 replicate weights.
    fields.push(Field::not_null("pwgtp", LogicalType::Int));
    let weights: Vec<i32> = (0..rows).map(|_| rng.random_range(1..=200)).collect();
    cols.push(ColumnBuffer::Int(weights.clone()));
    for r in 1..=N_REPLICATES {
        fields.push(Field::not_null(format!("pwgtp{r}"), LogicalType::Int));
        // Replicates perturb the base weight (successive difference
        // replication keeps them near the base).
        cols.push(ColumnBuffer::Int(
            weights
                .iter()
                .map(|&w| {
                    let f = rng.random_range(0.6..1.4);
                    ((w as f64 * f) as i32).max(0)
                })
                .collect(),
        ));
    }

    // Filler survey variables (categorical codes) up to 274 columns.
    while fields.len() < N_COLUMNS {
        let i = fields.len();
        fields.push(Field::new(format!("v{i:03}"), LogicalType::Int));
        let cardinality = [2, 5, 10, 100][i % 4];
        cols.push(ColumnBuffer::Int((0..rows).map(|_| rng.random_range(0..cardinality)).collect()));
    }

    let schema = Schema::new(fields).expect("generated names are unique");
    AcsData { schema, cols, rows }
}

/// Host-side preprocessing ("the survey package performs a lot of
/// preprocessing in R that happens regardless of which database is
/// used"): derive an age-group recode column. Runs *before* any DB load
/// in the Fig 7 measurement.
pub fn wrangle(mut data: AcsData) -> Result<AcsData> {
    let agegrp: Vec<i32> = match &data.cols[2] {
        ColumnBuffer::Int(ages) => ages.iter().map(|&a| a / 5).collect(),
        _ => unreachable!(),
    };
    let mut fields: Vec<Field> = data.schema.fields().to_vec();
    fields.push(Field::not_null("agegrp", LogicalType::Int));
    data.cols.push(ColumnBuffer::Int(agegrp));
    data.schema = Schema::new(fields)?;
    Ok(data)
}

/// CREATE TABLE for the (wrangled) ACS table.
pub fn ddl(data: &AcsData) -> String {
    let cols: Vec<String> = data
        .schema
        .fields()
        .iter()
        .map(|f| {
            format!("{} {}{}", f.name, sql_type(f.ty), if f.nullable { "" } else { " NOT NULL" })
        })
        .collect();
    format!("CREATE TABLE acs ({})", cols.join(", "))
}

fn sql_type(ty: LogicalType) -> String {
    match ty {
        LogicalType::Int => "INTEGER".into(),
        LogicalType::Double => "DOUBLE".into(),
        LogicalType::Varchar => "VARCHAR(64)".into(),
        LogicalType::Bigint => "BIGINT".into(),
        LogicalType::Bool => "BOOLEAN".into(),
        LogicalType::Date => "DATE".into(),
        LogicalType::Decimal { width, scale } => format!("DECIMAL({width},{scale})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_the_paper() {
        let d = generate(500, 1);
        assert_eq!(d.schema.len(), 274);
        assert_eq!(d.cols.len(), 274);
        assert_eq!(d.rows, 500);
        // 80 replicate weights present.
        assert!(d.schema.index_of("pwgtp80").is_some());
        assert!(d.schema.index_of("pwgtp81").is_none());
    }

    #[test]
    fn deterministic() {
        let a = generate(100, 7);
        let b = generate(100, 7);
        assert_eq!(a.cols[1].get(50), b.cols[1].get(50));
        assert_eq!(a.cols[100].get(99), b.cols[100].get(99));
    }

    #[test]
    fn wrangle_appends_recode() {
        let d = wrangle(generate(100, 7)).unwrap();
        assert_eq!(d.schema.len(), 275);
        let age = d.cols[2].get(10);
        let grp = d.cols[274].get(10);
        if let (monetlite_types::Value::Int(a), monetlite_types::Value::Int(g)) = (age, grp) {
            assert_eq!(g, a / 5);
        } else {
            panic!("int columns expected");
        }
    }

    #[test]
    fn ddl_loads_into_monetlite() {
        let d = wrangle(generate(200, 3)).unwrap();
        let db = monetlite::Database::open_in_memory();
        let mut conn = db.connect();
        conn.execute(&ddl(&d)).unwrap();
        conn.append("acs", d.cols.clone()).unwrap();
        let r = conn.query("SELECT count(*), sum(pwgtp) FROM acs").unwrap();
        assert_eq!(r.value(0, 0), monetlite_types::Value::Bigint(200));
    }
}
