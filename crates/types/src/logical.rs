//! Logical (SQL-level) column types and coercion rules.

use crate::error::{MlError, Result};
use std::fmt;

/// SQL-visible column types supported by all engines in the workspace.
///
/// The set matches what the paper's benchmarks require: TPC-H uses INTEGER,
/// BIGINT (keys at larger scale factors), DECIMAL, DATE, VARCHAR/CHAR; the
/// ACS data additionally uses DOUBLE and BOOLEAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicalType {
    /// BOOLEAN, stored as i8 (NULL = i8::MIN).
    Bool,
    /// 32-bit INTEGER (NULL = -2^31).
    Int,
    /// 64-bit BIGINT (NULL = -2^63).
    Bigint,
    /// 64-bit IEEE DOUBLE (NULL = NaN).
    Double,
    /// Fixed-point DECIMAL(width, scale), stored as scaled i64.
    Decimal {
        /// Total number of digits (informational; storage is always i64).
        width: u8,
        /// Digits after the decimal point.
        scale: u8,
    },
    /// Variable-length string (CHAR/VARCHAR/TEXT/CLOB all map here).
    Varchar,
    /// Calendar date, stored as i32 days since 1970-01-01.
    Date,
}

impl LogicalType {
    /// True for types on which SUM/AVG and arithmetic are defined.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            LogicalType::Int
                | LogicalType::Bigint
                | LogicalType::Double
                | LogicalType::Decimal { .. }
        )
    }

    /// Width in bytes of the fixed physical representation (strings report
    /// the offset width; the heap is accounted separately).
    pub fn fixed_width(self) -> usize {
        match self {
            LogicalType::Bool => 1,
            LogicalType::Int | LogicalType::Date => 4,
            LogicalType::Bigint | LogicalType::Double | LogicalType::Decimal { .. } => 8,
            LogicalType::Varchar => 4, // offset into the string heap
        }
    }

    /// The common supertype two operands coerce to for comparison or
    /// arithmetic, or an error when none exists.
    ///
    /// Numeric tower: INT < BIGINT < DECIMAL < DOUBLE. DATE only unifies
    /// with DATE, VARCHAR with VARCHAR, BOOL with BOOL.
    pub fn common_super_type(a: LogicalType, b: LogicalType) -> Result<LogicalType> {
        use LogicalType::*;
        if a == b {
            return Ok(a);
        }
        let r = match (a, b) {
            (Int, Bigint) | (Bigint, Int) => Bigint,
            (Int, Double) | (Double, Int) | (Bigint, Double) | (Double, Bigint) => Double,
            (Decimal { .. }, Double) | (Double, Decimal { .. }) => Double,
            (Decimal { width, scale }, Int)
            | (Int, Decimal { width, scale })
            | (Decimal { width, scale }, Bigint)
            | (Bigint, Decimal { width, scale }) => Decimal { width, scale },
            (Decimal { width: w1, scale: s1 }, Decimal { width: w2, scale: s2 }) => {
                Decimal { width: w1.max(w2), scale: s1.max(s2) }
            }
            _ => return Err(MlError::TypeMismatch(format!("no common type for {a} and {b}"))),
        };
        Ok(r)
    }
}

impl fmt::Display for LogicalType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicalType::Bool => write!(f, "BOOLEAN"),
            LogicalType::Int => write!(f, "INTEGER"),
            LogicalType::Bigint => write!(f, "BIGINT"),
            LogicalType::Double => write!(f, "DOUBLE"),
            LogicalType::Decimal { width, scale } => write!(f, "DECIMAL({width},{scale})"),
            LogicalType::Varchar => write!(f, "VARCHAR"),
            LogicalType::Date => write!(f, "DATE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LogicalType::*;

    #[test]
    fn numeric_tower() {
        assert_eq!(LogicalType::common_super_type(Int, Bigint).unwrap(), Bigint);
        assert_eq!(LogicalType::common_super_type(Int, Double).unwrap(), Double);
        assert_eq!(
            LogicalType::common_super_type(Decimal { width: 15, scale: 2 }, Double).unwrap(),
            Double
        );
        assert_eq!(
            LogicalType::common_super_type(
                Decimal { width: 15, scale: 2 },
                Decimal { width: 12, scale: 4 }
            )
            .unwrap(),
            Decimal { width: 15, scale: 4 }
        );
        assert_eq!(
            LogicalType::common_super_type(Int, Decimal { width: 15, scale: 2 }).unwrap(),
            Decimal { width: 15, scale: 2 }
        );
    }

    #[test]
    fn incompatible_types_error() {
        assert!(LogicalType::common_super_type(Date, Int).is_err());
        assert!(LogicalType::common_super_type(Varchar, Double).is_err());
        assert!(LogicalType::common_super_type(Bool, Int).is_err());
    }

    #[test]
    fn widths() {
        assert_eq!(Int.fixed_width(), 4);
        assert_eq!(Date.fixed_width(), 4);
        assert_eq!(Bigint.fixed_width(), 8);
        assert_eq!(Decimal { width: 15, scale: 2 }.fixed_width(), 8);
        assert_eq!(Bool.fixed_width(), 1);
        assert_eq!(Varchar.fixed_width(), 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(Decimal { width: 15, scale: 2 }.to_string(), "DECIMAL(15,2)");
        assert_eq!(Varchar.to_string(), "VARCHAR");
    }
}
