//! Vectorised column operations — the building blocks the hand-written
//! library scripts compose (R's vectorised operators / NumPy ufuncs).
//! Everything computes in `f64` where numeric, exactly as R and pandas do.

use monetlite_types::nulls::{NULL_I32, NULL_I64};
use monetlite_types::{ColumnBuffer, Date, Result, Value};

/// Comparison operators for mask building.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

#[inline]
fn apply(op: MaskOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        MaskOp::Eq => ord == Equal,
        MaskOp::Ne => ord != Equal,
        MaskOp::Lt => ord == Less,
        MaskOp::Le => ord != Greater,
        MaskOp::Gt => ord == Greater,
        MaskOp::Ge => ord != Less,
    }
}

/// Column-vs-constant mask; NULL compares false (R's NA dropped by
/// filters).
pub fn mask_cmp(col: &ColumnBuffer, op: MaskOp, k: &Value) -> Vec<bool> {
    (0..col.len())
        .map(|i| {
            let v = col.get(i);
            if v.is_null() || k.is_null() {
                false
            } else {
                apply(op, v.cmp_sql(k))
            }
        })
        .collect()
}

/// Column-vs-column mask.
pub fn mask_cmp_cols(a: &ColumnBuffer, op: MaskOp, b: &ColumnBuffer) -> Vec<bool> {
    (0..a.len().min(b.len()))
        .map(|i| {
            let (x, y) = (a.get(i), b.get(i));
            if x.is_null() || y.is_null() {
                false
            } else {
                apply(op, x.cmp_sql(&y))
            }
        })
        .collect()
}

/// Elementwise AND.
pub fn mask_and(a: &[bool], b: &[bool]) -> Vec<bool> {
    a.iter().zip(b).map(|(&x, &y)| x && y).collect()
}

/// Elementwise OR.
pub fn mask_or(a: &[bool], b: &[bool]) -> Vec<bool> {
    a.iter().zip(b).map(|(&x, &y)| x || y).collect()
}

/// Elementwise NOT.
pub fn mask_not(a: &[bool]) -> Vec<bool> {
    a.iter().map(|&x| !x).collect()
}

/// Substring-containment mask (`%needle%` LIKE patterns; what `grepl`
/// compiles to for fixed patterns).
pub fn mask_contains(col: &ColumnBuffer, needle: &str) -> Vec<bool> {
    match col {
        ColumnBuffer::Varchar(v) => {
            v.iter().map(|s| s.as_deref().is_some_and(|s| s.contains(needle))).collect()
        }
        other => vec![false; other.len()],
    }
}

/// Suffix mask (`%BRASS` LIKE patterns).
pub fn mask_ends_with(col: &ColumnBuffer, suffix: &str) -> Vec<bool> {
    match col {
        ColumnBuffer::Varchar(v) => {
            v.iter().map(|s| s.as_deref().is_some_and(|s| s.ends_with(suffix))).collect()
        }
        other => vec![false; other.len()],
    }
}

/// Set-membership mask (`%in%`).
pub fn mask_in(col: &ColumnBuffer, set: &[&str]) -> Vec<bool> {
    match col {
        ColumnBuffer::Varchar(v) => {
            v.iter().map(|s| s.as_deref().is_some_and(|s| set.contains(&s))).collect()
        }
        other => vec![false; other.len()],
    }
}

/// Numeric view of a column as f64 (NaN = NULL) — the representation every
/// dataframe library computes in.
pub fn to_f64(col: &ColumnBuffer) -> Result<Vec<f64>> {
    Ok(match col {
        ColumnBuffer::Int(v) => {
            v.iter().map(|&x| if x == NULL_I32 { f64::NAN } else { x as f64 }).collect()
        }
        ColumnBuffer::Bigint(v) => {
            v.iter().map(|&x| if x == NULL_I64 { f64::NAN } else { x as f64 }).collect()
        }
        ColumnBuffer::Double(v) => v.clone(),
        ColumnBuffer::Decimal { data, scale } => {
            let f = monetlite_types::decimal::POW10[*scale as usize] as f64;
            data.iter().map(|&x| if x == NULL_I64 { f64::NAN } else { x as f64 / f }).collect()
        }
        ColumnBuffer::Date(v) => {
            v.iter().map(|&x| if x == NULL_I32 { f64::NAN } else { x as f64 }).collect()
        }
        other => {
            return Err(monetlite_types::MlError::TypeMismatch(format!(
                "no numeric view of {}",
                other.logical_type()
            )))
        }
    })
}

/// Elementwise binary op over f64 vectors.
pub fn zip_f64(a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> f64) -> ColumnBuffer {
    ColumnBuffer::Double(a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect())
}

/// Elementwise map over one f64 vector.
pub fn map_f64(a: &[f64], f: impl Fn(f64) -> f64) -> ColumnBuffer {
    ColumnBuffer::Double(a.iter().map(|&x| f(x)).collect())
}

/// Extract the year of a date column.
pub fn year(col: &ColumnBuffer) -> ColumnBuffer {
    match col {
        ColumnBuffer::Date(v) => ColumnBuffer::Int(
            v.iter().map(|&d| if d == NULL_I32 { NULL_I32 } else { Date(d).year() }).collect(),
        ),
        other => ColumnBuffer::Int(vec![NULL_I32; other.len()]),
    }
}

/// Build a date-range mask `lo <= d <= hi` (dates as `YYYY-MM-DD`).
pub fn mask_date_between(col: &ColumnBuffer, lo: &str, hi: &str) -> Result<Vec<bool>> {
    let lo = Date::parse(lo)?.0;
    let hi = Date::parse(hi)?.0;
    Ok(match col {
        ColumnBuffer::Date(v) => v.iter().map(|&d| d != NULL_I32 && d >= lo && d <= hi).collect(),
        other => vec![false; other.len()],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks() {
        let c = ColumnBuffer::Int(vec![1, 5, NULL_I32, 9]);
        assert_eq!(mask_cmp(&c, MaskOp::Gt, &Value::Int(4)), vec![false, true, false, true]);
        let d = ColumnBuffer::Int(vec![1, 6, 2, 9]);
        assert_eq!(mask_cmp_cols(&c, MaskOp::Eq, &d), vec![true, false, false, true]);
        assert_eq!(mask_and(&[true, false], &[true, true]), vec![true, false]);
        assert_eq!(mask_or(&[true, false], &[false, false]), vec![true, false]);
        assert_eq!(mask_not(&[true, false]), vec![false, true]);
    }

    #[test]
    fn string_masks() {
        let c = ColumnBuffer::Varchar(vec![Some("forest green".into()), Some("blue".into()), None]);
        assert_eq!(mask_contains(&c, "green"), vec![true, false, false]);
        assert_eq!(mask_in(&c, &["blue", "red"]), vec![false, true, false]);
    }

    #[test]
    fn numeric_views() {
        let c = ColumnBuffer::Decimal { data: vec![150, NULL_I64], scale: 2 };
        let v = to_f64(&c).unwrap();
        assert_eq!(v[0], 1.5);
        assert!(v[1].is_nan());
        let prod = zip_f64(&v, &[2.0, 2.0], |a, b| a * b);
        assert_eq!(prod.get(0), Value::Double(3.0));
        let neg = map_f64(&[1.0], |x| 1.0 - x);
        assert_eq!(neg.get(0), Value::Double(0.0));
    }

    #[test]
    fn date_helpers() {
        let d1 = Date::parse("1994-03-15").unwrap().0;
        let d2 = Date::parse("1995-06-01").unwrap().0;
        let c = ColumnBuffer::Date(vec![d1, d2, NULL_I32]);
        assert_eq!(year(&c).get(0), Value::Int(1994));
        let m = mask_date_between(&c, "1994-01-01", "1994-12-31").unwrap();
        assert_eq!(m, vec![true, false, false]);
    }
}
