//! Criterion bench for Figure 2: mitosis parallel execution of
//! SELECT MEDIAN(SQRT(i*2)) FROM tbl.

use criterion::{criterion_group, criterion_main, Criterion};
use monetlite::exec::ExecOptions;
use monetlite_types::ColumnBuffer;

fn bench_mitosis(c: &mut Criterion) {
    let n = 1_000_000;
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE tbl (i INTEGER NOT NULL)").unwrap();
    conn.append("tbl", vec![ColumnBuffer::Int((0..n).map(|x| x % 65_536).collect())])
        .unwrap();
    let sql = "SELECT median(sqrt(i * 2)) FROM tbl";
    let mut g = c.benchmark_group("fig2_mitosis");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        conn.set_exec_options(ExecOptions {
            threads,
            mitosis_min_rows: 16 * 1024,
            ..Default::default()
        });
        g.bench_function(format!("median_sqrt_{threads}threads"), |b| {
            b.iter(|| conn.query(sql).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mitosis);
criterion_main!(benches);
