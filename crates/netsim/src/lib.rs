//! # monetlite-netsim
//!
//! The client/server configuration of the paper's Figure 1(a): "run the
//! database system as a separate process (the 'database server') and
//! connect with it over a socket using a client interface".
//!
//! The server runs in its own thread behind a **real localhost TCP
//! socket** (the paper's setup also had client and server on one machine)
//! speaking a PostgreSQL-style row-wise text protocol. Costs reproduced:
//!
//! * result sets serialise **row-at-a-time to text** and are parsed back
//!   value-by-value on the client — the protocol overhead of
//!   Raasveldt & Mühleisen's "Don't Hold My Data Hostage" (paper ref
//!   \[15\]) that dominates Figure 6;
//! * bulk loading has **no specialised copy path**: `write_table` issues a
//!   stream of `INSERT INTO` statements — "the data is inserted into the
//!   database using a series of INSERT INTO statements, which introduces a
//!   large amount of overhead" (Figure 5);
//! * every query pays a socket round trip.
//!
//! Any engine can sit behind the server: `monetlite` (the "MonetDB
//! server" bar) or the row store in either profile (the "PostgreSQL" /
//! "MariaDB" bars).

#![forbid(unsafe_code)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::RemoteClient;
pub use server::{Server, ServerEngine};
