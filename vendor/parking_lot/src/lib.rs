//! Minimal local stand-in for `parking_lot` (no network in the build
//! environment): non-poisoning `Mutex` and `RwLock` wrappers over the std
//! primitives, with the `parking_lot` guard-returning API.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock()` returns the guard directly (never poisons).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking. A panic while holding the lock does not
    /// poison it (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with non-poisoning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
