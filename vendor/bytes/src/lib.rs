//! Minimal local stand-in for the `bytes` crate (no network in the build
//! environment). Provides just the `BytesMut` surface this workspace uses:
//! a growable byte buffer that derefs to `[u8]`.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// A growable, contiguous byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drop the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back() {
        let mut b = BytesMut::with_capacity(4);
        b.extend_from_slice(b"ab");
        b.extend_from_slice(b"c");
        assert_eq!(&b[..], b"abc");
        assert_eq!(b.len(), 3);
        b.clear();
        assert!(b.is_empty());
    }
}
