//! The streaming vectorized execution engine.
//!
//! Where [`crate::exec`] reproduces the paper's operator-at-a-time model —
//! every node materialises its full output before the parent runs — this
//! module executes plans as **pipelines over fixed-size vectors**
//! (~64K rows, [`ExecOptions::vector_size`]), the chunk-at-a-time design
//! of MonetDBLite's successor lineage (DuckDB; see PAPERS.md).
//!
//! A plan tree is broken at **pipeline breakers** — operators that must
//! see their whole input before producing output: hash-join *build*,
//! aggregation, sort/top-n, distinct, and limit's final assembly. The
//! non-breaking spine between breakers (scan → filter → project → probe)
//! becomes one [`Pipeline`]: its source rows are carved into **morsels**
//! of one vector each, and a shared atomic cursor hands morsels to worker
//! threads (morsel-driven parallelism). Each worker pushes its vector
//! through the operator chain and folds the result into a thread-local
//! partial sink state; partials merge once all morsels are drained.
//!
//! Compared to the materialized engine's mitosis (which parallelises only
//! a select/project/decomposable-global-aggregate prefix), morsel
//! parallelism here covers whole query shapes: parallel scans feed
//! per-thread **partial hash aggregation** with a mapped merge
//! ([`GroupTable`] + [`AggState::merge_mapped`]), parallel **hash-join
//! probes** over a build table constructed once, and order-preserving
//! parallel collection for sort/top-n/limit/distinct.
//!
//! Both engines produce identical results; `ExecOptions::mode` selects
//! between them and the parity suites assert agreement.

use crate::agg::{hash_group, hash_group_at, AggState, GroupTable};
use crate::bloom::Bloom;
use crate::exec::{
    bare_scan_hash_entry, exec_scan_streaming, exec_values, finish_join_output, project_cols,
    Chunk, ExecContext, ExecOptions,
};
use crate::expr::{AggSpec, BExpr};
use crate::join::{build_hash_map, probe_hash, probe_index};
use crate::kernels::{bool_to_sel, eval};
use crate::plan::{OutCol, PJoinKind, Plan};
use crate::rows::{any_null, col_cmp2, row_hash};
use crate::sort::{sort_perm, topn_perm};
use crate::spill::{PartitionWriter, SpillFile, SpillReader, MAX_SPILL_DEPTH};
use monetlite_storage::index::HashIndex;
use monetlite_storage::{Bat, StrDict, NULL_CODE};
use monetlite_types::nulls::NULL_I32;
use monetlite_types::{LogicalType, MlError, Result, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Pipeline decomposition
// ---------------------------------------------------------------------------

/// Where a pipeline's vectors come from.
enum Source<'p> {
    /// A base-table scan (filters applied per morsel; a single-morsel scan
    /// keeps the index-assisted, zero-copy whole-table path). `blooms`
    /// are join build-side filters pushed down by [`decompose`], keyed by
    /// scan-output column position; `extras` are synthetic full-length
    /// columns (dictionary code columns) appended after the projected
    /// ones.
    Table {
        table: &'p str,
        projected: &'p [usize],
        filters: &'p [BExpr],
        rows: usize,
        blooms: Vec<(usize, Arc<Bloom>)>,
        extras: Vec<Arc<Bat>>,
    },
    /// A materialised intermediate (a breaker's output), sliced into
    /// vectors.
    Mem(Chunk),
}

impl Source<'_> {
    fn rows(&self) -> usize {
        match self {
            Source::Table { rows, .. } => *rows,
            Source::Mem(c) => c.rows,
        }
    }

    fn fetch(&self, ctx: &ExecContext, lo: usize, hi: usize, whole: bool) -> Result<Chunk> {
        match self {
            Source::Table { table, projected, filters, blooms, extras, .. } => {
                // A morsel covering the whole table scans unranged, which
                // preserves imprint/order-index selection and zero-copy
                // column sharing. The streaming scan may return a chunk
                // carrying a candidate list over the base columns.
                let range = if whole { None } else { Some((lo as u32, hi as u32)) };
                exec_scan_streaming(table, projected, filters, ctx, range, blooms, extras)
            }
            Source::Mem(c) => Ok(c.slice(lo, hi)),
        }
    }
}

/// The build side of a streaming hash-join probe.
enum Build {
    /// Transient table built from the build pipeline's output.
    Transient(HashMap<u64, Vec<u32>>),
    /// The automatically maintained per-column hash index of a bare
    /// persistent build column (paper §3.1) — the build phase disappears.
    Index(Arc<HashIndex>),
}

/// A non-breaking operator applied to each vector in turn.
enum PipeOp<'p> {
    /// σ: evaluate the predicate, keep matching rows.
    Filter(&'p BExpr),
    /// π: compute output expressions (CSE + shared bare columns).
    Project(&'p [BExpr]),
    /// Hash-join probe against a completed build side.
    Probe {
        kind: PJoinKind,
        left_keys: &'p [BExpr],
        residual: Option<&'p BExpr>,
        /// The fully materialised build-side chunk.
        build_chunk: Chunk,
        /// Evaluated build-side key columns (aliases of `build_chunk`
        /// columns when the keys are bare references).
        build_keys: Vec<Arc<Bat>>,
        build: Build,
    },
}

/// A streaming pipeline: source rows flow through `ops` one vector at a
/// time into whatever sink the driving operator installs.
struct Pipeline<'p> {
    source: Source<'p>,
    ops: Vec<PipeOp<'p>>,
}

/// Break `plan`'s non-breaking spine into a pipeline. Breaker children
/// (join build sides, aggregate/sort/... inputs of nested breakers) are
/// executed to completion recursively.
fn decompose<'p>(plan: &'p Plan, ctx: &ExecContext) -> Result<Pipeline<'p>> {
    match plan {
        Plan::Scan { table, projected, filters, .. } => {
            let meta = ctx.tables.table_meta(table)?;
            Ok(Pipeline {
                source: Source::Table {
                    table,
                    projected,
                    filters,
                    rows: meta.data.rows,
                    blooms: Vec::new(),
                    extras: Vec::new(),
                },
                ops: Vec::new(),
            })
        }
        Plan::Filter { input, pred } => {
            let mut p = decompose(input, ctx)?;
            p.ops.push(PipeOp::Filter(pred));
            Ok(p)
        }
        Plan::Project { input, exprs, .. } => {
            let mut p = decompose(input, ctx)?;
            p.ops.push(PipeOp::Project(exprs));
            Ok(p)
        }
        Plan::Join { left, right, kind, left_keys, right_keys, residual, schema } => {
            if left_keys.is_empty() && matches!(kind, PJoinKind::Semi | PJoinKind::Anti) {
                return Err(MlError::Execution("semi/anti join requires keys".into()));
            }
            let mut p = decompose(left, ctx)?;
            // Pipeline breaker: the build side runs to completion first.
            let build_chunk = execute_streaming(right, ctx)?;
            ctx.check_deadline()?;
            // eval_shared: bare-column keys alias the build chunk's
            // columns instead of copying them.
            let build_keys: Vec<Arc<Bat>> = right_keys
                .iter()
                .map(|k| crate::kernels::eval_shared(k, &build_chunk.cols, build_chunk.rows))
                .collect::<Result<_>>()?;
            let index_entry = if right_keys.len() == 1 && ctx.opts.use_hash_index {
                bare_scan_hash_entry(right, right_keys, ctx)
            } else {
                None
            };
            // Sideways information passing: summarise the build side's key
            // hashes into a bloom filter and push it into the probe-side
            // scan, where it drops definite non-matches per morsel before
            // they enter the pipeline. Sound exactly when this probe kills
            // every row descended from a pruned scan row: Inner/Semi
            // probes emit only matching rows, the key is a bare scan
            // column (same hash at scan and probe), and no Project sits
            // between the scan and the probe to remap column positions
            // (Filters and earlier probes keep scan columns as a prefix).
            // Index builds skip it — their build phase has no transient
            // table, and the probe is already O(1) per row.
            if ctx.opts.use_dict
                && matches!(kind, PJoinKind::Inner | PJoinKind::Semi)
                && index_entry.is_none()
                && !p.ops.iter().any(|op| matches!(op, PipeOp::Project(_)))
            {
                if let [BExpr::ColRef { idx, .. }] = left_keys.as_slice() {
                    if let Source::Table { projected, blooms, .. } = &mut p.source {
                        if *idx < projected.len() {
                            let mut bl = Bloom::with_capacity(build_chunk.rows);
                            let rrefs: Vec<&Bat> = build_keys.iter().map(|a| &**a).collect();
                            for r in 0..build_chunk.rows {
                                if !any_null(&rrefs, r) {
                                    bl.insert(row_hash(&rrefs, r));
                                }
                            }
                            blooms.push((*idx, Arc::new(bl)));
                        }
                    }
                }
            }
            // Out-of-core path: a *transient* build side larger than the
            // memory budget is hash-partitioned to disk together with the
            // probe stream (grace join) and joined partition-by-partition.
            // Index builds are exempt — the probed column is persistent
            // data already under vmem control, not operator state.
            if index_entry.is_none() && !left_keys.is_empty() && !matches!(kind, PJoinKind::Cross) {
                if let Some(budget) = ctx.spill_budget() {
                    if build_chunk.mem_bytes() > budget {
                        let joined = grace_hash_join(
                            &p,
                            ctx,
                            *kind,
                            left_keys,
                            residual.as_ref(),
                            build_chunk,
                            build_keys,
                            schema,
                        )?;
                        return Ok(Pipeline { source: Source::Mem(joined), ops: Vec::new() });
                    }
                }
            }
            let build = match index_entry {
                Some(entry) => {
                    ctx.counters.bump(&ctx.counters.hash_index_joins);
                    Build::Index(entry.hash_index()?)
                }
                None => Build::Transient(build_hash_map(
                    &build_keys.iter().map(|a| &**a).collect::<Vec<_>>(),
                )),
            };
            p.ops.push(PipeOp::Probe {
                kind: *kind,
                left_keys,
                residual: residual.as_ref(),
                build_chunk,
                build_keys,
                build,
            });
            Ok(p)
        }
        // Any other node is a breaker: run it, stream its output.
        other => {
            debug_assert!(
                other.is_pipeline_breaker() || matches!(other, Plan::Values { .. }),
                "non-breaker {other:?} fell out of the pipeline spine"
            );
            let chunk = execute_streaming(other, ctx)?;
            Ok(Pipeline { source: Source::Mem(chunk), ops: Vec::new() })
        }
    }
}

// ---------------------------------------------------------------------------
// Morsel driver
// ---------------------------------------------------------------------------

/// Drive a pipeline morsel-by-morsel. Each worker owns a partial sink
/// state created by `new_partial`; `consume(partial, morsel_id, vector)`
/// folds one processed vector in and may return `Ok(false)` to stop all
/// workers (limit early-exit). Returns every worker's partial.
fn drive<'p, P, NF, CF>(
    pipe: &Pipeline<'p>,
    ctx: &ExecContext,
    new_partial: NF,
    consume: CF,
) -> Result<Vec<P>>
where
    P: Send,
    NF: Fn() -> P + Sync,
    CF: Fn(&mut P, usize, Chunk) -> Result<bool> + Sync,
{
    let rows = pipe.source.rows();
    let vs = ctx.opts.vector_size.max(1);
    let n_morsels = rows.div_ceil(vs);
    ctx.counters.bump(&ctx.counters.pipelines);
    if n_morsels == 0 {
        return Ok(Vec::new());
    }
    let threads = ctx.opts.threads.max(1).min(n_morsels);
    let cursor = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);

    let worker = |part: &mut P| -> Result<()> {
        loop {
            let m = cursor.fetch_add(1, Ordering::Relaxed);
            if m >= n_morsels || stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            // Counts morsels actually dispatched — early exit (limit)
            // leaves the tail unscanned and uncounted.
            ctx.counters.bump(&ctx.counters.morsels);
            ctx.check_deadline()?;
            let (lo, hi) = (m * vs, ((m + 1) * vs).min(rows));
            let chunk = pipe.source.fetch(ctx, lo, hi, n_morsels == 1)?;
            ctx.counters.bump(&ctx.counters.vectors);
            let chunk = apply_ops(chunk, &pipe.ops, ctx)?;
            if !consume(part, m, chunk)? {
                stop.store(true, Ordering::Relaxed);
                return Ok(());
            }
        }
    };

    if threads == 1 {
        // Sequential fast path: no thread spawn, deterministic morsel
        // order (streaming single-threaded results match the materialized
        // engine row-for-row).
        let mut part = new_partial();
        worker(&mut part)?;
        return Ok(vec![part]);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| -> Result<P> {
                    let mut part = new_partial();
                    match worker(&mut part) {
                        Ok(()) => Ok(part),
                        Err(e) => {
                            // Wake the other workers up so the error
                            // surfaces promptly.
                            stop.store(true, Ordering::Relaxed);
                            Err(e)
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|p| {
                    // A crashed worker degrades to a query error instead
                    // of unwinding into (and killing) the host process;
                    // the connection stays usable afterwards.
                    stop.store(true, Ordering::Relaxed);
                    Err(crate::exec::worker_panic_error(&*p))
                })
            })
            .collect()
    })
}

/// Push one vector through the operator chain.
fn apply_ops(mut chunk: Chunk, ops: &[PipeOp], ctx: &ExecContext) -> Result<Chunk> {
    for op in ops {
        // Per-operator (not just per-morsel) checkpoint: a timeout or a
        // cross-thread interrupt fires mid-morsel even when a single
        // vector's operator chain is expensive (wide probes, regex-heavy
        // projections).
        ctx.check_deadline()?;
        match op {
            PipeOp::Filter(pred) => {
                if ctx.opts.use_candidates {
                    chunk = filter_chunk(chunk, pred)?;
                } else {
                    let mask = eval(pred, &chunk.cols, chunk.rows)?;
                    let sel = bool_to_sel(&mask)?;
                    chunk = chunk.take(&sel);
                }
            }
            PipeOp::Project(exprs) => {
                // Projection consumes any candidate list: each output
                // expression evaluates at only the selected positions
                // (bare columns gather once), yielding a dense chunk.
                chunk = match chunk.sel {
                    None => Chunk::dense(project_cols(exprs, &chunk)?, chunk.rows),
                    Some(_) => {
                        let cols: Vec<Arc<Bat>> = exprs
                            .iter()
                            .map(|e| chunk.eval(e).map(Arc::new))
                            .collect::<Result<_>>()?;
                        Chunk::dense(cols, chunk.rows)
                    }
                };
            }
            PipeOp::Probe { kind, left_keys, residual, build_chunk, build_keys, build } => {
                // Pair-wise residual semantics (semi/anti/left) and the
                // scalar (key-less left) join reason over probe-row
                // groups, so they need materialised (logical == physical)
                // probe rows; the common inner/cross shapes keep the
                // candidate fast path.
                let pairwise = (residual.is_some()
                    && matches!(kind, PJoinKind::Semi | PJoinKind::Anti | PJoinKind::Left))
                    || (*kind == PJoinKind::Left && left_keys.is_empty());
                if pairwise {
                    chunk = chunk.materialize();
                }
                let base_sel = chunk.sel.clone();
                let probe_kind = crate::exec::pair_probe_kind(*kind, *residual);
                let mut sel = if *kind == PJoinKind::Cross || left_keys.is_empty() {
                    if *kind == PJoinKind::Left && residual.is_none() {
                        crate::join::scalar_left_pairs(chunk.rows, build_chunk.rows)?
                    } else {
                        crate::join::cross_join(chunk.rows, build_chunk.rows)
                    }
                } else {
                    // eval_shared: bare-column probe keys alias the
                    // vector's columns (no per-vector key copy); under a
                    // candidate list they compact to the selected rows.
                    let lkey_bats: Vec<Arc<Bat>> = match &base_sel {
                        None => left_keys
                            .iter()
                            .map(|k| crate::kernels::eval_shared(k, &chunk.cols, chunk.rows))
                            .collect::<Result<_>>()?,
                        Some(_) => left_keys
                            .iter()
                            .map(|k| chunk.eval(k).map(Arc::new))
                            .collect::<Result<_>>()?,
                    };
                    let lrefs: Vec<&Bat> = lkey_bats.iter().map(|a| &**a).collect();
                    let rrefs: Vec<&Bat> = build_keys.iter().map(|a| &**a).collect();
                    match build {
                        Build::Transient(map) => probe_hash(&lrefs, &rrefs, map, probe_kind),
                        Build::Index(idx) => probe_index(&lrefs, &rrefs, idx, probe_kind),
                    }
                };
                // The probe emitted logical positions; rewrite them to
                // physical row ids so the output gather is the single
                // materialisation of the candidate chain.
                if let Some(s) = &base_sel {
                    sel.compose_lsel(s);
                }
                let probe_rows = chunk.rows;
                chunk = finish_join_output(
                    &chunk.cols,
                    &build_chunk.cols,
                    sel,
                    *kind,
                    *residual,
                    probe_rows,
                )?;
            }
        }
    }
    if chunk.sel.is_some() {
        ctx.counters.bump(&ctx.counters.sel_vectors);
    }
    Ok(chunk)
}

/// σ with candidate lists: refine the chunk's selection instead of
/// gathering. A chunk already carrying a selection always evaluates the
/// predicate sel-aware — only surviving positions are touched, so a
/// row-level evaluation error (e.g. division by zero) can never surface
/// from a row an earlier filter removed, exactly matching the
/// gather-based baseline. A near-full result (the ~90% density cutoff)
/// materialises eagerly, as the baseline would, so unselective filters
/// don't trade contiguous access for indexed access downstream.
fn filter_chunk(chunk: Chunk, pred: &BExpr) -> Result<Chunk> {
    let new_sel: Vec<u32> = match &chunk.sel {
        None => {
            let mask = eval(pred, &chunk.cols, chunk.rows)?;
            bool_to_sel(&mask)?
        }
        Some(cur) => {
            let mask = chunk.eval(pred)?;
            let hits = bool_to_sel(&mask)?;
            hits.into_iter().map(|i| cur[i as usize]).collect()
        }
    };
    let rows = new_sel.len();
    let narrowed = Chunk { cols: chunk.cols, rows, sel: Some(Arc::new(new_sel)) };
    // Scan-origin selections sit on table-wide base columns, so their
    // density against phys_rows is always far below the cutoff and they
    // keep riding; a dense morsel whose filter kept nearly everything
    // gathers here instead.
    if rows * 10 >= narrowed.phys_rows() * crate::exec::SEL_DENSITY_CUTOFF_TENTHS {
        return Ok(narrowed.materialize());
    }
    Ok(narrowed)
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Order-preserving collection: per-morsel chunks packed in morsel order.
fn collect_ordered(parts: Vec<Vec<(usize, Chunk)>>, schema: &[OutCol]) -> Result<Chunk> {
    let mut all: Vec<(usize, Chunk)> = parts.into_iter().flatten().collect();
    if all.is_empty() {
        return Ok(Chunk::empty(schema));
    }
    all.sort_by_key(|(m, _)| *m);
    Chunk::pack(all.into_iter().map(|(_, c)| c).collect())
}

/// Run a non-breaking plan spine to a fully collected chunk.
fn collect(plan: &Plan, ctx: &ExecContext) -> Result<Chunk> {
    let pipe = decompose(plan, ctx)?;
    // Pass-through pipelines (no operators, nothing to filter) need no
    // morselization: hand the source back whole. For a filterless table
    // scan this preserves the zero-copy Arc-shared column path; packing
    // per-morsel slices would copy every column twice.
    if pipe.ops.is_empty() {
        let passthrough = match &pipe.source {
            Source::Mem(_) => true,
            Source::Table { filters, .. } => filters.is_empty(),
        };
        if passthrough {
            ctx.counters.bump(&ctx.counters.pipelines);
            ctx.counters.bump(&ctx.counters.morsels);
            ctx.counters.bump(&ctx.counters.vectors);
            let rows = pipe.source.rows();
            return match pipe.source {
                Source::Mem(c) => Ok(c),
                table => table.fetch(ctx, 0, rows, true),
            };
        }
    }
    let parts = drive(&pipe, ctx, Vec::new, |p: &mut Vec<(usize, Chunk)>, m, c| {
        if c.rows > 0 {
            // The pipeline sink: a candidate chunk materialises here,
            // exactly once.
            p.push((m, c.materialize()));
        }
        Ok(true)
    })?;
    collect_ordered(parts, plan.schema())
}

/// Per-thread partial state of morsel-parallel (grouped) aggregation.
struct AggPartial {
    /// Group interning table (None for the global single group).
    table: Option<GroupTable>,
    states: Vec<AggState>,
}

fn new_agg_partial(groups: &[BExpr], aggs: &[AggSpec]) -> Result<AggPartial> {
    let table = if groups.is_empty() {
        None
    } else {
        Some(GroupTable::new(&groups.iter().map(|g| g.ty()).collect::<Vec<_>>()))
    };
    let n0 = if groups.is_empty() { 1 } else { 0 };
    let states = aggs
        .iter()
        .map(|s| AggState::new(s.func, s.arg.as_ref().map(|a| a.ty()), s.distinct, n0))
        .collect::<Result<_>>()?;
    Ok(AggPartial { table, states })
}

fn agg_consume(
    part: &mut AggPartial,
    chunk: &Chunk,
    groups: &[BExpr],
    aggs: &[AggSpec],
) -> Result<()> {
    if chunk.rows == 0 {
        return Ok(());
    }
    // Candidate-list ingest: group keys and aggregate arguments compact
    // through the chunk's selection ([`Chunk::eval`]) — the filtered-out
    // rows of a candidate chunk are never touched, and nothing is
    // materialised.
    let gids: Vec<u32> = match &mut part.table {
        None => vec![0; chunk.rows],
        Some(table) => {
            let key_bats: Vec<Bat> = groups.iter().map(|g| chunk.eval(g)).collect::<Result<_>>()?;
            let refs: Vec<&Bat> = key_bats.iter().collect();
            let gids = table.intern_block(&refs, chunk.rows)?;
            let n = table.n_groups();
            for st in &mut part.states {
                st.ensure_groups(n);
            }
            gids
        }
    };
    for (st, spec) in part.states.iter_mut().zip(aggs) {
        let arg = spec.arg.as_ref().map(|a| chunk.eval(a)).transpose()?;
        st.update(arg.as_ref(), &gids)?;
    }
    Ok(())
}

/// Merge `other` into `acc`, remapping other's dense group ids into acc's.
fn agg_merge(mut acc: AggPartial, other: AggPartial) -> Result<AggPartial> {
    match (&mut acc.table, other.table) {
        (None, None) => {
            for (a, b) in acc.states.iter_mut().zip(other.states) {
                a.merge(b)?;
            }
        }
        (Some(at), Some(bt)) => {
            let refs: Vec<&Bat> = bt.keys().iter().collect();
            let map = at.intern_block(&refs, bt.n_groups())?;
            let n = at.n_groups();
            for a in acc.states.iter_mut() {
                a.ensure_groups(n);
            }
            for (a, b) in acc.states.iter_mut().zip(other.states) {
                a.merge_mapped(b, &map)?;
            }
        }
        _ => return Err(MlError::Execution("mismatched aggregation partials".into())),
    }
    Ok(acc)
}

/// Approximate resident bytes of one partial (group table + states).
fn agg_partial_bytes(p: &AggPartial) -> usize {
    p.table.as_ref().map_or(0, |t| t.mem_bytes())
        + p.states.iter().map(|s| s.mem_bytes()).sum::<usize>()
}

/// Per-thread aggregation state: the in-memory partial plus an optional
/// spill partitioner. Once the partial outgrows its budget share it is
/// frozen (it stays within budget by construction) and every later
/// vector is hash-partitioned to disk by its group keys instead.
struct AggWorker {
    part: AggPartial,
    spill: Option<PartitionWriter>,
}

fn agg_worker_consume(
    w: &mut AggWorker,
    c: &Chunk,
    groups: &[BExpr],
    aggs: &[AggSpec],
    ctx: &ExecContext,
    share: Option<usize>,
) -> Result<()> {
    if c.rows == 0 {
        return Ok(());
    }
    if let Some(sp) = &mut w.spill {
        // Spill routing writes whole rows to disk: materialise a
        // candidate chunk first (cheap Arc clones when already dense).
        let dense = c.clone().materialize();
        let key_bats: Vec<Bat> =
            groups.iter().map(|g| eval(g, &dense.cols, dense.rows)).collect::<Result<_>>()?;
        let refs: Vec<&Bat> = key_bats.iter().collect();
        return sp.route(&ctx.spill, &dense, &refs);
    }
    agg_consume(&mut w.part, c, groups, aggs)?;
    if let Some(share) = share {
        // Global (ungrouped) aggregates hold O(1) state — never spill.
        if w.part.table.is_some() && agg_partial_bytes(&w.part) > share {
            w.spill = Some(PartitionWriter::new(0));
        }
    }
    Ok(())
}

/// Aggregate one spilled partition file. If its state outgrows the
/// budget and the recursion cap allows, the remaining frames are
/// re-partitioned with a re-seeded hash and the sub-partitions merged in.
fn aggregate_spill_file(
    file: SpillFile,
    groups: &[BExpr],
    aggs: &[AggSpec],
    ctx: &ExecContext,
    budget: usize,
    depth: u32,
) -> Result<AggPartial> {
    let mut part = new_agg_partial(groups, aggs)?;
    let mut respill: Option<PartitionWriter> = None;
    let mut reader = file.into_reader()?;
    let vs = ctx.opts.vector_size.max(1);
    while let Some(c) = reader.next()? {
        ctx.check_deadline()?;
        // Spill frames are flushed in coarse blocks; re-slice to vectors
        // so the budget check interleaves with consumption (otherwise one
        // oversized frame would be swallowed whole before re-spilling).
        let mut start = 0;
        while start < c.rows {
            let end = (start + vs).min(c.rows);
            let s = c.slice(start, end);
            start = end;
            match &mut respill {
                Some(sp) => {
                    let key_bats: Vec<Bat> =
                        groups.iter().map(|g| eval(g, &s.cols, s.rows)).collect::<Result<_>>()?;
                    let refs: Vec<&Bat> = key_bats.iter().collect();
                    sp.route(&ctx.spill, &s, &refs)?;
                }
                None => {
                    agg_consume(&mut part, &s, groups, aggs)?;
                    if depth < MAX_SPILL_DEPTH && agg_partial_bytes(&part) > budget {
                        respill = Some(PartitionWriter::new(depth));
                    }
                }
            }
        }
    }
    drop(reader);
    if let Some(sp) = respill {
        let (files, bytes) = sp.finish(&ctx.spill)?;
        ctx.counters.add(&ctx.counters.spill_bytes, bytes);
        for f in files.into_iter().flatten() {
            ctx.counters.bump(&ctx.counters.spilled_partitions);
            let sub = aggregate_spill_file(f, groups, aggs, ctx, budget, depth + 1)?;
            part = agg_merge(part, sub)?;
        }
    }
    Ok(part)
}

fn run_aggregate(
    input: &Plan,
    groups: &[BExpr],
    aggs: &[AggSpec],
    schema: &[OutCol],
    ctx: &ExecContext,
) -> Result<Chunk> {
    let mut pipe = decompose(input, ctx)?;
    // Group-by over dictionary codes: a bare VARCHAR group key over a
    // table source (Filter-only spine — Projects/Probes would remap
    // column positions) is rewritten to a synthetic Int code column the
    // scan appends, so interning hashes and compares dense integers
    // instead of strings. Codes rehydrate to strings at the sink below;
    // spilled partials carry them as plain Int columns.
    let mut groups_vec: Vec<BExpr> = groups.to_vec();
    let mut rehydrate: Vec<(usize, Arc<StrDict>)> = Vec::new();
    if ctx.opts.use_dict && pipe.ops.iter().all(|op| matches!(op, PipeOp::Filter(_))) {
        if let Source::Table { table, projected, extras, .. } = &mut pipe.source {
            if let Ok(meta) = ctx.tables.table_meta(table) {
                for (g, key) in groups_vec.iter_mut().enumerate() {
                    let idx = match key {
                        BExpr::ColRef { idx, ty: LogicalType::Varchar } => *idx,
                        _ => continue,
                    };
                    let Some(&base) = projected.get(idx) else { continue };
                    let Ok(entry) = meta.data.cols[base].entry() else { continue };
                    if entry.is_empty() {
                        continue;
                    }
                    let Ok(d) = entry.dict() else { continue };
                    // Codes must fit the Int domain (NULL_I32 excluded).
                    if d.len() >= i32::MAX as usize {
                        continue;
                    }
                    let codes: Vec<i32> = d
                        .codes()
                        .iter()
                        .map(|&c| if c == NULL_CODE { NULL_I32 } else { c as i32 })
                        .collect();
                    let pos = projected.len() + extras.len();
                    extras.push(Arc::new(Bat::Int(codes)));
                    *key = BExpr::ColRef { idx: pos, ty: LogicalType::Int };
                    rehydrate.push((g, d));
                    ctx.counters.bump(&ctx.counters.dict_hits);
                }
            }
        }
    }
    let groups = groups_vec.as_slice();
    let budget = ctx.spill_budget();
    let share = budget.map(|b| (b / ctx.opts.threads.max(1)).max(1));
    // Each worker's closure may fail on first use; surface errors from
    // partial construction through a per-worker Result partial.
    let parts: Vec<Result<AggWorker>> = drive(
        &pipe,
        ctx,
        || new_agg_partial(groups, aggs).map(|part| AggWorker { part, spill: None }),
        |p: &mut Result<AggWorker>, _m, c| {
            if let Ok(w) = p.as_mut() {
                if let Err(e) = agg_worker_consume(w, &c, groups, aggs, ctx, share) {
                    *p = Err(e);
                    return Ok(false);
                }
            }
            Ok(true)
        },
    )?;
    let mut merged: Option<AggPartial> = None;
    let mut spill_files: Vec<SpillFile> = Vec::new();
    for p in parts {
        let w = p?;
        merged = Some(match merged {
            None => w.part,
            Some(acc) => agg_merge(acc, w.part)?,
        });
        if let Some(sp) = w.spill {
            let (files, bytes) = sp.finish(&ctx.spill)?;
            ctx.counters.add(&ctx.counters.spill_bytes, bytes);
            for f in files.into_iter().flatten() {
                ctx.counters.bump(&ctx.counters.spilled_partitions);
                spill_files.push(f);
            }
        }
    }
    // Drain spilled partitions one at a time; each partition's groups are
    // disjoint from no one — agg_merge remaps overlapping groups, so the
    // in-memory partials and every partition merge exactly once.
    for f in spill_files {
        let sub = aggregate_spill_file(f, groups, aggs, ctx, budget.unwrap_or(usize::MAX), 1)?;
        merged = Some(match merged {
            None => sub,
            Some(acc) => agg_merge(acc, sub)?,
        });
    }
    // Zero-morsel (empty source) aggregation still produces output: one
    // row globally, zero rows grouped.
    let merged = match merged {
        Some(m) => m,
        None => new_agg_partial(groups, aggs)?,
    };
    let (mut cols, rows): (Vec<Arc<Bat>>, usize) = match merged.table {
        None => (Vec::with_capacity(aggs.len()), 1),
        Some(table) => {
            let n = table.n_groups();
            let mut keys: Vec<Arc<Bat>> = table.into_keys().into_iter().map(Arc::new).collect();
            // Dictionary-coded group keys rehydrate to strings here, at
            // the sink — one decode per output *group*, not per input row.
            for (g, d) in &rehydrate {
                keys[*g] = Arc::new(decode_codes(&keys[*g], d)?);
            }
            (keys, n)
        }
    };
    for (i, st) in merged.states.into_iter().enumerate() {
        let mut st = st;
        st.ensure_groups(rows.max(if groups.is_empty() { 1 } else { 0 }));
        cols.push(Arc::new(st.finish(schema[groups.len() + i].ty)?));
    }
    Ok(Chunk::dense(cols, rows))
}

/// Rehydrate a dictionary-coded Int key column back to its VARCHAR
/// strings (codes never leave the engine).
fn decode_codes(codes: &Bat, d: &StrDict) -> Result<Bat> {
    let Bat::Int(v) = codes else {
        return Err(MlError::Execution("dictionary-coded group key is not Int".into()));
    };
    let mut out = Bat::new(LogicalType::Varchar);
    for &c in v {
        if c == NULL_I32 {
            out.push(&Value::Null)?;
        } else {
            out.push(&Value::Str(d.value(c as u32).to_string()))?;
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Execute a plan with the streaming engine. Pipeline breakers run their
/// input pipelines to completion (morsel-parallel), then produce the
/// chunk the enclosing pipeline streams from.
pub fn execute_streaming(plan: &Plan, ctx: &ExecContext) -> Result<Chunk> {
    ctx.check_deadline()?;
    match plan {
        Plan::Aggregate { input, groups, aggs, schema } => {
            run_aggregate(input, groups, aggs, schema, ctx)
        }
        Plan::Sort { input, keys } => {
            // Under a memory budget the blocking sort runs as an external
            // merge sort (sorted runs spilled per morsel batch, k-way
            // merge on collect); byte-identical to the in-memory path.
            if let Some(budget) = ctx.spill_budget() {
                return external_sort(input, keys, ctx, budget);
            }
            let chunk = collect(input, ctx)?;
            ctx.check_deadline()?;
            let key_refs: Vec<(&Bat, bool)> =
                keys.iter().map(|&(c, d)| (&*chunk.cols[c], d)).collect();
            let perm = sort_perm(&key_refs, chunk.rows);
            Ok(chunk.take(&perm))
        }
        Plan::TopN { input, keys, n } => {
            let n = *n as usize;
            let pipe = decompose(input, ctx)?;
            // Per-morsel compaction: a row outside its own morsel's top-n
            // can never be in the global top-n (topn_perm is a total
            // order), so workers keep at most n rows per vector.
            let parts = drive(&pipe, ctx, Vec::new, |p: &mut Vec<(usize, Chunk)>, m, c| {
                if c.rows == 0 {
                    return Ok(true);
                }
                let c = c.materialize(); // top-n ingest is this pipeline's sink
                let compact = if c.rows > n {
                    let key_refs: Vec<(&Bat, bool)> =
                        keys.iter().map(|&(ci, d)| (&*c.cols[ci], d)).collect();
                    let perm = topn_perm(&key_refs, c.rows, n);
                    c.take(&perm)
                } else {
                    c
                };
                p.push((m, compact));
                Ok(true)
            })?;
            let packed = collect_ordered(parts, input.schema())?;
            ctx.check_deadline()?;
            let key_refs: Vec<(&Bat, bool)> =
                keys.iter().map(|&(c, d)| (&*packed.cols[c], d)).collect();
            let perm = topn_perm(&key_refs, packed.rows, n);
            Ok(packed.take(&perm))
        }
        Plan::Limit { input, n } => {
            let n = *n as usize;
            let pipe = decompose(input, ctx)?;
            // Early exit: once the completed morsels form a contiguous
            // prefix with >= n rows, no later morsel can contribute to
            // the first n rows in scan order — stop the scan.
            let done: Mutex<HashMap<usize, usize>> = Mutex::new(HashMap::new());
            let parts = drive(&pipe, ctx, Vec::new, |p: &mut Vec<(usize, Chunk)>, m, c| {
                let rows = c.rows;
                p.push((m, c.materialize()));
                let mut map = done
                    .lock()
                    .map_err(|_| MlError::Execution("limit tracker lock poisoned".into()))?;
                map.insert(m, rows);
                let mut prefix = 0usize;
                let mut k = 0usize;
                while let Some(r) = map.get(&k) {
                    prefix += r;
                    if prefix >= n {
                        return Ok(false);
                    }
                    k += 1;
                }
                Ok(true)
            })?;
            let mut all: Vec<(usize, Chunk)> = parts.into_iter().flatten().collect();
            all.sort_by_key(|(m, _)| *m);
            let mut out: Vec<Chunk> = Vec::new();
            let mut taken = 0usize;
            for (_, c) in all {
                if taken >= n {
                    break;
                }
                let want = (n - taken).min(c.rows);
                taken += want;
                out.push(if want == c.rows { c } else { c.slice(0, want) });
            }
            if out.is_empty() {
                return Ok(Chunk::empty(input.schema()));
            }
            Chunk::pack(out)
        }
        Plan::Distinct { input } => {
            let pipe = decompose(input, ctx)?;
            // Per-morsel local dedup (first occurrence wins within a
            // vector), then a global dedup over the packed survivors —
            // first-occurrence order in morsel order, matching the
            // materialized engine exactly.
            let parts = drive(&pipe, ctx, Vec::new, |p: &mut Vec<(usize, Chunk)>, m, c| {
                if c.rows == 0 {
                    return Ok(true);
                }
                // Candidate chunks dedup in place over the selected
                // positions; only the surviving representatives gather.
                let refs: Vec<&Bat> = c.cols.iter().map(|b| &**b).collect();
                let grouping = match &c.sel {
                    None => hash_group(&refs),
                    Some(s) => hash_group_at(&refs, s),
                };
                let deduped = c.take(&grouping.repr_rows);
                p.push((m, deduped));
                Ok(true)
            })?;
            let packed = collect_ordered(parts, input.schema())?;
            let refs: Vec<&Bat> = packed.cols.iter().map(|b| &**b).collect();
            let grouping = hash_group(&refs);
            Ok(packed.take(&grouping.repr_rows))
        }
        Plan::Values { rows, schema } => exec_values(rows, schema),
        // Pure pipeline shapes (scan/filter/project/join-probe spines).
        _ => collect(plan, ctx),
    }
}

// ---------------------------------------------------------------------------
// Out-of-core operators (grace hash join, external merge sort)
// ---------------------------------------------------------------------------

/// Record freshly finished spill partitions in the counters.
fn note_spill(ctx: &ExecContext, parts: &[Option<SpillFile>], bytes: u64) {
    let n = parts.iter().flatten().count() as u64;
    ctx.counters.add(&ctx.counters.spilled_partitions, n);
    ctx.counters.add(&ctx.counters.spill_bytes, bytes);
}

/// Grace hash join: the oversized build chunk and the streamed probe side
/// are both hash-partitioned to temp files by key hash (the build's
/// evaluated key columns travel as a trailing column group, so nothing is
/// re-evaluated on load); partition pairs then join one at a time, with a
/// re-seeded re-partition when a build partition still exceeds the
/// budget. Output row order is partition-major — a correct (unordered)
/// join result; order-sensitive parents (sort/top-n) re-establish order.
#[allow(clippy::too_many_arguments)]
fn grace_hash_join(
    probe_pipe: &Pipeline,
    ctx: &ExecContext,
    kind: PJoinKind,
    left_keys: &[BExpr],
    residual: Option<&BExpr>,
    build_chunk: Chunk,
    build_keys: Vec<Arc<Bat>>,
    schema: &[OutCol],
) -> Result<Chunk> {
    let budget = ctx.spill_budget().unwrap_or(usize::MAX);
    let vs = ctx.opts.vector_size.max(1);
    let nkeys = build_keys.len();
    // Build columns + evaluated key columns as one aligned chunk.
    let combined = Chunk::dense(
        build_chunk.cols.iter().cloned().chain(build_keys).collect(),
        build_chunk.rows,
    );
    // Typed zero-row template (cols + keys): NULL padding and empty maps
    // for partitions whose build side received no rows.
    let build_template = combined.slice(0, 0);
    // 1. Partition the build side, one vector-sized slice at a time so
    // the gather buffers stay bounded.
    let mut bw = PartitionWriter::new(0);
    let mut start = 0;
    while start < combined.rows {
        ctx.check_deadline()?;
        let end = (start + vs).min(combined.rows);
        let s = combined.slice(start, end);
        let keyrefs: Vec<&Bat> = s.cols[s.cols.len() - nkeys..].iter().map(|a| &**a).collect();
        bw.route(&ctx.spill, &s, &keyrefs)?;
        start = end;
    }
    drop(combined);
    let (bparts, bbytes) = bw.finish(&ctx.spill)?;
    note_spill(ctx, &bparts, bbytes);
    // 2. Partition the probe stream (morsel-parallel; the partitioner is
    // shared behind a lock — the gather work dominates the lock hold).
    let pw = Mutex::new(PartitionWriter::new(0));
    drive(
        probe_pipe,
        ctx,
        || (),
        |_, _m, c| {
            if c.rows == 0 {
                return Ok(true);
            }
            let c = c.materialize(); // partition frames hold whole rows
            let key_bats: Vec<Arc<Bat>> = left_keys
                .iter()
                .map(|k| crate::kernels::eval_shared(k, &c.cols, c.rows))
                .collect::<Result<_>>()?;
            let rows = c.rows;
            let combined = Chunk::dense(c.cols.iter().cloned().chain(key_bats).collect(), rows);
            let keyrefs: Vec<&Bat> =
                combined.cols[combined.cols.len() - nkeys..].iter().map(|a| &**a).collect();
            pw.lock()
                .map_err(|_| MlError::Execution("probe partitioner lock poisoned".into()))?
                .route(&ctx.spill, &combined, &keyrefs)?;
            Ok(true)
        },
    )?;
    let (pparts, pbytes) = pw
        .into_inner()
        .map_err(|_| MlError::Execution("probe partitioner lock poisoned".into()))?
        .finish(&ctx.spill)?;
    note_spill(ctx, &pparts, pbytes);
    // 3. Join partition pairs.
    let mut out: Vec<Chunk> = Vec::new();
    for (bf, pf) in bparts.into_iter().zip(pparts) {
        grace_join_partition(
            ctx,
            kind,
            residual,
            nkeys,
            &build_template,
            bf,
            pf,
            budget,
            1,
            &mut out,
        )?;
    }
    if out.is_empty() {
        return Ok(Chunk::empty(schema));
    }
    Chunk::pack(out)
}

/// Join one (build partition, probe partition) pair, re-partitioning both
/// at a deeper seed when the build side still exceeds the budget.
#[allow(clippy::too_many_arguments)]
fn grace_join_partition(
    ctx: &ExecContext,
    kind: PJoinKind,
    residual: Option<&BExpr>,
    nkeys: usize,
    build_template: &Chunk,
    build: Option<SpillFile>,
    probe: Option<SpillFile>,
    budget: usize,
    depth: u32,
    out: &mut Vec<Chunk>,
) -> Result<()> {
    // Every output row is driven by a probe row (inner/left/semi/anti):
    // no probe rows means no output, whatever the build side holds.
    let Some(probe) = probe else {
        return Ok(());
    };
    // Load the build partition. An absent file still joins (left/anti
    // emit probe rows against an empty map).
    let loaded = match build {
        None => build_template.clone(),
        Some(f) => {
            let mut chunks = Vec::new();
            let mut r = f.into_reader()?;
            while let Some(c) = r.next()? {
                chunks.push(c);
            }
            if chunks.is_empty() {
                build_template.clone()
            } else {
                Chunk::pack(chunks)?
            }
        }
    };
    // Oversized partition: split both sides again with a re-seeded hash.
    if loaded.mem_bytes() > budget && depth < MAX_SPILL_DEPTH {
        let vs = ctx.opts.vector_size.max(1);
        let mut bw = PartitionWriter::new(depth);
        let mut start = 0;
        while start < loaded.rows {
            ctx.check_deadline()?;
            let end = (start + vs).min(loaded.rows);
            let s = loaded.slice(start, end);
            let keyrefs: Vec<&Bat> = s.cols[s.cols.len() - nkeys..].iter().map(|a| &**a).collect();
            bw.route(&ctx.spill, &s, &keyrefs)?;
            start = end;
        }
        drop(loaded);
        let (bparts, bbytes) = bw.finish(&ctx.spill)?;
        note_spill(ctx, &bparts, bbytes);
        let mut pw = PartitionWriter::new(depth);
        let mut pr = probe.into_reader()?;
        while let Some(c) = pr.next()? {
            ctx.check_deadline()?;
            let keyrefs: Vec<&Bat> = c.cols[c.cols.len() - nkeys..].iter().map(|a| &**a).collect();
            pw.route(&ctx.spill, &c, &keyrefs)?;
        }
        drop(pr);
        let (pparts, pbytes) = pw.finish(&ctx.spill)?;
        note_spill(ctx, &pparts, pbytes);
        for (bf, pf) in bparts.into_iter().zip(pparts) {
            grace_join_partition(
                ctx,
                kind,
                residual,
                nkeys,
                build_template,
                bf,
                pf,
                budget,
                depth + 1,
                out,
            )?;
        }
        return Ok(());
    }
    let ncols = loaded.cols.len() - nkeys;
    let bcols = &loaded.cols[..ncols];
    let bkeyrefs: Vec<&Bat> = loaded.cols[ncols..].iter().map(|a| &**a).collect();
    let map = build_hash_map(&bkeyrefs);
    let probe_kind = crate::exec::pair_probe_kind(kind, residual);
    let mut r = probe.into_reader()?;
    while let Some(c) = r.next()? {
        ctx.check_deadline()?;
        let pncols = c.cols.len() - nkeys;
        let pkeyrefs: Vec<&Bat> = c.cols[pncols..].iter().map(|a| &**a).collect();
        let sel = probe_hash(&pkeyrefs, &bkeyrefs, &map, probe_kind);
        // No early-out on empty pair lists: anti joins (and left padding)
        // emit probe rows precisely when nothing matched.
        let chunk = finish_join_output(&c.cols[..pncols], bcols, sel, kind, residual, c.rows)?;
        if chunk.rows > 0 {
            out.push(chunk);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// External merge sort
// ---------------------------------------------------------------------------

/// Per-thread state of the external merge sort: vectors accumulate (with
/// a trailing global-row-id column as the stability tie-break) until the
/// budget share is exceeded, then sort-and-spill as one run.
#[derive(Default)]
struct SortWorker {
    chunks: Vec<(usize, Chunk)>,
    bytes: usize,
    runs: Vec<SpillFile>,
}

/// Sort-key columns of a run chunk: the requested keys plus the trailing
/// rowid column ascending, making the order total and therefore exactly
/// the stable [`sort_perm`] order of the packed input.
fn sort_key_refs<'c>(chunk: &'c Chunk, keys: &[(usize, bool)]) -> Vec<(&'c Bat, bool)> {
    let mut k: Vec<(&Bat, bool)> = keys.iter().map(|&(c, d)| (&*chunk.cols[c], d)).collect();
    k.push((&*chunk.cols[chunk.cols.len() - 1], false));
    k
}

/// Sort accumulated vectors into one run and spill it in vector-sized
/// frames.
fn write_sorted_run(
    mut chunks: Vec<(usize, Chunk)>,
    keys: &[(usize, bool)],
    ctx: &ExecContext,
) -> Result<SpillFile> {
    chunks.sort_by_key(|(m, _)| *m);
    let packed = Chunk::pack(chunks.into_iter().map(|(_, c)| c).collect())?;
    let key_refs = sort_key_refs(&packed, keys);
    let perm = sort_perm(&key_refs, packed.rows);
    let sorted = packed.take(&perm);
    let mut f = ctx.spill.file()?;
    let vs = ctx.opts.vector_size.max(1);
    let mut start = 0;
    while start < sorted.rows {
        ctx.check_deadline()?;
        let end = (start + vs).min(sorted.rows);
        let s = sorted.slice(start, end);
        let refs: Vec<&Bat> = s.cols.iter().map(|a| &**a).collect();
        f.write(&refs)?;
        start = end;
    }
    Ok(f)
}

/// One run of the k-way merge: either a spilled file read sequentially or
/// the sorted in-memory leftover.
enum RunSrc {
    Disk(SpillReader),
    Mem(Option<Chunk>),
}

struct RunCursor {
    src: RunSrc,
    chunk: Option<Chunk>,
    pos: usize,
}

impl RunCursor {
    /// Ensure `chunk`/`pos` address a live row (or `chunk` is `None` at
    /// exhaustion).
    fn settle(&mut self) -> Result<()> {
        loop {
            if let Some(c) = &self.chunk {
                if self.pos < c.rows {
                    return Ok(());
                }
            }
            self.pos = 0;
            self.chunk = match &mut self.src {
                RunSrc::Disk(r) => r.next()?,
                RunSrc::Mem(c) => c.take(),
            };
            if self.chunk.is_none() {
                return Ok(());
            }
        }
    }
}

/// Ordering between the head rows of two live cursor chunks: keys (with
/// direction) then rowid ascending. Callers hand in the settled chunks
/// directly, so an exhausted cursor cannot reach the comparison.
fn cursor_cmp(
    ca: &Chunk,
    apos: usize,
    cb: &Chunk,
    bpos: usize,
    keys: &[(usize, bool)],
) -> std::cmp::Ordering {
    for &(k, desc) in keys {
        let ord = col_cmp2(&ca.cols[k], apos, &cb.cols[k], bpos);
        let ord = if desc { ord.reverse() } else { ord };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    let (ra, rb) = (&ca.cols[ca.cols.len() - 1], &cb.cols[cb.cols.len() - 1]);
    col_cmp2(ra, apos, rb, bpos)
}

/// Maximum live runs per merge pass: beyond this the linear min-scan
/// (and the open-file count) degrades, so batches merge into
/// intermediate runs first — the classic multi-pass external sort.
const MERGE_FANIN: usize = 64;

/// Floor on the per-worker sort buffer. A degenerate budget (e.g. zero
/// vmem headroom) must not generate one run per vector — run count, not
/// buffer size, is what makes the merge expensive.
const MIN_SORT_SHARE: usize = 16 * 1024;

/// K-way merge of sorted runs by (keys, rowid), emitting chunks of `vs`
/// rows with *all* columns including the trailing rowid (the final
/// caller strips it; intermediate passes need it for later tie-breaks).
/// Fan-in is capped by the caller; a linear min-scan over ≤ [`MERGE_FANIN`]
/// cursors is cheap.
fn merge_cursors(
    mut cursors: Vec<RunCursor>,
    keys: &[(usize, bool)],
    vs: usize,
    ctx: &ExecContext,
    mut emit: impl FnMut(Chunk) -> Result<()>,
) -> Result<()> {
    for c in &mut cursors {
        c.settle()?;
    }
    let types: Vec<monetlite_types::LogicalType> =
        match cursors.iter().find_map(|c| c.chunk.as_ref()) {
            None => return Ok(()),
            Some(c) => c.cols.iter().map(|b| b.logical_type()).collect(),
        };
    let mut out: Vec<Bat> = types.iter().map(|&t| Bat::new(t)).collect();
    let mut rows = 0usize;
    loop {
        let mut best: Option<usize> = None;
        for i in 0..cursors.len() {
            let Some(ci) = cursors[i].chunk.as_ref() else {
                continue;
            };
            best = Some(match best {
                None => i,
                Some(b) => match cursors[b].chunk.as_ref() {
                    Some(cb)
                        if cursor_cmp(ci, cursors[i].pos, cb, cursors[b].pos, keys)
                            == std::cmp::Ordering::Less =>
                    {
                        i
                    }
                    Some(_) => b,
                    None => i,
                },
            });
        }
        let Some(w) = best else { break };
        {
            let cur = &cursors[w];
            let chunk = cur
                .chunk
                .as_ref()
                .ok_or_else(|| MlError::Execution("merge cursor lost its chunk".into()))?;
            for (dst, src) in out.iter_mut().zip(&chunk.cols) {
                dst.push(&src.get(cur.pos))?;
            }
            rows += 1;
        }
        cursors[w].pos += 1;
        cursors[w].settle()?;
        if rows == vs {
            emit(Chunk::dense(std::mem::take(&mut out).into_iter().map(Arc::new).collect(), rows))?;
            out = types.iter().map(|&t| Bat::new(t)).collect();
            rows = 0;
            ctx.check_deadline()?;
        }
    }
    if rows > 0 {
        emit(Chunk::dense(out.into_iter().map(Arc::new).collect(), rows))?;
    }
    Ok(())
}

/// External merge sort of a pipeline's output under `budget` bytes of
/// in-memory state. Produces exactly the bytes of the unspilled stable
/// sort; when no run ever spills, the code path degenerates to pack +
/// stable sort.
fn external_sort(
    input: &Plan,
    keys: &[(usize, bool)],
    ctx: &ExecContext,
    budget: usize,
) -> Result<Chunk> {
    let pipe = decompose(input, ctx)?;
    let share = (budget / ctx.opts.threads.max(1)).max(MIN_SORT_SHARE);
    let parts: Vec<Result<SortWorker>> = drive(
        &pipe,
        ctx,
        || Ok(SortWorker::default()),
        |p: &mut Result<SortWorker>, m, c| {
            let Ok(w) = p.as_mut() else { return Ok(false) };
            if c.rows == 0 {
                return Ok(true);
            }
            let c = c.materialize(); // sort ingest is this pipeline's sink
                                     // Global row id: (morsel, row-within-vector) — the packed
                                     // input order, so ties break exactly as the stable sort does.
            let rowid = Bat::Bigint((0..c.rows as i64).map(|i| ((m as i64) << 32) | i).collect());
            let rows = c.rows;
            let mut cols = c.cols;
            cols.push(Arc::new(rowid));
            let c2 = Chunk::dense(cols, rows);
            w.bytes += c2.mem_bytes();
            w.chunks.push((m, c2));
            if w.bytes > share {
                match write_sorted_run(std::mem::take(&mut w.chunks), keys, ctx) {
                    Ok(run) => {
                        w.runs.push(run);
                        w.bytes = 0;
                    }
                    Err(e) => {
                        *p = Err(e);
                        return Ok(false);
                    }
                }
            }
            Ok(true)
        },
    )?;
    let mut runs: Vec<SpillFile> = Vec::new();
    let mut mem: Vec<(usize, Chunk)> = Vec::new();
    for p in parts {
        let w = p?;
        runs.extend(w.runs);
        mem.extend(w.chunks);
    }
    ctx.check_deadline()?;
    let input_cols = input.schema().len();
    if runs.is_empty() {
        // Everything fit: identical to the unspilled blocking sort.
        if mem.is_empty() {
            return Ok(Chunk::empty(input.schema()));
        }
        mem.sort_by_key(|(m, _)| *m);
        let packed = Chunk::pack(mem.into_iter().map(|(_, c)| c).collect())?;
        let key_refs = sort_key_refs(&packed, keys);
        let perm = sort_perm(&key_refs, packed.rows);
        let sorted = packed.take(&perm);
        return Ok(Chunk::dense(sorted.cols[..input_cols].to_vec(), sorted.rows));
    }
    ctx.counters.add(&ctx.counters.spilled_partitions, runs.len() as u64);
    ctx.counters.add(&ctx.counters.spill_bytes, runs.iter().map(|r| r.bytes).sum());
    let mut cursors: Vec<RunCursor> = Vec::new();
    for r in runs {
        cursors.push(RunCursor { src: RunSrc::Disk(r.into_reader()?), chunk: None, pos: 0 });
    }
    if !mem.is_empty() {
        // Leftover in-memory rows form one final sorted run.
        mem.sort_by_key(|(m, _)| *m);
        let packed = Chunk::pack(mem.into_iter().map(|(_, c)| c).collect())?;
        let key_refs = sort_key_refs(&packed, keys);
        let perm = sort_perm(&key_refs, packed.rows);
        cursors.push(RunCursor { src: RunSrc::Mem(Some(packed.take(&perm))), chunk: None, pos: 0 });
    }
    let vs = ctx.opts.vector_size.max(1);
    // Intermediate merge passes while the run count exceeds the fan-in
    // cap: batches of runs merge into one bigger on-disk run.
    while cursors.len() > MERGE_FANIN {
        let batch: Vec<RunCursor> = cursors.drain(..MERGE_FANIN).collect();
        let mut f = ctx.spill.file()?;
        merge_cursors(batch, keys, vs, ctx, |c| {
            let refs: Vec<&Bat> = c.cols.iter().map(|a| &**a).collect();
            f.write(&refs)?;
            Ok(())
        })?;
        ctx.counters.bump(&ctx.counters.spilled_partitions);
        ctx.counters.add(&ctx.counters.spill_bytes, f.bytes);
        cursors.push(RunCursor { src: RunSrc::Disk(f.into_reader()?), chunk: None, pos: 0 });
    }
    // Final merge pass emits output chunks; the trailing rowid column is
    // stripped when packing.
    let mut out_chunks: Vec<Chunk> = Vec::new();
    merge_cursors(cursors, keys, vs, ctx, |c| {
        out_chunks.push(Chunk::dense(c.cols[..input_cols].to_vec(), c.rows));
        Ok(())
    })?;
    if out_chunks.is_empty() {
        return Ok(Chunk::empty(input.schema()));
    }
    Chunk::pack(out_chunks)
}

// ---------------------------------------------------------------------------
// EXPLAIN support
// ---------------------------------------------------------------------------

/// Render the pipeline decomposition of `plan` for EXPLAIN: one line per
/// pipeline (in execution order — build sides before their probes), with
/// the morsel count of table-backed sources when `stats` are available.
pub fn describe(plan: &Plan, opts: &ExecOptions, stats: Option<&dyn crate::opt::Stats>) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let budget = if opts.memory_budget == usize::MAX {
        String::new()
    } else {
        format!(
            ", memory_budget={} (breakers spill; see spilled_partitions/spill_bytes counters)",
            opts.memory_budget
        )
    };
    let _ = writeln!(
        out,
        "-- pipelines: streaming engine, vector={}, threads={}{budget}",
        opts.vector_size,
        opts.threads.max(1)
    );
    let mut next = 0usize;
    desc_node(plan, &mut out, &mut next, opts, stats, "result".to_string());
    out
}

/// Describe a (possibly breaker) node; returns the id of the pipeline
/// producing its output.
fn desc_node(
    plan: &Plan,
    out: &mut String,
    next: &mut usize,
    opts: &ExecOptions,
    stats: Option<&dyn crate::opt::Stats>,
    sink: String,
) -> usize {
    match plan {
        Plan::Aggregate { input, groups, .. } => {
            let spillable = if groups.is_empty() || opts.memory_budget == usize::MAX {
                ""
            } else {
                " [spillable]"
            };
            let s = if groups.is_empty() {
                format!("global-aggregate (merge partials) -> {sink}")
            } else {
                format!("partial hash-aggregate + mapped merge{spillable} -> {sink}")
            };
            desc_chain(input, out, next, opts, stats, s)
        }
        Plan::Sort { input, keys } => {
            let how = if opts.memory_budget == usize::MAX {
                "blocking"
            } else {
                "external merge [spillable]"
            };
            desc_chain(input, out, next, opts, stats, format!("sort{keys:?} ({how}) -> {sink}"))
        }
        Plan::TopN { input, keys, n } => desc_chain(
            input,
            out,
            next,
            opts,
            stats,
            format!("top-{n}{keys:?} (per-morsel compaction) -> {sink}"),
        ),
        Plan::Limit { input, n } => {
            desc_chain(input, out, next, opts, stats, format!("limit {n} (early-exit) -> {sink}"))
        }
        Plan::Distinct { input } => {
            desc_chain(input, out, next, opts, stats, format!("distinct (local+global) -> {sink}"))
        }
        other => desc_chain(other, out, next, opts, stats, sink),
    }
}

/// Describe the non-breaking spine of a plan as one pipeline line.
fn desc_chain(
    plan: &Plan,
    out: &mut String,
    next: &mut usize,
    opts: &ExecOptions,
    stats: Option<&dyn crate::opt::Stats>,
    sink: String,
) -> usize {
    use std::fmt::Write;
    let mut ops: Vec<String> = Vec::new();
    let mut cur = plan;
    // Bloom-eligible probes seen with no Project below them (yet): an
    // Inner/Semi probe keyed on a bare column pushes its build-side bloom
    // filter into the scan unless a Project remaps columns in between.
    let mut bloom_pending = 0usize;
    loop {
        match cur {
            Plan::Filter { input, pred } => {
                ops.push(format!("filter({pred})"));
                cur = input;
            }
            Plan::Project { input, exprs, .. } => {
                ops.push(format!("project[{}]", exprs.len()));
                bloom_pending = 0;
                cur = input;
            }
            Plan::Join { left, right, kind, left_keys, .. } => {
                let bid =
                    desc_node(right, out, next, opts, stats, format!("hash-join build ({kind})"));
                ops.push(format!("probe({kind}, build=P{bid})"));
                if opts.use_dict
                    && matches!(kind, PJoinKind::Inner | PJoinKind::Semi)
                    && matches!(left_keys.as_slice(), [BExpr::ColRef { .. }])
                {
                    bloom_pending += 1;
                }
                cur = left;
            }
            _ => break,
        }
    }
    ops.reverse();
    let src = match cur {
        Plan::Scan { table, filters, .. } => {
            let morsels = match stats {
                Some(s) => {
                    let rows = s.table_rows(table);
                    rows.div_ceil(opts.vector_size.max(1)).to_string()
                }
                None => "?".to_string(),
            };
            // Mark scans whose filters can skip whole vectors by zonemap.
            let zm = if opts.use_zonemaps
                && filters.iter().any(|f| crate::exec::zone_probe_of(f).is_some())
            {
                " [zonemap]"
            } else {
                ""
            };
            // Mark scans with dictionary-eligible string predicates and
            // scans receiving a pushed-down join bloom filter.
            let dict = if opts.use_dict && filters.iter().any(crate::exec::dict_filter_shape) {
                " [dict]"
            } else {
                ""
            };
            let bloom = if bloom_pending > 0 { " [bloom]" } else { "" };
            format!("scan {table} [morsels={morsels}]{zm}{dict}{bloom}")
        }
        Plan::Values { rows, .. } => format!("values [{} row(s)]", rows.len()),
        other => {
            debug_assert!(other.is_pipeline_breaker(), "chain stopped at a non-breaker");
            let id = desc_node(other, out, next, opts, stats, "materialize".to_string());
            format!("P{id} output")
        }
    };
    let id = *next;
    *next += 1;
    let mut line = format!("P{id}: {src}");
    for op in &ops {
        let _ = write!(line, " -> {op}");
    }
    let _ = writeln!(out, "{line} -> sink: {sink}");
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecMode, TableProvider};
    use crate::expr::{AggSpec, CmpOp, PAggFunc};
    use crate::plan::OutCol;
    use monetlite_storage::catalog::{TableData, TableMeta};
    use monetlite_types::{Field, LogicalType, Schema, Value};
    use std::collections::HashMap as Map;

    struct TestTables {
        tables: Map<String, Arc<TableMeta>>,
    }

    impl TableProvider for TestTables {
        fn table_meta(&self, name: &str) -> Result<Arc<TableMeta>> {
            self.tables
                .get(name)
                .cloned()
                .ok_or_else(|| MlError::Catalog(format!("unknown table '{name}'")))
        }
    }

    fn make_table(name: &str, cols: Vec<(&str, Bat)>) -> Arc<TableMeta> {
        let schema =
            Schema::new(cols.iter().map(|(n, b)| Field::new(*n, b.logical_type())).collect())
                .unwrap();
        let data = TableData::empty(&schema);
        let data = data.appended(cols.into_iter().map(|(_, b)| b).collect()).unwrap();
        Arc::new(TableMeta {
            id: 1,
            name: name.into(),
            schema,
            data,
            version: 1,
            ordered_cols: vec![],
        })
    }

    fn scan(table: &str, n: usize) -> Plan {
        Plan::Scan {
            table: table.into(),
            projected: (0..n).collect(),
            filters: vec![],
            schema: (0..n)
                .map(|i| OutCol { name: format!("c{i}"), ty: LogicalType::Int })
                .collect(),
        }
    }

    fn opts(threads: usize, vector_size: usize) -> crate::exec::ExecOptions {
        crate::exec::ExecOptions {
            mode: ExecMode::Streaming,
            threads,
            vector_size,
            ..Default::default()
        }
    }

    #[test]
    fn limit_exits_before_scanning_everything() {
        let n = 100_000;
        let t = make_table("t", vec![("a", Bat::Int((0..n).collect()))]);
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let ctx = ExecContext::new(&tables, opts(1, 1024));
        let plan = Plan::Limit { input: Box::new(scan("t", 1)), n: 5 };
        let out = execute_streaming(&plan, &ctx).unwrap();
        assert_eq!(out.rows, 5);
        assert_eq!(out.cols[0].get(0), Value::Int(0));
        assert_eq!(out.cols[0].get(4), Value::Int(4));
        let morsels = ctx.counters.morsels.load(Ordering::Relaxed);
        assert!(morsels <= 3, "limit must early-exit, dispatched {morsels} morsels");
    }

    #[test]
    fn empty_source_produces_typed_empty_chunks() {
        let t = make_table("t", vec![("a", Bat::Int(vec![]))]);
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let ctx = ExecContext::new(&tables, opts(4, 1024));
        // Bare scan.
        let out = execute_streaming(&scan("t", 1), &ctx).unwrap();
        assert_eq!(out.rows, 0);
        assert_eq!(out.cols.len(), 1);
        assert_eq!(out.cols[0].logical_type(), LogicalType::Int);
        // Global aggregate over nothing still yields its one row.
        let agg = Plan::Aggregate {
            input: Box::new(scan("t", 1)),
            groups: vec![],
            aggs: vec![AggSpec {
                func: PAggFunc::Count,
                arg: None,
                distinct: false,
                ty: LogicalType::Bigint,
            }],
            schema: vec![OutCol { name: "c".into(), ty: LogicalType::Bigint }],
        };
        let out = execute_streaming(&agg, &ctx).unwrap();
        assert_eq!(out.rows, 1);
        assert_eq!(out.cols[0].get(0), Value::Bigint(0));
    }

    #[test]
    fn parallel_probe_matches_single_thread() {
        let n = 20_000;
        let probe = make_table("probe", vec![("k", Bat::Int((0..n).map(|i| i % 500).collect()))]);
        let build = make_table(
            "build",
            vec![
                ("k", Bat::Int((0..250).collect())),
                ("v", Bat::Int((0..250).map(|i| i * 10).collect())),
            ],
        );
        let tables =
            TestTables { tables: Map::from([("probe".into(), probe), ("build".into(), build)]) };
        let plan = Plan::Aggregate {
            input: Box::new(Plan::Join {
                left: Box::new(scan("probe", 1)),
                right: Box::new(scan("build", 2)),
                kind: PJoinKind::Inner,
                left_keys: vec![BExpr::ColRef { idx: 0, ty: LogicalType::Int }],
                right_keys: vec![BExpr::ColRef { idx: 0, ty: LogicalType::Int }],
                residual: None,
                schema: vec![
                    OutCol { name: "k".into(), ty: LogicalType::Int },
                    OutCol { name: "k2".into(), ty: LogicalType::Int },
                    OutCol { name: "v".into(), ty: LogicalType::Int },
                ],
            }),
            groups: vec![],
            aggs: vec![
                AggSpec {
                    func: PAggFunc::Count,
                    arg: None,
                    distinct: false,
                    ty: LogicalType::Bigint,
                },
                AggSpec {
                    func: PAggFunc::Sum,
                    arg: Some(BExpr::ColRef { idx: 2, ty: LogicalType::Int }),
                    distinct: false,
                    ty: LogicalType::Bigint,
                },
            ],
            schema: vec![
                OutCol { name: "c".into(), ty: LogicalType::Bigint },
                OutCol { name: "s".into(), ty: LogicalType::Bigint },
            ],
        };
        let seq_ctx = ExecContext::new(&tables, opts(1, 1024));
        let seq = execute_streaming(&plan, &seq_ctx).unwrap();
        let par_ctx = ExecContext::new(&tables, opts(8, 1024));
        let par = execute_streaming(&plan, &par_ctx).unwrap();
        assert_eq!(seq.cols[0].get(0), par.cols[0].get(0));
        assert_eq!(seq.cols[1].get(0), par.cols[1].get(0));
        // The probe pipeline really was morsel-split.
        assert!(par_ctx.counters.morsels.load(Ordering::Relaxed) >= 20);
        assert!(par_ctx.counters.pipelines.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn morsel_scans_keep_imprint_selection() {
        // Index-assisted selection must survive morselization: each
        // ranged morsel clips imprint candidates to its own range.
        // Zonemaps off: they would (correctly) skip the tail morsels
        // before any imprint probe; this test pins the imprint path.
        let n = 10_000i32;
        let t = make_table("t", vec![("a", Bat::Int((0..n).collect()))]);
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let mut o = opts(1, 512);
        o.use_zonemaps = false;
        let ctx = ExecContext::new(&tables, o);
        let plan = Plan::Scan {
            table: "t".into(),
            projected: vec![0],
            filters: vec![BExpr::Cmp {
                op: CmpOp::Lt,
                left: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
                right: Box::new(BExpr::Lit(Value::Int(100))),
            }],
            schema: vec![OutCol { name: "a".into(), ty: LogicalType::Int }],
        };
        let out = execute_streaming(&plan, &ctx).unwrap();
        assert_eq!(out.rows, 100);
        assert_eq!(out.cols[0].get(0), Value::Int(0));
        assert_eq!(out.cols[0].get(99), Value::Int(99));
        let selects = ctx.counters.imprint_selects.load(Ordering::Relaxed);
        assert_eq!(selects, (n as u64).div_ceil(512), "one imprint probe per morsel");
    }

    #[test]
    fn multi_morsel_bare_scan_stays_zero_copy() {
        // A pass-through pipeline (no ops, no filters) must share the
        // base arrays even when the table spans many vectors.
        let n = 10_000i32;
        let t = make_table("t", vec![("a", Bat::Int((0..n).collect()))]);
        let base = t.data.cols[0].entry().unwrap().bat().unwrap();
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let ctx = ExecContext::new(&tables, opts(4, 512));
        let out = execute_streaming(&scan("t", 1), &ctx).unwrap();
        assert_eq!(out.rows, n as usize);
        assert!(Arc::ptr_eq(&out.cols[0], &base), "bare scan must share the array");
    }

    /// Rows of a chunk as printable tuples, sorted — spilled execution may
    /// emit groups/partitions in a different order.
    fn sorted_rows(c: &Chunk) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = (0..c.rows)
            .map(|r| c.cols.iter().map(|col| format!("{:?}", col.get(r))).collect())
            .collect();
        rows.sort();
        rows
    }

    fn group_sum_plan(table: &str) -> Plan {
        Plan::Aggregate {
            input: Box::new(scan(table, 2)),
            groups: vec![BExpr::ColRef { idx: 0, ty: LogicalType::Int }],
            aggs: vec![
                AggSpec {
                    func: PAggFunc::Sum,
                    arg: Some(BExpr::ColRef { idx: 1, ty: LogicalType::Int }),
                    distinct: false,
                    ty: LogicalType::Bigint,
                },
                AggSpec {
                    func: PAggFunc::Count,
                    arg: None,
                    distinct: false,
                    ty: LogicalType::Bigint,
                },
            ],
            schema: vec![
                OutCol { name: "g".into(), ty: LogicalType::Int },
                OutCol { name: "s".into(), ty: LogicalType::Bigint },
                OutCol { name: "c".into(), ty: LogicalType::Bigint },
            ],
        }
    }

    #[test]
    fn spilled_grouped_aggregate_matches_unspilled() {
        let n = 50_000i32;
        let t = make_table(
            "t",
            vec![
                ("g", Bat::Int((0..n).map(|i| i % 997).collect())),
                ("v", Bat::Int((0..n).collect())),
            ],
        );
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let plan = group_sum_plan("t");
        let base_ctx = ExecContext::new(&tables, opts(1, 1024));
        let base = execute_streaming(&plan, &base_ctx).unwrap();
        assert_eq!(base_ctx.counters.spilled_partitions.load(Ordering::Relaxed), 0);
        for threads in [1, 4] {
            // ~997 groups * (4B key + 16B sum + 8B count + map entry)
            // far exceeds an 8 kB budget: most input must spill.
            let mut o = opts(threads, 1024);
            o.memory_budget = 8 * 1024;
            let ctx = ExecContext::new(&tables, o);
            let got = execute_streaming(&plan, &ctx).unwrap();
            assert_eq!(sorted_rows(&base), sorted_rows(&got), "threads={threads}");
            assert!(
                ctx.counters.spilled_partitions.load(Ordering::Relaxed) > 0,
                "budget of 8kB must force spilling"
            );
            assert!(ctx.counters.spill_bytes.load(Ordering::Relaxed) > 0);
        }
    }

    #[test]
    fn spilled_aggregate_recurses_on_oversized_partitions() {
        // A budget far below even one partition's state forces re-seeded
        // re-partitioning; results must still be exact.
        let n = 20_000i32;
        let t = make_table(
            "t",
            vec![
                ("g", Bat::Int((0..n).collect())), // every row its own group
                ("v", Bat::Int((0..n).collect())),
            ],
        );
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let plan = group_sum_plan("t");
        let base = execute_streaming(&plan, &ExecContext::new(&tables, opts(1, 1024))).unwrap();
        let mut o = opts(1, 1024);
        o.memory_budget = 2 * 1024;
        let ctx = ExecContext::new(&tables, o);
        let got = execute_streaming(&plan, &ctx).unwrap();
        assert_eq!(base.rows, n as usize);
        assert_eq!(sorted_rows(&base), sorted_rows(&got));
        // Fan-out plus recursion writes well over one pass worth of
        // partitions.
        assert!(
            ctx.counters.spilled_partitions.load(Ordering::Relaxed)
                > crate::spill::SPILL_FANOUT as u64,
            "expected recursive re-partitioning"
        );
    }

    #[test]
    fn spilled_hash_join_matches_unspilled() {
        let n = 30_000i32;
        let nbuild = 4_000i32;
        let probe = make_table("probe", vec![("k", Bat::Int((0..n).map(|i| i % 5_000).collect()))]);
        let build = make_table(
            "build",
            vec![
                ("k", Bat::Int((0..nbuild).collect())),
                ("v", Bat::Int((0..nbuild).map(|i| i * 3).collect())),
            ],
        );
        let tables =
            TestTables { tables: Map::from([("probe".into(), probe), ("build".into(), build)]) };
        let join = Plan::Join {
            left: Box::new(scan("probe", 1)),
            right: Box::new(scan("build", 2)),
            kind: PJoinKind::Inner,
            left_keys: vec![BExpr::ColRef { idx: 0, ty: LogicalType::Int }],
            right_keys: vec![BExpr::ColRef { idx: 0, ty: LogicalType::Int }],
            residual: None,
            schema: vec![
                OutCol { name: "k".into(), ty: LogicalType::Int },
                OutCol { name: "k2".into(), ty: LogicalType::Int },
                OutCol { name: "v".into(), ty: LogicalType::Int },
            ],
        };
        // Disable the automatic hash index so the build side is transient
        // (index builds never spill — they are persistent data).
        let mut base_opts = opts(1, 1024);
        base_opts.use_hash_index = false;
        let base = execute_streaming(&join, &ExecContext::new(&tables, base_opts)).unwrap();
        for threads in [1, 4] {
            let mut o = opts(threads, 1024);
            o.use_hash_index = false;
            o.memory_budget = 8 * 1024; // build side is ~32 kB
            let ctx = ExecContext::new(&tables, o);
            let got = execute_streaming(&join, &ctx).unwrap();
            assert_eq!(sorted_rows(&base), sorted_rows(&got), "threads={threads}");
            assert!(
                ctx.counters.spilled_partitions.load(Ordering::Relaxed) > 0,
                "grace join must have partitioned to disk"
            );
        }
    }

    #[test]
    fn spilled_left_and_semi_joins_match_unspilled() {
        let probe = make_table("probe", vec![("k", Bat::Int((0..8_000).collect()))]);
        let build = make_table(
            "build",
            vec![
                ("k", Bat::Int((0..4_000).map(|i| i * 2).collect())),
                ("v", Bat::Int((0..4_000).collect())),
            ],
        );
        let tables =
            TestTables { tables: Map::from([("probe".into(), probe), ("build".into(), build)]) };
        for kind in [PJoinKind::Left, PJoinKind::Semi, PJoinKind::Anti] {
            let semi = matches!(kind, PJoinKind::Semi | PJoinKind::Anti);
            let mut schema = vec![OutCol { name: "k".into(), ty: LogicalType::Int }];
            if !semi {
                schema.push(OutCol { name: "k2".into(), ty: LogicalType::Int });
                schema.push(OutCol { name: "v".into(), ty: LogicalType::Int });
            }
            let join = Plan::Join {
                left: Box::new(scan("probe", 1)),
                right: Box::new(scan("build", 2)),
                kind,
                left_keys: vec![BExpr::ColRef { idx: 0, ty: LogicalType::Int }],
                right_keys: vec![BExpr::ColRef { idx: 0, ty: LogicalType::Int }],
                residual: None,
                schema,
            };
            let mut base_opts = opts(1, 512);
            base_opts.use_hash_index = false;
            let base = execute_streaming(&join, &ExecContext::new(&tables, base_opts)).unwrap();
            let mut o = opts(1, 512);
            o.use_hash_index = false;
            o.memory_budget = 4 * 1024;
            let ctx = ExecContext::new(&tables, o);
            let got = execute_streaming(&join, &ctx).unwrap();
            assert_eq!(sorted_rows(&base), sorted_rows(&got), "{kind:?}");
            assert!(ctx.counters.spilled_partitions.load(Ordering::Relaxed) > 0, "{kind:?}");
        }
    }

    #[test]
    fn external_sort_matches_in_memory_sort_byte_for_byte() {
        // Duplicate keys everywhere: the rowid tie-break must reproduce
        // the stable in-memory sort exactly, row for row.
        let n = 40_000i32;
        let t = make_table(
            "t",
            vec![
                ("k", Bat::Int((0..n).map(|i| (i * 37) % 100).collect())),
                ("payload", Bat::Int((0..n).collect())),
            ],
        );
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let plan = Plan::Sort { input: Box::new(scan("t", 2)), keys: vec![(0, false)] };
        let base = execute_streaming(&plan, &ExecContext::new(&tables, opts(1, 1024))).unwrap();
        for threads in [1, 4] {
            let mut o = opts(threads, 1024);
            o.memory_budget = 16 * 1024; // input is ~320 kB
            let ctx = ExecContext::new(&tables, o);
            let got = execute_streaming(&plan, &ctx).unwrap();
            assert_eq!(base.rows, got.rows);
            for c in 0..base.cols.len() {
                for r in 0..base.rows {
                    assert_eq!(
                        base.cols[c].get(r),
                        got.cols[c].get(r),
                        "row {r} col {c} threads={threads}"
                    );
                }
            }
            assert!(
                ctx.counters.spilled_partitions.load(Ordering::Relaxed) > 0,
                "expected sorted runs on disk"
            );
        }
        // With a budget that fits, the external-sort path degenerates to
        // the identical in-memory sort and spills nothing.
        let mut o = opts(1, 1024);
        o.memory_budget = 64 << 20;
        let ctx = ExecContext::new(&tables, o);
        let got = execute_streaming(&plan, &ctx).unwrap();
        assert_eq!(ctx.counters.spilled_partitions.load(Ordering::Relaxed), 0);
        assert_eq!(got.rows, base.rows);
    }

    #[test]
    fn external_sort_multipass_merge_beyond_fanin() {
        // Enough input that the floored per-worker share produces more
        // runs than MERGE_FANIN: intermediate merge passes must kick in
        // and the result must still match the in-memory sort exactly.
        let n = 200_000i32;
        let t = make_table(
            "t",
            vec![
                ("k", Bat::Int((0..n).map(|i| (i * 131) % 997).collect())),
                ("payload", Bat::Int((0..n).collect())),
            ],
        );
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let plan = Plan::Sort { input: Box::new(scan("t", 2)), keys: vec![(0, false)] };
        let base = execute_streaming(&plan, &ExecContext::new(&tables, opts(1, 1024))).unwrap();
        let mut o = opts(1, 1024);
        o.memory_budget = 1; // floored to MIN_SORT_SHARE
        let ctx = ExecContext::new(&tables, o);
        let got = execute_streaming(&plan, &ctx).unwrap();
        assert_eq!(base.rows, got.rows);
        for r in (0..base.rows).step_by(997) {
            assert_eq!(base.cols[0].get(r), got.cols[0].get(r), "row {r}");
            assert_eq!(base.cols[1].get(r), got.cols[1].get(r), "row {r}");
        }
        let spilled = ctx.counters.spilled_partitions.load(Ordering::Relaxed);
        assert!(
            spilled > MERGE_FANIN as u64,
            "expected more runs than the fan-in cap plus intermediate merges, got {spilled}"
        );
    }

    #[test]
    fn global_aggregates_never_spill() {
        let n = 100_000i32;
        let t = make_table("t", vec![("a", Bat::Int((0..n).collect()))]);
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let plan = Plan::Aggregate {
            input: Box::new(scan("t", 1)),
            groups: vec![],
            aggs: vec![AggSpec {
                func: PAggFunc::Sum,
                arg: Some(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
                distinct: false,
                ty: LogicalType::Bigint,
            }],
            schema: vec![OutCol { name: "s".into(), ty: LogicalType::Bigint }],
        };
        let mut o = opts(1, 1024);
        o.memory_budget = 64; // absurdly small: O(1) state still fits policy
        let ctx = ExecContext::new(&tables, o);
        let out = execute_streaming(&plan, &ctx).unwrap();
        assert_eq!(out.cols[0].get(0), Value::Bigint((0..n as i64).sum()));
        assert_eq!(ctx.counters.spilled_partitions.load(Ordering::Relaxed), 0);
    }

    fn lt_filter(col: usize, k: i32) -> BExpr {
        BExpr::Cmp {
            op: CmpOp::Lt,
            left: Box::new(BExpr::ColRef { idx: col, ty: LogicalType::Int }),
            right: Box::new(BExpr::Lit(Value::Int(k))),
        }
    }

    /// Candidate lists + zonemaps pinned on, regardless of the CI env
    /// matrix (MONETLITE_CANDIDATES/MONETLITE_ZONEMAPS).
    fn opts_cand(threads: usize, vector_size: usize) -> crate::exec::ExecOptions {
        let mut o = opts(threads, vector_size);
        o.use_candidates = true;
        o.use_zonemaps = true;
        o
    }

    #[test]
    fn selective_filter_carries_candidate_list_to_the_agg_sink() {
        // A sparse filter must not gather: the chunk rides its candidate
        // list into grouped-aggregate ingest (sel_vectors counts it) and
        // the result matches the gather-based baseline exactly.
        let n = 40_000i32;
        let t = make_table(
            "t",
            vec![
                ("k", Bat::Int((0..n).map(|i| (i * 131) % 10_000).collect())), // scattered
                ("g", Bat::Int((0..n).map(|i| i % 7).collect())),
                ("v", Bat::Int((0..n).collect())),
            ],
        );
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let plan = Plan::Aggregate {
            input: Box::new(Plan::Filter {
                input: Box::new(scan("t", 3)),
                pred: lt_filter(0, 100), // ~1% selective, scattered (no zonemap skip)
            }),
            groups: vec![BExpr::ColRef { idx: 1, ty: LogicalType::Int }],
            aggs: vec![AggSpec {
                func: PAggFunc::Sum,
                arg: Some(BExpr::ColRef { idx: 2, ty: LogicalType::Int }),
                distinct: false,
                ty: LogicalType::Bigint,
            }],
            schema: vec![
                OutCol { name: "g".into(), ty: LogicalType::Int },
                OutCol { name: "s".into(), ty: LogicalType::Bigint },
            ],
        };
        let mut base_opts = opts(1, 1024);
        base_opts.use_candidates = false;
        base_opts.use_zonemaps = false;
        let base_ctx = ExecContext::new(&tables, base_opts);
        let base = execute_streaming(&plan, &base_ctx).unwrap();
        assert_eq!(base_ctx.counters.sel_vectors.load(Ordering::Relaxed), 0);
        for threads in [1, 4] {
            let ctx = ExecContext::new(&tables, opts_cand(threads, 1024));
            let got = execute_streaming(&plan, &ctx).unwrap();
            assert_eq!(sorted_rows(&base), sorted_rows(&got), "threads={threads}");
            assert!(
                ctx.counters.sel_vectors.load(Ordering::Relaxed) > 0,
                "sparse filters must carry candidate lists"
            );
        }
    }

    #[test]
    fn dense_selections_fall_back_to_gather() {
        // A ~99% filter is above the density cutoff: the chunk gathers
        // (as the baseline would) and no candidate list is carried —
        // sel_vectors stays 0, which the sink's materialize() could not
        // fake.
        let n = 10_000i32;
        let t = make_table("t", vec![("a", Bat::Int((0..n).map(|i| (i * 131) % n).collect()))]);
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let ctx = ExecContext::new(&tables, opts_cand(1, 1024));
        let plan = Plan::Filter { input: Box::new(scan("t", 1)), pred: lt_filter(0, n - 100) };
        let out = execute_streaming(&plan, &ctx).unwrap();
        assert_eq!(out.rows, (n - 100) as usize);
        assert!(out.sel.is_none());
        assert_eq!(
            ctx.counters.sel_vectors.load(Ordering::Relaxed),
            0,
            "near-full selections must not ride as candidate lists"
        );
    }

    #[test]
    fn stacked_filters_only_evaluate_surviving_rows() {
        // Division by zero on rows an earlier filter removed must not
        // surface: the second predicate runs sel-aware over survivors
        // only, matching the gather-based baseline.
        let n = 4_000i32;
        let t = make_table(
            "t",
            vec![
                ("a", Bat::Int((0..n).collect())),
                // b == 0 on ~5% of rows (dense enough that the first
                // filter's survivors stay above the old dense-eval path's
                // threshold).
                ("b", Bat::Int((0..n).map(|i| if i % 20 == 0 { 0 } else { i % 7 + 1 }).collect())),
            ],
        );
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        // filter 1: b <> 0 (keeps 95%); filter 2: a % b = 0 — errors on
        // any b == 0 row it is (wrongly) evaluated at.
        let plan = Plan::Filter {
            input: Box::new(Plan::Filter {
                input: Box::new(scan("t", 2)),
                pred: BExpr::Cmp {
                    op: CmpOp::NotEq,
                    left: Box::new(BExpr::ColRef { idx: 1, ty: LogicalType::Int }),
                    right: Box::new(BExpr::Lit(Value::Int(0))),
                },
            }),
            pred: BExpr::Cmp {
                op: CmpOp::Eq,
                left: Box::new(BExpr::Arith {
                    op: crate::expr::ArithOp::Mod,
                    left: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
                    right: Box::new(BExpr::ColRef { idx: 1, ty: LogicalType::Int }),
                    ty: LogicalType::Int,
                }),
                right: Box::new(BExpr::Lit(Value::Int(0))),
            },
        };
        let mut base_opts = opts(1, 1024);
        base_opts.use_candidates = false;
        base_opts.use_zonemaps = false;
        let base = execute_streaming(&plan, &ExecContext::new(&tables, base_opts)).unwrap();
        let ctx = ExecContext::new(&tables, opts_cand(1, 1024));
        let got = execute_streaming(&plan, &ctx).unwrap();
        assert_eq!(sorted_rows(&base), sorted_rows(&got));
    }

    #[test]
    fn zonemap_skips_clustered_morsels_and_counts_them() {
        // Clustered key, 0.5% selective probe: whole morsels outside the
        // matching zones are skipped before any kernel runs. Imprints are
        // off to isolate the zonemap path.
        let n = 64_000i32;
        let t = make_table(
            "t",
            vec![("k", Bat::Int((0..n).collect())), ("v", Bat::Int((0..n).collect()))],
        );
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let plan = Plan::Scan {
            table: "t".into(),
            projected: vec![0, 1],
            filters: vec![lt_filter(0, 320)],
            schema: vec![
                OutCol { name: "k".into(), ty: LogicalType::Int },
                OutCol { name: "v".into(), ty: LogicalType::Int },
            ],
        };
        let mut o = opts_cand(1, 1024);
        o.use_imprints = false;
        let ctx = ExecContext::new(&tables, o);
        let out = execute_streaming(&plan, &ctx).unwrap();
        assert_eq!(out.rows, 320);
        assert_eq!(out.cols[0].get(319), Value::Int(319));
        let skipped = ctx.counters.vectors_skipped.load(Ordering::Relaxed);
        // Zones are 8Ki rows; only zone 0 matches, so every morsel beyond
        // the first zone (and none inside it) skips.
        assert!(skipped >= 50, "expected most of the 63 tail morsels skipped, got {skipped}");
        // Zonemaps off: same rows, no skips.
        let mut o2 = opts(1, 1024);
        o2.use_imprints = false;
        o2.use_zonemaps = false;
        let ctx2 = ExecContext::new(&tables, o2);
        let out2 = execute_streaming(&plan, &ctx2).unwrap();
        assert_eq!(out2.rows, 320);
        assert_eq!(ctx2.counters.vectors_skipped.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn candidate_probe_and_distinct_match_baseline() {
        // Filter → probe: the probe must compose the candidate list into
        // its output gather. Filter → distinct: dedup over selected
        // positions only.
        let n = 20_000i32;
        let probe = make_table(
            "probe",
            vec![
                ("k", Bat::Int((0..n).map(|i| (i * 7) % 500).collect())),
                ("f", Bat::Int((0..n).map(|i| (i * 131) % 1000).collect())),
            ],
        );
        let build = make_table(
            "build",
            vec![("k", Bat::Int((0..250).collect())), ("v", Bat::Int((0..250).collect()))],
        );
        let tables =
            TestTables { tables: Map::from([("probe".into(), probe), ("build".into(), build)]) };
        let join = Plan::Join {
            left: Box::new(Plan::Filter {
                input: Box::new(scan("probe", 2)),
                pred: lt_filter(1, 20), // ~2% selective
            }),
            right: Box::new(scan("build", 2)),
            kind: PJoinKind::Inner,
            left_keys: vec![BExpr::ColRef { idx: 0, ty: LogicalType::Int }],
            right_keys: vec![BExpr::ColRef { idx: 0, ty: LogicalType::Int }],
            residual: None,
            schema: vec![
                OutCol { name: "k".into(), ty: LogicalType::Int },
                OutCol { name: "f".into(), ty: LogicalType::Int },
                OutCol { name: "k2".into(), ty: LogicalType::Int },
                OutCol { name: "v".into(), ty: LogicalType::Int },
            ],
        };
        let distinct = Plan::Distinct {
            input: Box::new(Plan::Filter {
                input: Box::new(scan("probe", 2)),
                pred: lt_filter(1, 20),
            }),
        };
        for plan in [&join, &distinct] {
            let mut base_opts = opts(1, 1024);
            base_opts.use_candidates = false;
            base_opts.use_zonemaps = false;
            let base = execute_streaming(plan, &ExecContext::new(&tables, base_opts)).unwrap();
            for threads in [1, 4] {
                let ctx = ExecContext::new(&tables, opts_cand(threads, 1024));
                let got = execute_streaming(plan, &ctx).unwrap();
                assert_eq!(sorted_rows(&base), sorted_rows(&got), "threads={threads}");
            }
        }
    }

    #[test]
    fn filter_pushes_through_vectors() {
        let n = 10_000;
        let t = make_table("t", vec![("a", Bat::Int((0..n).collect()))]);
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let ctx = ExecContext::new(&tables, opts(4, 512));
        let plan = Plan::Filter {
            input: Box::new(scan("t", 1)),
            pred: BExpr::Cmp {
                op: CmpOp::Lt,
                left: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
                right: Box::new(BExpr::Lit(Value::Int(100))),
            },
        };
        let out = execute_streaming(&plan, &ctx).unwrap();
        assert_eq!(out.rows, 100);
        // Order preserved across morsels.
        assert_eq!(out.cols[0].get(0), Value::Int(0));
        assert_eq!(out.cols[0].get(99), Value::Int(99));
        assert_eq!(ctx.counters.vectors.load(Ordering::Relaxed), (n as u64).div_ceil(512));
    }
}
